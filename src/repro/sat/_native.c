/* Incremental CDCL kernel behind repro.sat.native.
 *
 * A compact MiniSat-family solver with exactly the feature set the
 * Python solver (repro/sat/solver.py) exposes to the BMC layer:
 * incremental add_clause/new_var between solves, assumptions placed as
 * decision levels with failed-assumption cores, VSIDS + phase saving,
 * Luby restarts, LBD-tagged learnt clauses with a glue-protected
 * reduce, and cooperative conflict/time budgets. External literals are
 * signed DIMACS ints (variable 1 is the first variable), matching the
 * Python API; internally literals are 2*var+sign.
 *
 * The ABI is C (no mangling) and deliberately flat — every function
 * takes the solver pointer first — so the ctypes wrapper stays a thin
 * veneer. Determinism: no randomness anywhere; identical call
 * sequences produce identical search trees, models and cores.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define L_UNDEF (-1)

static inline int32_t ext2int(int32_t e) {
    return e > 0 ? 2 * (e - 1) : 2 * (-e - 1) + 1;
}
static inline int32_t int2ext(int32_t l) {
    return (l & 1) ? -(l / 2 + 1) : l / 2 + 1;
}
#define VAR(l) ((l) >> 1)
#define NEG(l) ((l) ^ 1)

typedef struct {
    int32_t blocker;
    int32_t cref;
} Watcher;

typedef struct {
    Watcher *data;
    int32_t sz, cap;
} WList;

typedef struct {
    /* clause arena: [size, lbd, lit0, lit1, ...]; cref = offset.
     * lbd == -1 marks a problem clause. */
    int32_t *arena;
    int64_t arena_sz, arena_cap;
    int32_t *clauses;
    int64_t n_clauses, clauses_cap;
    int32_t *learnts;
    int64_t n_learnts, learnts_cap;
    WList *watches; /* indexed by internal literal */
    int8_t *assign; /* per var: 0 undef, 1 true, -1 false */
    uint8_t *phase;
    int32_t *level;
    int32_t *reason; /* cref, or -1 for decision/assumption */
    double *activity;
    int32_t *heap;
    int32_t heap_sz;
    int32_t *heap_pos; /* var -> heap index or -1 */
    int32_t *trail;
    int32_t trail_sz;
    int32_t *trail_lim;
    int32_t n_levels;
    int32_t qhead;
    int32_t nvars, cap_vars;
    double var_inc, var_decay;
    int64_t conflicts, decisions, propagations, restarts, solve_calls;
    int root_unsat;
    int64_t max_learnts;
    int32_t restart_base;
    /* analyze scratch */
    uint8_t *seen;
    int32_t *learnt_buf;
    int32_t learnt_cap;
    uint32_t *lbd_stamp;
    uint32_t lbd_counter;
    int32_t *core;
    int32_t core_sz, core_cap;
} CSolver;

/* ------------------------------------------------------------- helpers */

static void *xrealloc(void *p, size_t n) {
    void *q = realloc(p, n ? n : 1);
    if (!q) abort();
    return q;
}

static void wl_push(WList *w, int32_t blocker, int32_t cref) {
    if (w->sz == w->cap) {
        w->cap = w->cap ? w->cap * 2 : 4;
        w->data = (Watcher *)xrealloc(w->data, w->cap * sizeof(Watcher));
    }
    w->data[w->sz].blocker = blocker;
    w->data[w->sz].cref = cref;
    w->sz++;
}

static void wl_remove(WList *w, int32_t cref) {
    for (int32_t i = 0; i < w->sz; i++) {
        if (w->data[i].cref == cref) {
            w->data[i] = w->data[w->sz - 1];
            w->sz--;
            return;
        }
    }
}

/* --------------------------------------------------------- VSIDS heap */

static void heap_swap(CSolver *s, int32_t i, int32_t j) {
    int32_t vi = s->heap[i], vj = s->heap[j];
    s->heap[i] = vj;
    s->heap[j] = vi;
    s->heap_pos[vj] = i;
    s->heap_pos[vi] = j;
}

static void heap_up(CSolver *s, int32_t i) {
    while (i > 0) {
        int32_t p = (i - 1) / 2;
        if (s->activity[s->heap[i]] > s->activity[s->heap[p]]) {
            heap_swap(s, i, p);
            i = p;
        } else
            break;
    }
}

static void heap_down(CSolver *s, int32_t i) {
    for (;;) {
        int32_t l = 2 * i + 1, r = 2 * i + 2, best = i;
        if (l < s->heap_sz &&
            s->activity[s->heap[l]] > s->activity[s->heap[best]])
            best = l;
        if (r < s->heap_sz &&
            s->activity[s->heap[r]] > s->activity[s->heap[best]])
            best = r;
        if (best == i) return;
        heap_swap(s, i, best);
        i = best;
    }
}

static void heap_insert(CSolver *s, int32_t v) {
    if (s->heap_pos[v] >= 0) return;
    s->heap[s->heap_sz] = v;
    s->heap_pos[v] = s->heap_sz;
    s->heap_sz++;
    heap_up(s, s->heap_sz - 1);
}

static int32_t heap_pop(CSolver *s) {
    int32_t v = s->heap[0];
    s->heap_pos[v] = -1;
    s->heap_sz--;
    if (s->heap_sz > 0) {
        s->heap[0] = s->heap[s->heap_sz];
        s->heap_pos[s->heap[0]] = 0;
        heap_down(s, 0);
    }
    return v;
}

static void var_bump(CSolver *s, int32_t v) {
    s->activity[v] += s->var_inc;
    if (s->activity[v] > 1e100) {
        for (int32_t i = 0; i < s->nvars; i++) s->activity[i] *= 1e-100;
        s->var_inc *= 1e-100;
    }
    if (s->heap_pos[v] >= 0) heap_up(s, s->heap_pos[v]);
}

/* ------------------------------------------------------------ solver */

CSolver *rsat_new(void) {
    CSolver *s = (CSolver *)calloc(1, sizeof(CSolver));
    if (!s) abort();
    s->var_inc = 1.0;
    s->var_decay = 0.95;
    s->restart_base = 100;
    s->max_learnts = 4000;
    return s;
}

void rsat_free(CSolver *s) {
    if (!s) return;
    for (int32_t i = 0; i < 2 * s->nvars; i++) free(s->watches[i].data);
    free(s->watches);
    free(s->arena);
    free(s->clauses);
    free(s->learnts);
    free(s->assign);
    free(s->phase);
    free(s->level);
    free(s->reason);
    free(s->activity);
    free(s->heap);
    free(s->heap_pos);
    free(s->trail);
    free(s->trail_lim);
    free(s->seen);
    free(s->learnt_buf);
    free(s->lbd_stamp);
    free(s->core);
    free(s);
}

int32_t rsat_new_var(CSolver *s) {
    if (s->nvars == s->cap_vars) {
        int32_t cap = s->cap_vars ? s->cap_vars * 2 : 1024;
        s->watches = (WList *)xrealloc(s->watches, 2 * cap * sizeof(WList));
        memset(s->watches + 2 * s->cap_vars, 0,
               2 * (cap - s->cap_vars) * sizeof(WList));
        s->assign = (int8_t *)xrealloc(s->assign, cap);
        s->phase = (uint8_t *)xrealloc(s->phase, cap);
        s->level = (int32_t *)xrealloc(s->level, cap * sizeof(int32_t));
        s->reason = (int32_t *)xrealloc(s->reason, cap * sizeof(int32_t));
        s->activity = (double *)xrealloc(s->activity, cap * sizeof(double));
        s->heap = (int32_t *)xrealloc(s->heap, cap * sizeof(int32_t));
        s->heap_pos = (int32_t *)xrealloc(s->heap_pos, cap * sizeof(int32_t));
        s->trail = (int32_t *)xrealloc(s->trail, cap * sizeof(int32_t));
        /* 2x: assumption levels may be empty (assumption already true),
         * so level count can exceed the variable count */
        s->trail_lim =
            (int32_t *)xrealloc(s->trail_lim, (2 * cap + 2) * sizeof(int32_t));
        s->seen = (uint8_t *)xrealloc(s->seen, cap);
        s->lbd_stamp =
            (uint32_t *)xrealloc(s->lbd_stamp, (cap + 1) * sizeof(uint32_t));
        memset(s->lbd_stamp + s->cap_vars, 0,
               (cap + 1 - s->cap_vars) * sizeof(uint32_t));
        s->cap_vars = cap;
    }
    int32_t v = s->nvars++;
    s->assign[v] = 0;
    s->phase[v] = 0;
    s->level[v] = 0;
    s->reason[v] = -1;
    s->activity[v] = 0.0;
    s->heap_pos[v] = -1;
    s->seen[v] = 0;
    heap_insert(s, v);
    return s->nvars; /* external 1-based index of the new variable */
}

static inline int8_t lit_value(const CSolver *s, int32_t l) {
    int8_t a = s->assign[VAR(l)];
    return (l & 1) ? (int8_t)-a : a;
}

static void enqueue(CSolver *s, int32_t l, int32_t from) {
    int32_t v = VAR(l);
    s->assign[v] = (l & 1) ? -1 : 1;
    s->level[v] = s->n_levels;
    s->reason[v] = from;
    s->phase[v] = !(l & 1);
    s->trail[s->trail_sz++] = l;
}

static int32_t alloc_clause(CSolver *s, const int32_t *lits, int32_t n,
                            int32_t lbd) {
    if (s->arena_sz + n + 2 > s->arena_cap) {
        int64_t cap = s->arena_cap ? s->arena_cap : 1 << 16;
        while (cap < s->arena_sz + n + 2) cap *= 2;
        s->arena = (int32_t *)xrealloc(s->arena, cap * sizeof(int32_t));
        s->arena_cap = cap;
    }
    int32_t cref = (int32_t)s->arena_sz;
    s->arena[s->arena_sz++] = n;
    s->arena[s->arena_sz++] = lbd;
    memcpy(s->arena + s->arena_sz, lits, n * sizeof(int32_t));
    s->arena_sz += n;
    return cref;
}

static void watch_clause(CSolver *s, int32_t cref) {
    int32_t *c = s->arena + cref + 2;
    wl_push(&s->watches[NEG(c[0])], c[1], cref);
    wl_push(&s->watches[NEG(c[1])], c[0], cref);
}

/* Unit propagation; returns conflicting cref or -1. */
static int32_t propagate(CSolver *s) {
    int32_t confl = -1;
    while (s->qhead < s->trail_sz) {
        int32_t p = s->trail[s->qhead++];
        WList *w = &s->watches[p];
        Watcher *ws = w->data;
        int32_t i = 0, j = 0, n = w->sz;
        s->propagations++;
        while (i < n) {
            int32_t blocker = ws[i].blocker;
            if (lit_value(s, blocker) == 1) {
                ws[j++] = ws[i++];
                continue;
            }
            int32_t cref = ws[i].cref;
            int32_t *c = s->arena + cref;
            int32_t sz = c[0];
            int32_t *lits = c + 2;
            int32_t false_lit = NEG(p);
            if (lits[0] == false_lit) {
                lits[0] = lits[1];
                lits[1] = false_lit;
            }
            int32_t first = lits[0];
            if (first != blocker && lit_value(s, first) == 1) {
                ws[i].blocker = first;
                ws[j++] = ws[i++];
                continue;
            }
            int32_t k;
            for (k = 2; k < sz; k++) {
                if (lit_value(s, lits[k]) != -1) break;
            }
            if (k < sz) {
                lits[1] = lits[k];
                lits[k] = false_lit;
                wl_push(&s->watches[NEG(lits[1])], first, cref);
                i++;
                continue;
            }
            /* unit or conflict */
            ws[i].blocker = first;
            ws[j++] = ws[i++];
            if (lit_value(s, first) == -1) {
                confl = cref;
                s->qhead = s->trail_sz;
                while (i < n) ws[j++] = ws[i++];
                break;
            }
            enqueue(s, first, cref);
        }
        w->sz = j;
        if (confl >= 0) break;
    }
    return confl;
}

static void backtrack(CSolver *s, int32_t target) {
    if (s->n_levels <= target) return;
    int32_t boundary = s->trail_lim[target];
    for (int32_t i = s->trail_sz - 1; i >= boundary; i--) {
        int32_t v = VAR(s->trail[i]);
        s->assign[v] = 0;
        s->reason[v] = -1;
        heap_insert(s, v);
    }
    s->trail_sz = boundary;
    s->n_levels = target;
    if (s->qhead > boundary) s->qhead = boundary;
}

/* 1UIP conflict analysis. Fills s->learnt_buf (learnt_buf[0] is the
 * asserting literal), returns its size via *out_n, the backjump level
 * via *out_bt and the clause LBD via *out_lbd. */
static void analyze(CSolver *s, int32_t confl, int32_t *out_n,
                    int32_t *out_bt, int32_t *out_lbd) {
    if (s->learnt_cap < s->nvars + 1) {
        s->learnt_cap = s->cap_vars + 1;
        s->learnt_buf = (int32_t *)xrealloc(s->learnt_buf,
                                            s->learnt_cap * sizeof(int32_t));
    }
    int32_t n = 1; /* slot 0 reserved for the asserting literal */
    int32_t pathC = 0;
    int32_t p = L_UNDEF;
    int32_t index = s->trail_sz - 1;
    do {
        int32_t *c = s->arena + confl;
        int32_t sz = c[0];
        int32_t *lits = c + 2;
        for (int32_t k = (p == L_UNDEF) ? 0 : 1; k < sz; k++) {
            int32_t q = lits[k];
            int32_t v = VAR(q);
            if (!s->seen[v] && s->level[v] > 0) {
                s->seen[v] = 1;
                var_bump(s, v);
                if (s->level[v] >= s->n_levels)
                    pathC++;
                else
                    s->learnt_buf[n++] = q;
            }
        }
        while (!s->seen[VAR(s->trail[index])]) index--;
        p = s->trail[index];
        confl = s->reason[VAR(p)];
        s->seen[VAR(p)] = 0;
        index--;
        pathC--;
    } while (pathC > 0);
    s->learnt_buf[0] = NEG(p);

    /* backjump level: highest level among the tail literals */
    int32_t bt = 0, max_i = 1;
    for (int32_t k = 1; k < n; k++) {
        if (s->level[VAR(s->learnt_buf[k])] > bt) {
            bt = s->level[VAR(s->learnt_buf[k])];
            max_i = k;
        }
    }
    if (n > 1) {
        int32_t tmp = s->learnt_buf[1];
        s->learnt_buf[1] = s->learnt_buf[max_i];
        s->learnt_buf[max_i] = tmp;
    }
    /* LBD: distinct decision levels in the clause */
    s->lbd_counter++;
    int32_t lbd = 0;
    for (int32_t k = 0; k < n; k++) {
        int32_t lv = s->level[VAR(s->learnt_buf[k])];
        if (s->lbd_stamp[lv] != s->lbd_counter) {
            s->lbd_stamp[lv] = s->lbd_counter;
            lbd++;
        }
    }
    for (int32_t k = 1; k < n; k++) s->seen[VAR(s->learnt_buf[k])] = 0;
    *out_n = n;
    *out_bt = bt;
    *out_lbd = lbd;
}

static void learnts_push(CSolver *s, int32_t cref) {
    if (s->n_learnts == s->learnts_cap) {
        s->learnts_cap = s->learnts_cap ? s->learnts_cap * 2 : 1024;
        s->learnts = (int32_t *)xrealloc(s->learnts,
                                         s->learnts_cap * sizeof(int32_t));
    }
    s->learnts[s->n_learnts++] = cref;
}

static int lbd_cmp(const void *a, const void *b, void *arg) {
    CSolver *s = (CSolver *)arg;
    int32_t la = s->arena[*(const int32_t *)a + 1];
    int32_t lb = s->arena[*(const int32_t *)b + 1];
    if (la != lb) return la < lb ? -1 : 1;
    /* tie-break on cref (age): keep younger clauses, deterministic */
    return *(const int32_t *)a < *(const int32_t *)b ? -1 : 1;
}

/* glibc qsort_r argument order */
static CSolver *g_sort_solver;
static int lbd_cmp_global(const void *a, const void *b) {
    return lbd_cmp(a, b, g_sort_solver);
}

static void reduce_db(CSolver *s) {
    /* sort by LBD ascending; drop the worst half, protecting glue
     * clauses (lbd <= 2) and clauses that are reasons on the trail */
    g_sort_solver = s;
    qsort(s->learnts, s->n_learnts, sizeof(int32_t), lbd_cmp_global);
    int64_t keep_target = s->n_learnts / 2;
    int64_t j = 0;
    for (int64_t i = 0; i < s->n_learnts; i++) {
        int32_t cref = s->learnts[i];
        int32_t lbd = s->arena[cref + 1];
        int32_t first_var = VAR(s->arena[cref + 2]);
        int is_reason =
            s->assign[first_var] != 0 && s->reason[first_var] == cref;
        if (lbd <= 2 || is_reason || i < keep_target) {
            s->learnts[j++] = cref;
        } else {
            int32_t *lits = s->arena + cref + 2;
            wl_remove(&s->watches[NEG(lits[0])], cref);
            wl_remove(&s->watches[NEG(lits[1])], cref);
            s->arena[cref + 1] = INT32_MAX; /* tombstone */
        }
    }
    s->n_learnts = j;
    s->max_learnts = s->max_learnts + s->max_learnts / 2;
}

int32_t rsat_add_clause(CSolver *s, const int32_t *ext, int32_t n) {
    if (s->root_unsat) return 0;
    backtrack(s, 0);
    /* dedup / tautology / root-simplify using seen[] as scratch */
    int32_t *tmp = (int32_t *)xrealloc(NULL, (n ? n : 1) * sizeof(int32_t));
    int32_t m = 0;
    int taut = 0;
    for (int32_t i = 0; i < n && !taut; i++) {
        int32_t l = ext2int(ext[i]);
        int dup = 0;
        for (int32_t k = 0; k < m; k++) {
            if (tmp[k] == l) dup = 1;
            if (tmp[k] == NEG(l)) taut = 1;
        }
        if (dup || taut) continue;
        int8_t v = lit_value(s, l);
        if (v == 1) taut = 1; /* root-satisfied (level 0) */
        else if (v == -1)
            continue; /* root-false: drop */
        else
            tmp[m++] = l;
    }
    if (taut) {
        free(tmp);
        return 1;
    }
    if (m == 0) {
        free(tmp);
        s->root_unsat = 1;
        return 0;
    }
    if (m == 1) {
        enqueue(s, tmp[0], -1);
        free(tmp);
        if (propagate(s) >= 0) {
            s->root_unsat = 1;
            return 0;
        }
        return 1;
    }
    int32_t cref = alloc_clause(s, tmp, m, -1);
    free(tmp);
    if (s->n_clauses == s->clauses_cap) {
        s->clauses_cap = s->clauses_cap ? s->clauses_cap * 2 : 1024;
        s->clauses = (int32_t *)xrealloc(s->clauses,
                                         s->clauses_cap * sizeof(int32_t));
    }
    s->clauses[s->n_clauses++] = cref;
    watch_clause(s, cref);
    return 1;
}

static int64_t luby(int64_t i) {
    /* Luby sequence, 1-based */
    int64_t k;
    for (k = 1; ((int64_t)1 << k) - 1 < i + 1; k++)
        ;
    while (((int64_t)1 << (k - 1)) - 1 != i) {
        i = i - (((int64_t)1 << (k - 1)) - 1);
        for (k = 1; ((int64_t)1 << k) - 1 < i + 1; k++)
            ;
    }
    return (int64_t)1 << (k - 1);
}

static double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

/* Failed-assumption core, matching the Python solver's _final_core:
 * the falsified assumption literal (as passed in) plus every earlier
 * assumption its falsification rests on via reason chains, sorted by
 * variable. */
static void analyze_final(CSolver *s, int32_t failed_lit) {
    s->core_sz = 0;
    if (s->core_cap < s->nvars + 1) {
        s->core_cap = s->cap_vars + 1;
        s->core = (int32_t *)xrealloc(s->core, s->core_cap * sizeof(int32_t));
    }
    s->core[s->core_sz++] = int2ext(failed_lit);
    if (s->n_levels > 0) {
        s->seen[VAR(failed_lit)] = 1;
        for (int32_t i = s->trail_sz - 1; i >= s->trail_lim[0]; i--) {
            int32_t v = VAR(s->trail[i]);
            if (!s->seen[v]) continue;
            if (s->reason[v] < 0) {
                /* decision below the assumption frontier: an earlier
                 * assumption literal, on the trail with its given sign */
                s->core[s->core_sz++] = int2ext(s->trail[i]);
            } else {
                int32_t *c = s->arena + s->reason[v];
                int32_t sz = c[0];
                int32_t *lits = c + 2;
                for (int32_t k = 1; k < sz; k++) {
                    int32_t u = VAR(lits[k]);
                    if (s->level[u] > 0) s->seen[u] = 1;
                }
            }
            s->seen[v] = 0;
        }
        /* may be left set when the negation is a level-0 unit (the
         * trail walk stops at the first assumption boundary) */
        s->seen[VAR(failed_lit)] = 0;
    }
    /* insertion sort by variable, mirroring core.sort(key=abs) */
    for (int32_t i = 1; i < s->core_sz; i++) {
        int32_t x = s->core[i];
        int32_t j = i - 1;
        while (j >= 0 && abs(s->core[j]) > abs(x)) {
            s->core[j + 1] = s->core[j];
            j--;
        }
        s->core[j + 1] = x;
    }
}

int32_t rsat_solve(CSolver *s, const int32_t *ext_assumps, int32_t n_assumps,
                   int64_t conflict_budget, double time_budget) {
    s->solve_calls++;
    if (s->root_unsat) {
        s->core_sz = 0;
        return 0;
    }
    backtrack(s, 0);
    if (propagate(s) >= 0) {
        s->root_unsat = 1;
        s->core_sz = 0;
        return 0;
    }
    double start = now_seconds();
    int64_t base_conflicts = s->conflicts;
    int64_t restart_round = 0;
    int64_t conflicts_since_restart = 0;
    int64_t restart_limit = s->restart_base * luby(0);
    int64_t next_time_check = s->conflicts + 1;
    int64_t adjusted_max = s->max_learnts > s->n_clauses / 3
                               ? s->max_learnts
                               : s->n_clauses / 3;

    for (;;) {
        int32_t confl = propagate(s);
        if (confl >= 0) {
            s->conflicts++;
            conflicts_since_restart++;
            if (s->n_levels == 0) {
                s->root_unsat = 1;
                s->core_sz = 0;
                return 0;
            }
            int32_t n, bt, lbd;
            analyze(s, confl, &n, &bt, &lbd);
            /* never backjump past the assumption levels' propagations:
             * a jump into them is fine (levels are rebuilt), below 0 is
             * impossible since bt >= 0 */
            backtrack(s, bt);
            if (n == 1) {
                enqueue(s, s->learnt_buf[0], -1);
            } else {
                int32_t cref = alloc_clause(s, s->learnt_buf, n, lbd);
                learnts_push(s, cref);
                watch_clause(s, cref);
                enqueue(s, s->learnt_buf[0], cref);
            }
            s->var_inc /= s->var_decay;
            if (conflict_budget >= 0 &&
                s->conflicts - base_conflicts >= conflict_budget) {
                backtrack(s, 0);
                return -1;
            }
            if (time_budget >= 0 && s->conflicts >= next_time_check) {
                next_time_check = s->conflicts + 64;
                if (now_seconds() - start > time_budget) {
                    backtrack(s, 0);
                    return -1;
                }
            }
            if (conflicts_since_restart >= restart_limit) {
                restart_round++;
                conflicts_since_restart = 0;
                restart_limit = s->restart_base * luby(restart_round);
                s->restarts++;
                backtrack(s, 0);
            }
            if ((int64_t)s->n_learnts > adjusted_max) {
                reduce_db(s);
                adjusted_max = s->max_learnts;
            }
            continue;
        }

        /* assumption decisions first */
        if (s->n_levels < n_assumps) {
            int32_t l = ext2int(ext_assumps[s->n_levels]);
            int8_t v = lit_value(s, l);
            if (v == -1) {
                analyze_final(s, l);
                backtrack(s, 0);
                return 0; /* UNSAT under assumptions, core available */
            }
            s->trail_lim[s->n_levels++] = s->trail_sz;
            if (v == 0) enqueue(s, l, -1);
            continue;
        }

        /* regular decision */
        int32_t var = -1;
        while (s->heap_sz > 0) {
            int32_t v = heap_pop(s);
            if (s->assign[v] == 0) {
                var = v;
                break;
            }
        }
        if (var < 0) return 1; /* model complete; read before next call */
        s->decisions++;
        if (time_budget >= 0 && (s->decisions & 1023) == 0) {
            if (now_seconds() - start > time_budget) {
                backtrack(s, 0);
                return -1;
            }
        }
        s->trail_lim[s->n_levels++] = s->trail_sz;
        enqueue(s, s->phase[var] ? 2 * var : 2 * var + 1, -1);
    }
}

/* -------------------------------------------------------------- state */

void rsat_model(CSolver *s, uint8_t *out) {
    /* out[v] for external v in 1..nvars */
    for (int32_t v = 0; v < s->nvars; v++)
        out[v + 1] = s->assign[v] == 1;
}

void rsat_reset_to_root(CSolver *s) { backtrack(s, 0); }

int32_t rsat_core_size(CSolver *s) { return s->core_sz; }

void rsat_core(CSolver *s, int32_t *out) {
    memcpy(out, s->core, s->core_sz * sizeof(int32_t));
}

void rsat_set_phase(CSolver *s, int32_t var, int32_t ph) {
    if (var >= 1 && var <= s->nvars) s->phase[var - 1] = (uint8_t)ph;
}

void rsat_set_restart_base(CSolver *s, int32_t base) {
    if (base > 0) s->restart_base = base;
}

int64_t rsat_conflicts(CSolver *s) { return s->conflicts; }
int64_t rsat_decisions(CSolver *s) { return s->decisions; }
int64_t rsat_propagations(CSolver *s) { return s->propagations; }
int64_t rsat_restarts(CSolver *s) { return s->restarts; }
int64_t rsat_solve_calls(CSolver *s) { return s->solve_calls; }
int64_t rsat_num_clauses(CSolver *s) { return s->n_clauses; }
int64_t rsat_num_learnts(CSolver *s) { return s->n_learnts; }
int32_t rsat_num_vars(CSolver *s) { return s->nvars; }
int32_t rsat_root_unsat(CSolver *s) { return s->root_unsat; }
