"""CNF formula container.

Variables are positive integers ``1..num_vars``; literals are non-zero
signed integers (DIMACS convention). :class:`Cnf` is a plain container used
to stage clauses before handing them to the solver, and for DIMACS I/O and
the brute-force reference checker used by the test suite.
"""

from __future__ import annotations

from itertools import product

from repro.errors import EncodingError


class Cnf:
    """A CNF formula: a variable pool plus a clause list."""

    def __init__(self):
        self.num_vars = 0
        self.clauses = []

    def new_var(self):
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count):
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals):
        """Add a clause; literals must reference allocated variables."""
        clause = []
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise EncodingError("bad literal {!r}".format(lit))
            if abs(lit) > self.num_vars:
                raise EncodingError(
                    "literal {} references unallocated variable".format(lit)
                )
            clause.append(lit)
        self.clauses.append(clause)
        return clause

    def add_clauses(self, clauses):
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self):
        return len(self.clauses)

    def evaluate(self, assignment):
        """Evaluate under ``assignment``: dict/list var -> bool."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] == (lit > 0) for lit in clause
            ):
                return False
        return True

    def enumerate_models(self, limit=None):
        """Brute-force model enumeration (testing aid; exponential)."""
        if self.num_vars > 22:
            raise EncodingError("too many variables to enumerate")
        models = []
        for bits in product((False, True), repeat=self.num_vars):
            assignment = {i + 1: bits[i] for i in range(self.num_vars)}
            if self.evaluate(assignment):
                models.append(assignment)
                if limit is not None and len(models) >= limit:
                    break
        return models
