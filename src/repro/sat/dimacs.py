"""DIMACS CNF reader/writer.

Interoperability with external SAT tooling: formulas built by the Tseitin
encoder can be exported for cross-checking with any off-the-shelf solver,
and regression CNFs can be loaded back.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.sat.cnf import Cnf


def dumps(cnf, comments=()):
    """Render a :class:`Cnf` in DIMACS format."""
    lines = ["c {}".format(c) for c in comments]
    lines.append("p cnf {} {}".format(cnf.num_vars, len(cnf.clauses)))
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def dump(cnf, path, comments=()):
    with open(path, "w") as handle:
        handle.write(dumps(cnf, comments))


def loads(text):
    """Parse DIMACS text into a :class:`Cnf`."""
    cnf = Cnf()
    declared_vars = None
    pending = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise EncodingError("bad DIMACS header: {!r}".format(line))
            declared_vars = int(parts[2])
            cnf.num_vars = declared_vars
            continue
        pending.extend(int(tok) for tok in line.split())
    if declared_vars is None:
        raise EncodingError("missing DIMACS header")
    clause = []
    for lit in pending:
        if lit == 0:
            cnf.add_clause(clause)
            clause = []
        else:
            if abs(lit) > cnf.num_vars:
                cnf.num_vars = abs(lit)
            clause.append(lit)
    if clause:
        raise EncodingError("trailing clause without terminating 0")
    return cnf


def load(path):
    with open(path) as handle:
        return loads(handle.read())
