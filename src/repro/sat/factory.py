"""Backend selection for SAT solver instances.

Every solver the BMC layer creates goes through :func:`default_solver`,
which picks between the reference Python CDCL implementation and the
optional compiled backend (:mod:`repro.sat.native`). Selection honours
the ``REPRO_SAT_BACKEND`` environment variable:

``python``
    Always the pure-Python solver.
``native``
    Require the compiled backend; raise if it cannot be built/loaded.
    Use in CI legs that must not silently fall back.
``auto`` (default, also any unset/unknown value)
    The compiled backend when a C compiler is available, the Python
    solver otherwise — never an error.

Both backends implement identical solve semantics (statuses, models
valid for the formula, failed-assumption cores); witness bytes are
additionally backend-independent because the engine canonicalizes every
counterexample (see :mod:`repro.bmc.canonical`). Cache fingerprints
never encode the backend for the same reason.
"""

from __future__ import annotations

import os

from repro.sat.solver import Solver, SolverError


def backend_name():
    """The configured backend: ``python``, ``native`` or ``auto``."""
    name = os.environ.get("REPRO_SAT_BACKEND", "auto").strip().lower()
    if name not in ("python", "native", "auto"):
        name = "auto"
    return name


def default_solver(**kwargs):
    """Construct a solver honouring ``REPRO_SAT_BACKEND``.

    ``kwargs`` are forwarded to the Python :class:`Solver` verbatim; the
    native backend accepts ``restart_base`` and ignores the rest (its
    tuning lives in C).
    """
    name = backend_name()
    if name == "python":
        return Solver(**kwargs)
    from repro.sat.native import NativeSolver, native_available

    if name == "native":
        if not native_available():
            raise SolverError(
                "REPRO_SAT_BACKEND=native but the compiled backend is "
                "unavailable (no C compiler, or compilation failed)"
            )
        return NativeSolver(**kwargs)
    # auto
    if native_available():
        return NativeSolver(**kwargs)
    return Solver(**kwargs)
