"""Optional compiled CDCL backend (ctypes over ``_native.c``).

The pure-Python solver in :mod:`repro.sat.solver` is the reference
implementation and always works; this module provides a drop-in
accelerated backend when a C compiler is available. The C source ships
in the package and is compiled *at runtime* — once per source revision,
cached as a shared object keyed by the source hash — so the repository
needs no build step, no setuptools extension, and no wheel story. On
any failure (no compiler, compile error, load error) the backend simply
reports itself unavailable and callers fall back to the Python solver;
nothing in the pipeline requires it.

:class:`NativeSolver` mirrors the subset of the Python ``Solver``
surface the BMC layer consumes: ``new_var``/``new_vars``/``add_clause``/
``add_cnf``, ``solve(assumptions=, conflict_budget=, time_budget=)``
returning a :class:`~repro.sat.solver.SolveResult`, cumulative ``stats``
snapshots, ``num_vars``, ``len(clauses)``/``len(learnts)``, writable
``phase`` (used by canonical witness extraction), and ``root_unsat``.
Models are snapshotted into an immutable byte buffer at SAT exit, so —
like the Python solver's dict models — they stay valid across later
solves that disturb the C solver's assignment.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path

from repro.obs.tracer import get_tracer
from repro.sat.solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    SolverError,
    SolverStats,
    SolveResult,
)

_SOURCE = Path(__file__).with_name("_native.c")

# Cached per-process: None = not tried yet, False = unavailable,
# otherwise the loaded ctypes library.
_LIB = None


def _cache_dir():
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-sat"
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-sat"
    return Path(tempfile.gettempdir()) / "repro-sat"


def _compile_library():
    """Compile ``_native.c`` to a cached .so; return its path or None."""
    if not _SOURCE.exists():
        return None
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return None
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / "librsat-{}.so".format(digest)
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        # Compile to a temp name and rename: concurrent processes racing
        # to build the same revision each land a complete .so.
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(_SOURCE)],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, target)
        return target
    except (OSError, subprocess.SubprocessError):
        return None


def _bind(lib):
    P = ctypes.c_void_p
    i32 = ctypes.c_int32
    i64 = ctypes.c_int64
    sigs = {
        "rsat_new": ([], P),
        "rsat_free": ([P], None),
        "rsat_new_var": ([P], i32),
        "rsat_add_clause": ([P, ctypes.POINTER(i32), i32], i32),
        "rsat_solve": ([P, ctypes.POINTER(i32), i32, i64, ctypes.c_double],
                       i32),
        "rsat_model": ([P, ctypes.POINTER(ctypes.c_uint8)], None),
        "rsat_core_size": ([P], i32),
        "rsat_core": ([P, ctypes.POINTER(i32)], None),
        "rsat_set_phase": ([P, i32, i32], None),
        "rsat_set_restart_base": ([P, i32], None),
        "rsat_conflicts": ([P], i64),
        "rsat_decisions": ([P], i64),
        "rsat_propagations": ([P], i64),
        "rsat_restarts": ([P], i64),
        "rsat_solve_calls": ([P], i64),
        "rsat_num_clauses": ([P], i64),
        "rsat_num_learnts": ([P], i64),
        "rsat_num_vars": ([P], i32),
        "rsat_root_unsat": ([P], i32),
    }
    for name, (argtypes, restype) in sigs.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = restype
    return lib


def _load_library():
    global _LIB
    if _LIB is None:
        path = _compile_library()
        if path is None:
            _LIB = False
        else:
            try:
                _LIB = _bind(ctypes.CDLL(str(path)))
            except OSError:
                _LIB = False
    return _LIB or None


def native_available():
    """True when the compiled backend can be (or already was) loaded."""
    return _load_library() is not None


class _ModelView:
    """Immutable model snapshot with the dict surface witnesses use."""

    __slots__ = ("_buf",)

    def __init__(self, buf):
        self._buf = buf

    def __getitem__(self, var):
        return bool(self._buf[var])

    def get(self, var, default=None):
        if 1 <= var < len(self._buf):
            return bool(self._buf[var])
        return default

    def __contains__(self, var):
        return 1 <= var < len(self._buf)

    def __len__(self):
        return max(0, len(self._buf) - 1)


class _PhaseArray:
    """Write-through view over the C solver's saved phases.

    Canonical witness extraction writes ``solver.phase[var] = bool`` to
    steer the next model toward lex-minimal inputs; reads mirror the
    last value written here (the C side additionally updates phases on
    every enqueue, which this shadow intentionally does not track — no
    caller reads phases back for search-state introspection).
    """

    __slots__ = ("_solver", "_shadow")

    def __init__(self, solver):
        self._solver = solver
        self._shadow = {}

    def __setitem__(self, var, value):
        self._shadow[var] = bool(value)
        lib = self._solver._lib
        lib.rsat_set_phase(self._solver._handle, var, int(bool(value)))

    def __getitem__(self, var):
        return self._shadow.get(var, False)


class _CountProxy:
    """``len()``-only stand-in for the Python solver's clause lists."""

    __slots__ = ("_fn", "_handle")

    def __init__(self, fn, handle):
        self._fn = fn
        self._handle = handle

    def __len__(self):
        return int(self._fn(self._handle))


class NativeSolver:
    """ctypes wrapper presenting the Python ``Solver`` interface."""

    backend = "native"

    def __init__(self, restart_base=100, **_compat_kwargs):
        lib = _load_library()
        if lib is None:
            raise SolverError("native SAT backend unavailable")
        self._lib = lib
        self._handle = lib.rsat_new()
        if restart_base != 100:
            lib.rsat_set_restart_base(self._handle, restart_base)
        self.phase = _PhaseArray(self)
        self.clauses = _CountProxy(lib.rsat_num_clauses, self._handle)
        self.learnts = _CountProxy(lib.rsat_num_learnts, self._handle)

    def __del__(self):
        handle = getattr(self, "_handle", None)
        if handle:
            self._lib.rsat_free(handle)
            self._handle = None

    # ------------------------------------------------------------ state

    @property
    def num_vars(self):
        return int(self._lib.rsat_num_vars(self._handle))

    @property
    def root_unsat(self):
        return bool(self._lib.rsat_root_unsat(self._handle))

    @property
    def stats(self):
        lib, h = self._lib, self._handle
        return SolverStats(
            conflicts=int(lib.rsat_conflicts(h)),
            decisions=int(lib.rsat_decisions(h)),
            propagations=int(lib.rsat_propagations(h)),
            restarts=int(lib.rsat_restarts(h)),
            learned_clauses=int(lib.rsat_num_learnts(h)),
            solve_calls=int(lib.rsat_solve_calls(h)),
        )

    # ---------------------------------------------------------- clauses

    def new_var(self):
        return int(self._lib.rsat_new_var(self._handle))

    def new_vars(self, count):
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals):
        lits = list(literals)
        n = self.num_vars
        for lit in lits:
            if lit == 0 or abs(lit) > n:
                raise SolverError("bad literal {!r}".format(lit))
        arr = (ctypes.c_int32 * len(lits))(*lits)
        return bool(self._lib.rsat_add_clause(self._handle, arr, len(lits)))

    def add_cnf(self, cnf):
        while self.num_vars < cnf.num_vars:
            self.new_var()
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------ solve

    def solve(self, assumptions=None, conflict_budget=None, time_budget=None):
        assumptions = list(assumptions) if assumptions else []
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve(assumptions, conflict_budget, time_budget)
        # same span/counter vocabulary as the Python solver, so the
        # telemetry encode/solve split is backend-independent
        with tracer.span("sat.solve",
                         assumptions=len(assumptions)) as extra:
            res = self._solve(assumptions, conflict_budget, time_budget)
            extra.update(
                status=res.status,
                conflicts=res.conflicts,
                decisions=res.decisions,
                propagations=res.propagations,
            )
            metrics = tracer.metrics
            metrics.counter("sat.solve_calls").inc()
            metrics.counter("sat.conflicts").inc(res.conflicts)
            metrics.counter("sat.decisions").inc(res.decisions)
            metrics.counter("sat.propagations").inc(res.propagations)
            metrics.counter("sat.status." + res.status).inc()
            metrics.histogram("sat.solve_seconds").observe(res.elapsed)
            metrics.gauge("sat.learnts").set(len(self.learnts))
        return res

    def _solve(self, assumptions, conflict_budget, time_budget):
        n = self.num_vars
        for lit in assumptions:
            if lit == 0 or abs(lit) > n:
                raise SolverError("bad assumption {!r}".format(lit))
        lib, h = self._lib, self._handle
        pre_conflicts = int(lib.rsat_conflicts(h))
        pre_decisions = int(lib.rsat_decisions(h))
        pre_propagations = int(lib.rsat_propagations(h))
        start = time.perf_counter()
        arr = (ctypes.c_int32 * max(1, len(assumptions)))(*assumptions)
        code = lib.rsat_solve(
            h,
            arr,
            len(assumptions),
            -1 if conflict_budget is None else int(conflict_budget),
            -1.0 if time_budget is None else float(time_budget),
        )
        elapsed = time.perf_counter() - start
        model = None
        core = None
        if code == 1:
            status = SAT
            buf = (ctypes.c_uint8 * (self.num_vars + 1))()
            lib.rsat_model(h, buf)
            model = _ModelView(bytes(buf))
        elif code == 0:
            status = UNSAT
            if assumptions:
                size = int(lib.rsat_core_size(h))
                out = (ctypes.c_int32 * max(1, size))()
                lib.rsat_core(h, out)
                core = tuple(out[i] for i in range(size))
        else:
            status = UNKNOWN
        return SolveResult(
            status=status,
            model=model,
            conflicts=int(lib.rsat_conflicts(h)) - pre_conflicts,
            decisions=int(lib.rsat_decisions(h)) - pre_decisions,
            propagations=int(lib.rsat_propagations(h)) - pre_propagations,
            elapsed=elapsed,
            core=core,
        )
