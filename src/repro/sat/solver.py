"""A CDCL SAT solver (MiniSat-style) in pure Python.

This is the decision procedure behind the BMC engine, standing in for the
SAT core of Cadence SMV used by the paper. Features:

* two-watched-literal unit propagation,
* 1-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* learned-clause database reduction,
* incremental solving under assumptions (the BMC bound loop re-solves the
  same growing formula with a different "violation at frame t" assumption),
* conflict and wall-clock budgets (the paper caps every run at a fixed
  time budget and reports the largest bound reached — engines need a solver
  that can give up cleanly with ``UNKNOWN``).

The implementation favours clarity over micro-optimization but is careful
about the things that dominate in CPython: tight propagate loop, list-based
watcher schemes, no per-literal object allocation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.errors import SolverError
from repro.obs.tracer import get_tracer

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits, learned):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


@dataclass
class SolveResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``core`` is set exactly when the status is ``"unsat"`` and the call
    was made under assumptions: a subset of those assumption literals
    that is already jointly inconsistent with the formula (the UNSAT
    core, from analyzeFinal-style reason-chain analysis). A root-level
    contradiction — UNSAT regardless of assumptions — yields an empty
    core.
    """

    status: str
    model: dict | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    elapsed: float = 0.0
    core: tuple | None = None

    def __bool__(self):
        return self.status == SAT


@dataclass
class SolverStats:
    """Cumulative statistics across all solve calls."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0
    max_clauses: int = 0
    extra: dict = field(default_factory=dict)


def luby(i):
    """The reluctant-doubling (Luby) sequence, 1-indexed: 1,1,2,1,1,2,4,..."""
    if i < 1:
        raise SolverError("luby is 1-indexed")
    while True:
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << k) - 1


class Solver:
    """Incremental CDCL solver."""

    def __init__(self, restart_base=100, var_decay=0.95, cla_decay=0.999):
        self.num_vars = 0
        self.clauses = []  # problem clauses
        self.learnts = []  # learned clauses
        self.watches = {}  # literal -> list of _Clause watching it
        self.assign = [0]  # var -> 0 / 1 / -1
        self.level = [0]
        self.reason = [None]
        self.activity = [0.0]
        self.phase = [False]
        self.trail = []
        self.trail_lim = []
        self.qhead = 0
        self.heap = []
        self.in_heap = [False]
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.cla_inc = 1.0
        self.cla_decay = cla_decay
        self.restart_base = restart_base
        self.root_unsat = False
        self.max_learnts = 4000.0
        self.stats = SolverStats()

    # -------------------------------------------------------------- problem

    def new_var(self):
        self.num_vars += 1
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        self.in_heap.append(False)
        self._heap_insert(self.num_vars)
        return self.num_vars

    def new_vars(self, count):
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals):
        """Add a problem clause. Must be called at decision level 0."""
        if self.trail_lim:
            self._backtrack(0)
        seen = set()
        lits = []
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError("bad literal {!r}".format(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            lits.append(lit)
        # Drop root-false literals, detect root-satisfied clauses.
        final = []
        for lit in lits:
            v = self._value(lit)
            if v == 1 and self.level[abs(lit)] == 0:
                return True
            if v == -1 and self.level[abs(lit)] == 0:
                continue
            final.append(lit)
        if not final:
            self.root_unsat = True
            return False
        if len(final) == 1:
            if not self._enqueue(final[0], None):
                self.root_unsat = True
                return False
            if self._propagate() is not None:
                self.root_unsat = True
                return False
            return True
        clause = _Clause(final, learned=False)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def add_cnf(self, cnf):
        """Import a :class:`~repro.sat.cnf.Cnf` (allocating variables)."""
        while self.num_vars < cnf.num_vars:
            self.new_var()
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------ searching

    def solve(self, assumptions=(), conflict_budget=None, time_budget=None):
        """Search for a model consistent with ``assumptions``.

        Returns a :class:`SolveResult` whose status is ``"sat"``,
        ``"unsat"`` (under the given assumptions, with an UNSAT ``core``)
        or ``"unknown"`` when a budget ran out.
        """
        assumptions = list(assumptions)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve(assumptions, conflict_budget, time_budget,
                               tracer)
        with tracer.span("sat.solve",
                         assumptions=len(assumptions)) as extra:
            res = self._solve(assumptions, conflict_budget, time_budget,
                              tracer)
            extra.update(
                status=res.status,
                conflicts=res.conflicts,
                decisions=res.decisions,
                propagations=res.propagations,
            )
            metrics = tracer.metrics
            metrics.counter("sat.solve_calls").inc()
            metrics.counter("sat.conflicts").inc(res.conflicts)
            metrics.counter("sat.decisions").inc(res.decisions)
            metrics.counter("sat.propagations").inc(res.propagations)
            metrics.counter("sat.status." + res.status).inc()
            metrics.histogram("sat.solve_seconds").observe(res.elapsed)
            metrics.gauge("sat.learnts").set(len(self.learnts))
        return res

    def _solve(self, assumptions, conflict_budget, time_budget, tracer):
        start = time.perf_counter()
        self.stats.solve_calls += 1
        base_conflicts = self.stats.conflicts
        base_decisions = self.stats.decisions
        base_props = self.stats.propagations

        def result(status, model=None, core=None):
            return SolveResult(
                status=status,
                model=model,
                conflicts=self.stats.conflicts - base_conflicts,
                decisions=self.stats.decisions - base_decisions,
                propagations=self.stats.propagations - base_props,
                elapsed=time.perf_counter() - start,
                core=core,
            )

        if self.root_unsat:
            return result(UNSAT, core=() if assumptions else None)
        self._backtrack(0)
        if self._propagate() is not None:
            self.root_unsat = True
            return result(UNSAT, core=() if assumptions else None)

        restart_round = 0
        conflicts_since_restart = 0
        restart_limit = self.restart_base * luby(1)
        traced = tracer.enabled
        # Conflict-counter threshold for the wall-clock check: the first
        # conflict always reads the clock, then every 16th, so a storm of
        # expensive conflict analyses cannot overrun the budget the way
        # the old `% 64 == 0` modulo gate allowed.
        next_time_check = self.stats.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.root_unsat = True
                    return result(UNSAT, core=() if assumptions else None)
                # Every conflict — above or below the assumption frontier —
                # is analyzed, learnt and backjumped uniformly. A conflict
                # at a level <= len(assumptions) does NOT by itself prove
                # the assumptions inconsistent: the learnt clause may make
                # progress after re-propagation, and only a falsified
                # assumption at decision time (below) justifies UNSAT.
                learnt, bt = self._analyze(conflict)
                self._record_learnt(learnt, bt)
                self._decay_activities()
                if conflict_budget is not None and (
                    self.stats.conflicts - base_conflicts >= conflict_budget
                ):
                    self._backtrack(0)
                    return result(UNKNOWN)
                if time_budget is not None and (
                    self.stats.conflicts >= next_time_check
                ):
                    next_time_check = self.stats.conflicts + 16
                    if time.perf_counter() - start > time_budget:
                        self._backtrack(0)
                        return result(UNKNOWN)
                if conflicts_since_restart >= restart_limit:
                    restart_round += 1
                    conflicts_since_restart = 0
                    restart_limit = self.restart_base * luby(restart_round + 1)
                    self.stats.restarts += 1
                    if traced:
                        tracer.point(
                            "sat.restart",
                            round=restart_round,
                            conflicts=self.stats.conflicts - base_conflicts,
                        )
                        tracer.metrics.counter("sat.restarts").inc()
                    self._backtrack(0)
                if len(self.learnts) > self.max_learnts:
                    before = len(self.learnts)
                    self._reduce_db()
                    if traced:
                        tracer.point(
                            "sat.reduce_db",
                            before=before,
                            after=len(self.learnts),
                        )
                        tracer.metrics.counter("sat.reduce_db").inc()
                continue

            if time_budget is not None and (
                time.perf_counter() - start > time_budget
            ):
                self._backtrack(0)
                return result(UNKNOWN)

            # Assumption decisions first.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                if abs(lit) > self.num_vars or lit == 0:
                    raise SolverError("bad assumption {!r}".format(lit))
                v = self._value(lit)
                if v == -1:
                    # This assumption is falsified by the others plus the
                    # formula: the genuine UNSAT-under-assumptions exit.
                    core = self._final_core(lit)
                    self._backtrack(0)
                    return result(UNSAT, core=core)
                self.trail_lim.append(len(self.trail))
                if v == 0:
                    self._enqueue(lit, None)
                continue

            # Regular decision.
            var = self._pick_branch_var()
            if var is None:
                model = {
                    v: self.assign[v] == 1 for v in range(1, self.num_vars + 1)
                }
                self._backtrack(0)
                return result(SAT, model)
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            lit = var if self.phase[var] else -var
            self._enqueue(lit, None)

    # ----------------------------------------------------------- internals

    def _value(self, lit):
        v = self.assign[abs(lit)]
        return v if lit > 0 else -v

    def _decision_level(self):
        return len(self.trail_lim)

    def _watch(self, clause):
        self.watches.setdefault(clause.lits[0], []).append(clause)
        self.watches.setdefault(clause.lits[1], []).append(clause)

    def _enqueue(self, lit, reason):
        v = self._value(lit)
        if v == 1:
            return True
        if v == -1:
            return False
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        return True

    def _propagate(self):
        assign = self.assign
        watches = self.watches
        trail = self.trail
        while self.qhead < len(trail):
            p = trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -p
            ws = watches.get(false_lit)
            if not ws:
                continue
            watches[false_lit] = kept = []
            idx = 0
            n = len(ws)
            level = len(self.trail_lim)
            while idx < n:
                clause = ws[idx]
                idx += 1
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if first > 0:
                    first_val = assign[first]
                else:
                    first_val = -assign[-first]
                if first_val == 1:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lit = lits[k]
                    value = assign[lit] if lit > 0 else -assign[-lit]
                    if value != -1:
                        lits[1], lits[k] = lit, lits[1]
                        other = watches.get(lit)
                        if other is None:
                            watches[lit] = [clause]
                        else:
                            other.append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if first_val == -1:
                    kept.extend(ws[idx:])
                    self.qhead = len(trail)
                    return clause
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                self.level[var] = level
                self.reason[var] = clause
                self.phase[var] = first > 0
                trail.append(first)
        return None

    def _analyze(self, conflict):
        """1-UIP conflict analysis; returns (learnt clause, backjump level)."""
        learnt = [None]  # position 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p = None
        reason_lits = conflict.lits
        if conflict.learned:
            self._bump_clause(conflict)
        trail_idx = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[trail_idx])]:
                trail_idx -= 1
            p_lit = self.trail[trail_idx]
            trail_idx -= 1
            p = p_lit
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[abs(p_lit)]
            if reason is None:
                raise SolverError("UIP search hit a decision without reason")
            if reason.learned:
                self._bump_clause(reason)
            reason_lits = reason.lits
        learnt[0] = -p

        if len(learnt) == 1:
            return learnt, 0
        # Find the second-highest decision level and move it to position 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.level[abs(learnt[i])] > self.level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _final_core(self, failed_lit):
        """UNSAT core for a falsified assumption (analyzeFinal).

        Called when assumption ``failed_lit`` is false at its decision
        point: every decision currently on the trail is an earlier
        assumption, so walking the reason chains back from
        ``-failed_lit`` collects exactly the subset of assumptions the
        falsification rests on. Returns them (plus ``failed_lit``) as a
        tuple of assumption literals.
        """
        core = [failed_lit]
        if self._decision_level() == 0:
            return tuple(core)
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed_lit)] = True
        for i in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self.reason[var]
            if reason is None:
                # A decision below the assumption frontier is itself an
                # assumption literal.
                core.append(lit)
            else:
                for q in reason.lits:
                    if self.level[abs(q)] > 0:
                        seen[abs(q)] = True
            seen[var] = False
        core.sort(key=abs)
        return tuple(core)

    def _record_learnt(self, learnt, bt_level):
        self._backtrack(bt_level)
        if len(learnt) == 1:
            if not self._enqueue(learnt[0], None):
                self.root_unsat = True
            return
        clause = _Clause(learnt, learned=True)
        clause.activity = self.cla_inc
        self.learnts.append(clause)
        self.stats.learned_clauses += 1
        self._watch(clause)
        self._enqueue(learnt[0], clause)

    def _backtrack(self, target_level):
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for i in range(len(self.trail) - 1, boundary - 1, -1):
            lit = self.trail[i]
            var = abs(lit)
            self.assign[var] = 0
            self.reason[var] = None
            if not self.in_heap[var]:
                self._heap_insert(var)
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = min(self.qhead, len(self.trail))

    # ---------------------------------------------------------- activities

    def _bump_var(self, var):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        if not self.in_heap[var]:
            self._heap_insert(var)
        else:
            # Lazy heap: push a fresh entry, stale ones are skipped on pop.
            heappush(self.heap, (-self.activity[var], var))

    def _bump_clause(self, clause):
        clause.activity += self.cla_inc
        if clause.activity > 1e20:
            for c in self.learnts:
                c.activity *= 1e-20
            self.cla_inc *= 1e-20

    def _decay_activities(self):
        self.var_inc /= self.var_decay
        self.cla_inc /= self.cla_decay

    def _heap_insert(self, var):
        self.in_heap[var] = True
        heappush(self.heap, (-self.activity[var], var))

    def _pick_branch_var(self):
        while self.heap:
            neg_act, var = heappop(self.heap)
            if self.assign[var] == 0 and -neg_act == self.activity[var]:
                self.in_heap[var] = False
                return var
            if self.assign[var] != 0:
                self.in_heap[var] = False
        # Heap exhausted: linear scan fallback (stale entries were dropped).
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == 0:
                return var
        return None

    # ------------------------------------------------------------ reduction

    def _is_reason(self, clause):
        lit = clause.lits[0]
        return self._value(lit) == 1 and self.reason[abs(lit)] is clause

    def _reduce_db(self):
        """Drop the less active half of the learned clauses."""
        self.learnts.sort(key=lambda c: c.activity)
        keep_from = len(self.learnts) // 2
        kept = []
        removed = 0
        for i, clause in enumerate(self.learnts):
            if i >= keep_from or len(clause.lits) <= 2 or self._is_reason(clause):
                kept.append(clause)
            else:
                self._unwatch(clause)
                removed += 1
        self.learnts = kept
        self.stats.deleted_clauses += removed
        self.max_learnts *= 1.1

    def _unwatch(self, clause):
        for lit in clause.lits[:2]:
            watchers = self.watches.get(lit)
            if watchers is not None:
                try:
                    watchers.remove(clause)
                except ValueError:
                    pass

    # ------------------------------------------------------------- utility

    def value_in_model(self, model, lit):
        truth = model[abs(lit)]
        return truth if lit > 0 else not truth
