"""A CDCL SAT solver (MiniSat-style) in pure Python.

This is the decision procedure behind the BMC engine, standing in for the
SAT core of Cadence SMV used by the paper. Features:

* two-watched-literal unit propagation over a flat integer clause arena
  (no per-clause objects on the propagation path) with blocker literals
  and a dedicated binary-clause fast path,
* 1-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* LBD-tagged learnt clauses driving clause-database reduction,
* opt-in chronological backtracking (``chrono_backtrack=N`` caps how many
  decision levels a single backjump may undo),
* incremental solving under assumptions (the BMC bound loop re-solves the
  same growing formula with a different "violation at frame t" assumption),
* conflict and wall-clock budgets (the paper caps every run at a fixed
  time budget and reports the largest bound reached — engines need a solver
  that can give up cleanly with ``UNKNOWN``).

Arena layout: a clause with reference ``c`` occupies
``arena[c] = size``, ``arena[c + 1] = lbd`` (``-1`` for problem clauses)
and ``arena[c + 2 : c + 2 + size]`` are the literals, with the two watched
literals always in the first two slots. Watcher lists are flat
``[blocker, cref, blocker, cref, ...]`` pairs and hold only clauses of
three or more literals; binary clauses live in a separate implication
table (``bins[lit]`` lists the literals implied when ``lit`` becomes
false), so binary propagation is a tight loop that never touches the
arena or migrates watches. Literal truth
values live in a single list indexed by the literal directly —
``_val[lit]`` works for negative literals through Python's negative
indexing — which removes the sign branches from the hot loop.

``self.clauses`` and ``self.learnts`` remain lists (of arena offsets), so
``len(solver.clauses)``/``len(solver.learnts)`` keep their historical
meaning for the engines' delta accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.errors import SolverError
from repro.obs.tracer import get_tracer

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass
class SolveResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``core`` is set exactly when the status is ``"unsat"`` and the call
    was made under assumptions: a subset of those assumption literals
    that is already jointly inconsistent with the formula (the UNSAT
    core, from analyzeFinal-style reason-chain analysis). A root-level
    contradiction — UNSAT regardless of assumptions — yields an empty
    core.
    """

    status: str
    model: dict | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    elapsed: float = 0.0
    core: tuple | None = None

    def __bool__(self):
        return self.status == SAT


@dataclass
class SolverStats:
    """Cumulative statistics across all solve calls."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0
    max_clauses: int = 0
    extra: dict = field(default_factory=dict)


def luby(i):
    """The reluctant-doubling (Luby) sequence, 1-indexed: 1,1,2,1,1,2,4,..."""
    if i < 1:
        raise SolverError("luby is 1-indexed")
    while True:
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << k) - 1


class Solver:
    """Incremental CDCL solver."""

    def __init__(self, restart_base=2000, var_decay=0.95, cla_decay=0.999,
                 chrono_backtrack=0, adaptive_restart_factor=0.0):
        self.num_vars = 0
        # Flat clause arena; offsets 0/1 are a sentinel so crefs are >= 2
        # and a negated cref in a watcher list is always distinguishable.
        self.arena = [0, 0]
        self.arena_waste = 0  # ints occupied by deleted learnt clauses
        self.compact_waste_limit = 1 << 20
        self.clauses = []  # problem clause crefs
        self.learnts = []  # learnt clause crefs
        # _val[lit] is the literal's truth value (1/-1/0) for positive AND
        # negative lits via negative indexing; var truth is _val[var].
        # watches is indexed the same way: watches[lit] is a flat
        # [blocker, cref, ...] pair list (or None) of 3+-literal clauses
        # watching lit. Binary clauses live in their own implication
        # table: bins[lit] is a flat [implied, cref, ...] pair list of
        # consequences of lit becoming false — they never migrate, so the
        # binary propagation loop is branch-minimal.
        self._val_cap = 1024
        self._val = [0] * (2 * self._val_cap + 1)
        self.watches = [None] * (2 * self._val_cap + 1)
        self.bins = [None] * (2 * self._val_cap + 1)
        self.level = [0]
        self.reason = [0]  # var -> cref (0 = decision / no reason)
        self.activity = [0.0]
        self.phase = [False]
        self.trail = []
        self.trail_lim = []
        self.qhead = 0
        # assumptions whose decision levels survived the last solve (in
        # order, one level each) — the reusable prefix for the next solve
        self._assump_trail = []
        self.heap = []
        self.in_heap = [False]
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.cla_decay = cla_decay  # kept for API compat; LBD replaces it
        self.restart_base = restart_base
        self.chrono_backtrack = chrono_backtrack
        # Adaptive (Glucose-style) restart trigger: restart when the mean
        # LBD of the last 50 learnt clauses, scaled by this factor,
        # exceeds the solve's running mean. 0 disables the adaptive layer
        # (pure Luby).
        self.adaptive_restart_factor = adaptive_restart_factor
        self.root_unsat = False
        self.max_learnts = 4000.0
        self.stats = SolverStats()

    # -------------------------------------------------------------- problem

    def new_var(self):
        self.num_vars += 1
        v = self.num_vars
        if v >= self._val_cap:
            self._grow_val()
        self.level.append(0)
        self.reason.append(0)
        self.activity.append(0.0)
        self.phase.append(False)
        self.in_heap.append(True)
        heappush(self.heap, (0.0, v))
        return v

    def new_vars(self, count):
        return [self.new_var() for _ in range(count)]

    def _grow_val(self):
        old, old_watch, old_bins = self._val, self.watches, self.bins
        old_cap = self._val_cap
        cap = self._val_cap = max(2 * old_cap, self.num_vars + 1)
        val = self._val = [0] * (2 * cap + 1)
        watches = self.watches = [None] * (2 * cap + 1)
        bins = self.bins = [None] * (2 * cap + 1)
        for v in range(1, self.num_vars + 1):
            neg = 2 * old_cap + 1 - v
            val[v] = old[v]
            val[-v] = old[neg]
            watches[v] = old_watch[v]
            watches[-v] = old_watch[neg]
            bins[v] = old_bins[v]
            bins[-v] = old_bins[neg]

    def add_clause(self, literals):
        """Add a problem clause. Must be called at decision level 0."""
        if self.trail_lim:
            self._backtrack(0)
            self._assump_trail = []
        seen = set()
        lits = []
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError("bad literal {!r}".format(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            lits.append(lit)
        # Drop root-false literals, detect root-satisfied clauses.
        val = self._val
        final = []
        for lit in lits:
            v = val[lit]
            if v == 1 and self.level[abs(lit)] == 0:
                return True
            if v == -1 and self.level[abs(lit)] == 0:
                continue
            final.append(lit)
        if not final:
            self.root_unsat = True
            return False
        if len(final) == 1:
            if not self._enqueue(final[0], 0):
                self.root_unsat = True
                return False
            if self._propagate() is not None:
                self.root_unsat = True
                return False
            return True
        cref = self._alloc(final, -1)
        self.clauses.append(cref)
        self._watch(cref, final)
        return True

    def add_cnf(self, cnf):
        """Import a :class:`~repro.sat.cnf.Cnf` (allocating variables)."""
        while self.num_vars < cnf.num_vars:
            self.new_var()
        for clause in cnf.clauses:
            self.add_clause(clause)

    def _alloc(self, lits, lbd):
        arena = self.arena
        cref = len(arena)
        arena.append(len(lits))
        arena.append(lbd)
        arena.extend(lits)
        return cref

    def _watch(self, cref, lits):
        a, b = lits[0], lits[1]
        table = self.bins if len(lits) == 2 else self.watches
        wa = table[a]
        if wa is None:
            table[a] = [b, cref]
        else:
            wa.append(b)
            wa.append(cref)
        wb = table[b]
        if wb is None:
            table[b] = [a, cref]
        else:
            wb.append(a)
            wb.append(cref)

    # ------------------------------------------------------------ searching

    def solve(self, assumptions=(), conflict_budget=None, time_budget=None):
        """Search for a model consistent with ``assumptions``.

        Returns a :class:`SolveResult` whose status is ``"sat"``,
        ``"unsat"`` (under the given assumptions, with an UNSAT ``core``)
        or ``"unknown"`` when a budget ran out.
        """
        assumptions = list(assumptions)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve(assumptions, conflict_budget, time_budget,
                               tracer)
        with tracer.span("sat.solve",
                         assumptions=len(assumptions)) as extra:
            res = self._solve(assumptions, conflict_budget, time_budget,
                              tracer)
            extra.update(
                status=res.status,
                conflicts=res.conflicts,
                decisions=res.decisions,
                propagations=res.propagations,
            )
            metrics = tracer.metrics
            metrics.counter("sat.solve_calls").inc()
            metrics.counter("sat.conflicts").inc(res.conflicts)
            metrics.counter("sat.decisions").inc(res.decisions)
            metrics.counter("sat.propagations").inc(res.propagations)
            metrics.counter("sat.status." + res.status).inc()
            metrics.histogram("sat.solve_seconds").observe(res.elapsed)
            metrics.gauge("sat.learnts").set(len(self.learnts))
        return res

    def _solve(self, assumptions, conflict_budget, time_budget, tracer):
        start = time.perf_counter()
        self.stats.solve_calls += 1
        base_conflicts = self.stats.conflicts
        base_decisions = self.stats.decisions
        base_props = self.stats.propagations

        def result(status, model=None, core=None):
            return SolveResult(
                status=status,
                model=model,
                conflicts=self.stats.conflicts - base_conflicts,
                decisions=self.stats.decisions - base_decisions,
                propagations=self.stats.propagations - base_props,
                elapsed=time.perf_counter() - start,
                core=core,
            )

        if self.root_unsat:
            return result(UNSAT, core=() if assumptions else None)
        # Assumption-prefix reuse: every exit below leaves the trail at
        # its assumption levels (one decision level per assumption, in
        # order) and records them in _assump_trail. When the next solve's
        # assumption list shares a prefix with the previous one — the
        # dominant pattern in canonical witness extraction, where the
        # list only ever grows by one literal — the shared levels and all
        # their propagations are kept instead of being torn down and
        # redone. Any clause addition invalidates the kept prefix
        # (add_clause backtracks to 0), so a kept level's propagations
        # are always complete for the current formula.
        prev = self._assump_trail
        keep = 0
        limit = min(len(prev), len(assumptions), len(self.trail_lim))
        while keep < limit and prev[keep] == assumptions[keep]:
            keep += 1
        self._backtrack(keep)
        self._assump_trail = prev[:keep]
        if not keep and self._propagate() is not None:
            self.root_unsat = True
            return result(UNSAT, core=() if assumptions else None)

        n_assumptions = len(assumptions)
        chrono = self.chrono_backtrack
        restart_round = 0
        conflicts_since_restart = 0
        restart_limit = self.restart_base * luby(1)
        traced = tracer.enabled
        # Glucose-style adaptive restarts, layered on the Luby schedule:
        # restart early when the recent learnt-clause quality (LBD) is
        # worse than the solve's running average, but hold off while the
        # trail is much deeper than usual (the search is likely closing
        # in on a model). All counters are per-solve, so incremental
        # callers see deterministic, self-contained behavior.
        adaptive = self.adaptive_restart_factor
        lbd_sum = 0.0
        trail_sum = 0.0
        n_conflicts_here = 0
        recent = [0] * 50
        recent_sum = 0.0
        recent_fill = 0
        recent_idx = 0
        # Conflict-counter threshold for the wall-clock check: the first
        # conflict always reads the clock, then every 16th, so a storm of
        # expensive conflict analyses cannot overrun the budget the way
        # the old `% 64 == 0` modulo gate allowed.
        next_time_check = self.stats.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    self.root_unsat = True
                    self._assump_trail = []
                    return result(UNSAT, core=() if assumptions else None)
                # Every conflict — above or below the assumption frontier —
                # is analyzed, learnt and backjumped uniformly. A conflict
                # at a level <= len(assumptions) does NOT by itself prove
                # the assumptions inconsistent: the learnt clause may make
                # progress after re-propagation, and only a falsified
                # assumption at decision time (below) justifies UNSAT.
                learnt, bt = self._analyze(conflict)
                if chrono:
                    # Chronological backtracking: a backjump further than
                    # `chrono` levels is capped at one level instead. The
                    # learnt clause is still asserting there (its other
                    # literals sit at levels <= the computed backjump
                    # level), and the assumption frontier is never
                    # crossed, so core bookkeeping is unaffected.
                    cur = len(self.trail_lim)
                    if cur - bt > chrono and cur - 1 >= n_assumptions:
                        bt = cur - 1
                n_conflicts_here += 1
                trail_here = len(self.trail)
                trail_sum += trail_here
                lbd = self._record_learnt(learnt, bt)
                lbd_sum += lbd
                if (
                    recent_fill == 50
                    and trail_here * n_conflicts_here > 1.4 * trail_sum
                ):
                    # Blocking: the trail is unusually deep — the search
                    # may be near a model, postpone adaptive restarts.
                    recent_fill = 0
                    recent_sum = 0.0
                    recent_idx = 0
                elif recent_fill == 50:
                    recent_sum += lbd - recent[recent_idx]
                    recent[recent_idx] = lbd
                    recent_idx = (recent_idx + 1) % 50
                else:
                    recent[recent_idx] = lbd
                    recent_sum += lbd
                    recent_idx = (recent_idx + 1) % 50
                    recent_fill += 1
                self.var_inc /= self.var_decay
                if conflict_budget is not None and (
                    self.stats.conflicts - base_conflicts >= conflict_budget
                ):
                    self._retreat_to_assumptions(assumptions, n_assumptions)
                    return result(UNKNOWN)
                if time_budget is not None and (
                    self.stats.conflicts >= next_time_check
                ):
                    next_time_check = self.stats.conflicts + 16
                    if time.perf_counter() - start > time_budget:
                        self._retreat_to_assumptions(
                            assumptions, n_assumptions
                        )
                        return result(UNKNOWN)
                if conflicts_since_restart >= restart_limit or (
                    adaptive
                    and recent_fill == 50
                    and recent_sum * adaptive * n_conflicts_here
                    > 50 * lbd_sum
                ):
                    restart_round += 1
                    conflicts_since_restart = 0
                    restart_limit = self.restart_base * luby(restart_round + 1)
                    recent_fill = 0
                    recent_sum = 0.0
                    recent_idx = 0
                    self.stats.restarts += 1
                    if traced:
                        tracer.point(
                            "sat.restart",
                            round=restart_round,
                            conflicts=self.stats.conflicts - base_conflicts,
                        )
                        tracer.metrics.counter("sat.restarts").inc()
                    self._backtrack(0)
                if len(self.learnts) > self.max_learnts:
                    before = len(self.learnts)
                    self._reduce_db()
                    if traced:
                        tracer.point(
                            "sat.reduce_db",
                            before=before,
                            after=len(self.learnts),
                        )
                        tracer.metrics.counter("sat.reduce_db").inc()
                continue

            if time_budget is not None and (
                time.perf_counter() - start > time_budget
            ):
                self._retreat_to_assumptions(assumptions, n_assumptions)
                return result(UNKNOWN)

            # Assumption decisions first.
            if len(self.trail_lim) < n_assumptions:
                lit = assumptions[len(self.trail_lim)]
                if abs(lit) > self.num_vars or lit == 0:
                    raise SolverError("bad assumption {!r}".format(lit))
                v = self._val[lit]
                if v == -1:
                    # This assumption is falsified by the others plus the
                    # formula: the genuine UNSAT-under-assumptions exit.
                    # All current levels are assumption levels; keep them
                    # for the next solve's shared prefix.
                    core = self._final_core(lit)
                    self._assump_trail = list(
                        assumptions[:len(self.trail_lim)]
                    )
                    return result(UNSAT, core=core)
                self.trail_lim.append(len(self.trail))
                if v == 0:
                    self._enqueue(lit, 0)
                continue

            # Regular decision.
            var = self._pick_branch_var()
            if var is None:
                val = self._val
                model = {
                    v: val[v] == 1 for v in range(1, self.num_vars + 1)
                }
                self._retreat_to_assumptions(assumptions, n_assumptions)
                return result(SAT, model)
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, 0)

    # ----------------------------------------------------------- internals

    def _retreat_to_assumptions(self, assumptions, n_assumptions):
        """Exit a solve keeping only the assumption decision levels.

        The first ``min(n_assumptions, current levels)`` levels are, by
        construction of the decision loop, the assumptions in order —
        backjumps and restarts only ever remove levels from the top, and
        re-placement happens in list order. Keeping them (and recording
        which assumptions they are) lets the next solve with a shared
        assumption prefix skip re-propagating it.
        """
        keep = min(n_assumptions, len(self.trail_lim))
        self._backtrack(keep)
        self._assump_trail = list(assumptions[:keep])

    def _value(self, lit):
        return self._val[lit]

    def _decision_level(self):
        return len(self.trail_lim)

    def _enqueue(self, lit, reason):
        val = self._val
        v = val[lit]
        if v:
            return v == 1
        var = lit if lit > 0 else -lit
        val[lit] = 1
        val[-lit] = -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        return True

    def _propagate(self):
        """Unit propagation; returns the conflicting cref or ``None``.

        The loop works on flat watcher pair-lists and the literal-indexed
        value array; the only arena traffic is for non-binary clauses
        whose blocker is not already satisfied. Each watcher list is
        edited in place — entries are only compacted (shifted left) after
        the first clause actually migrates to a new watch, so the common
        all-entries-stay visit does no list writes beyond blocker updates.
        """
        val = self._val
        arena = self.arena
        watches = self.watches
        bins = self.bins
        trail = self.trail
        trail_append = trail.append
        level = self.level
        reason = self.reason
        phase = self.phase
        lvl = len(self.trail_lim)
        qhead = self.qhead
        ntrail = len(trail)
        props = 0
        confl = None
        while qhead < ntrail:
            p = trail[qhead]
            qhead += 1
            props += 1
            bw = bins[-p]
            if bw:
                # Binary fast path: every pair (b, cref) in bins[-p] is a
                # clause {-p, b}; with -p now false, b must hold.
                i = 0
                nb = len(bw)
                while i < nb:
                    b = bw[i]
                    v = val[b]
                    if v == 0:
                        var = b if b > 0 else -b
                        val[b] = 1
                        val[-b] = -1
                        level[var] = lvl
                        reason[var] = bw[i + 1]
                        phase[var] = b > 0
                        trail_append(b)
                        ntrail += 1
                    elif v < 0:
                        confl = bw[i + 1]
                        break
                    i += 2
                if confl is not None:
                    qhead = ntrail
                    break
            ws = watches[-p]
            if not ws:
                continue
            i = 0
            j = -1  # compaction cursor; -1 while no entry has migrated
            n = len(ws)
            while i < n:
                b = ws[i]
                if val[b] == 1:
                    # Blocker satisfied: clause is true, keep untouched.
                    if j >= 0:
                        ws[j] = b
                        ws[j + 1] = ws[i + 1]
                        j += 2
                    i += 2
                    continue
                cref = ws[i + 1]
                base = cref + 2
                l0 = arena[base]
                if l0 == -p:
                    l0 = arena[base + 1]
                    arena[base + 1] = -p
                    arena[base] = l0
                v0 = val[l0]
                if v0 == 1:
                    if j >= 0:
                        ws[j] = l0
                        ws[j + 1] = cref
                        j += 2
                    else:
                        ws[i] = l0
                    i += 2
                    continue
                end = base + arena[cref]
                k = base + 2
                while k < end:
                    lk = arena[k]
                    if val[lk] >= 0:
                        # New watch found: move the clause over.
                        arena[base + 1] = lk
                        arena[k] = -p
                        wl = watches[lk]
                        if wl is None:
                            watches[lk] = [l0, cref]
                        else:
                            wl.append(l0)
                            wl.append(cref)
                        break
                    k += 1
                else:
                    if j >= 0:
                        ws[j] = l0
                        ws[j + 1] = cref
                        j += 2
                    else:
                        ws[i] = l0
                    i += 2
                    if v0 == 0:
                        var = l0 if l0 > 0 else -l0
                        val[l0] = 1
                        val[-l0] = -1
                        level[var] = lvl
                        reason[var] = cref
                        phase[var] = l0 > 0
                        trail_append(l0)
                        ntrail += 1
                        continue
                    confl = cref
                    break
                # Entry migrated away: start (or continue) compacting.
                if j < 0:
                    j = i
                i += 2
            if j >= 0:
                while i < n:
                    ws[j] = ws[i]
                    ws[j + 1] = ws[i + 1]
                    j += 2
                    i += 2
                del ws[j:]
            if confl is not None:
                qhead = ntrail
                break
        self.qhead = qhead
        self.stats.propagations += props
        return confl

    def _clause_lits(self, cref):
        base = cref + 2
        return self.arena[base:base + self.arena[cref]]

    def _analyze(self, conflict):
        """1-UIP conflict analysis; returns (learnt clause, backjump level)."""
        arena = self.arena
        level = self.level
        reason = self.reason
        trail = self.trail
        activity = self.activity
        in_heap = self.in_heap
        heap = self.heap
        var_inc = self.var_inc
        learnt = [0]  # position 0 reserved for the asserting literal
        seen = bytearray(self.num_vars + 1)
        counter = 0
        p = 0
        cref = conflict
        trail_idx = len(trail) - 1
        current_level = len(self.trail_lim)

        while True:
            base = cref + 2
            for k in range(base, base + arena[cref]):
                q = arena[k]
                if q == p:
                    continue
                var = q if q > 0 else -q
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    # Inline activity bump (lazy heap: push a fresh entry,
                    # stale ones are skipped on pop).
                    act = activity[var] + var_inc
                    activity[var] = act
                    if act > 1e100:
                        self.var_inc = var_inc
                        self._rescale_activities()
                        var_inc = self.var_inc
                        act = activity[var]
                    in_heap[var] = True
                    heappush(heap, (-act, var))
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                p_lit = trail[trail_idx]
                if seen[p_lit if p_lit > 0 else -p_lit]:
                    break
                trail_idx -= 1
            trail_idx -= 1
            p = p_lit
            counter -= 1
            if counter == 0:
                break
            cref = reason[p_lit if p_lit > 0 else -p_lit]
            if not cref:
                raise SolverError("UIP search hit a decision without reason")
        learnt[0] = -p

        if len(learnt) == 1:
            return learnt, 0
        # Conflict-clause minimization (MiniSat "basic"): a literal is
        # redundant if its variable was propagated by a clause whose other
        # literals are all already in the learnt clause (seen) or at the
        # root level — removing it keeps the clause implied.
        kept = [learnt[0]]
        for idx in range(1, len(learnt)):
            q = learnt[idx]
            r = reason[q if q > 0 else -q]
            if not r:
                kept.append(q)
                continue
            base = r + 2
            for k in range(base, base + arena[r]):
                lit = arena[k]
                var = lit if lit > 0 else -lit
                if not seen[var] and level[var] > 0:
                    kept.append(q)
                    break
        learnt = kept
        if len(learnt) == 1:
            return learnt, 0
        # Find the second-highest decision level and move it to position 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if level[abs(learnt[i])] > level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, level[abs(learnt[1])]

    def _final_core(self, failed_lit):
        """UNSAT core for a falsified assumption (analyzeFinal).

        Called when assumption ``failed_lit`` is false at its decision
        point: every decision currently on the trail is an earlier
        assumption, so walking the reason chains back from
        ``-failed_lit`` collects exactly the subset of assumptions the
        falsification rests on. Returns them (plus ``failed_lit``) as a
        tuple of assumption literals.
        """
        core = [failed_lit]
        if not self.trail_lim:
            return tuple(core)
        arena = self.arena
        level = self.level
        seen = bytearray(self.num_vars + 1)
        seen[abs(failed_lit)] = 1
        for i in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            cref = self.reason[var]
            if not cref:
                # A decision below the assumption frontier is itself an
                # assumption literal.
                core.append(lit)
            else:
                base = cref + 2
                for k in range(base, base + arena[cref]):
                    q = arena[k]
                    if level[abs(q)] > 0:
                        seen[abs(q)] = 1
            seen[var] = 0
        core.sort(key=abs)
        return tuple(core)

    def _record_learnt(self, learnt, bt_level):
        """Backjump, store the learnt clause, return its LBD."""
        if len(learnt) == 1:
            self._backtrack(bt_level)
            if not self._enqueue(learnt[0], 0):
                self.root_unsat = True
            return 1
        # LBD = number of distinct decision levels among the literals,
        # computed before backtracking invalidates the levels.
        level = self.level
        lbd = len({level[abs(q)] for q in learnt})
        self._backtrack(bt_level)
        cref = self._alloc(learnt, lbd)
        self.learnts.append(cref)
        self.stats.learned_clauses += 1
        self._watch(cref, learnt)
        self._enqueue(learnt[0], cref)
        return lbd

    def _backtrack(self, target_level):
        if len(self.trail_lim) <= target_level:
            return
        val = self._val
        reason = self.reason
        in_heap = self.in_heap
        activity = self.activity
        heap = self.heap
        trail = self.trail
        boundary = self.trail_lim[target_level]
        for i in range(len(trail) - 1, boundary - 1, -1):
            lit = trail[i]
            var = lit if lit > 0 else -lit
            val[lit] = 0
            val[-lit] = 0
            reason[var] = 0
            if not in_heap[var]:
                in_heap[var] = True
                heappush(heap, (-activity[var], var))
        del trail[boundary:]
        del self.trail_lim[target_level:]
        if self.qhead > boundary:
            self.qhead = boundary

    # ---------------------------------------------------------- activities

    def _bump_var(self, var):
        activity = self.activity
        activity[var] += self.var_inc
        if activity[var] > 1e100:
            self._rescale_activities()
        # Lazy heap: push a fresh entry, stale ones are skipped on pop.
        self.in_heap[var] = True
        heappush(self.heap, (-activity[var], var))

    def _rescale_activities(self):
        activity = self.activity
        for v in range(1, self.num_vars + 1):
            activity[v] *= 1e-100
        self.var_inc *= 1e-100

    def _decay_activities(self):
        self.var_inc /= self.var_decay

    def _heap_insert(self, var):
        self.in_heap[var] = True
        heappush(self.heap, (-self.activity[var], var))

    def _pick_branch_var(self):
        val = self._val
        activity = self.activity
        in_heap = self.in_heap
        heap = self.heap
        while heap:
            neg_act, var = heappop(heap)
            if not val[var] and -neg_act == activity[var]:
                in_heap[var] = False
                return var
            if val[var]:
                in_heap[var] = False
        # Heap exhausted: linear scan fallback (stale entries were dropped).
        for var in range(1, self.num_vars + 1):
            if not val[var]:
                return var
        return None

    # ------------------------------------------------------------ reduction

    def _is_reason(self, cref):
        lit = self.arena[cref + 2]
        return self._val[lit] == 1 and self.reason[abs(lit)] == cref

    def _reduce_db(self):
        """Drop the worst half of the learnt clauses, ranked by LBD.

        Glue clauses (LBD <= 2), binary clauses and clauses currently
        locked as a reason on the trail are always kept.
        """
        arena = self.arena
        learnts = self.learnts
        learnts.sort(key=lambda c: (arena[c + 1], arena[c]))
        keep_from = len(learnts) // 2
        kept = []
        removed = 0
        for i, cref in enumerate(learnts):
            if (
                i < keep_from
                or arena[cref] <= 2
                or arena[cref + 1] <= 2
                or self._is_reason(cref)
            ):
                kept.append(cref)
            else:
                self._unwatch(cref)
                self.arena_waste += arena[cref] + 2
                removed += 1
        self.learnts = kept
        self.stats.deleted_clauses += removed
        self.max_learnts *= 1.1
        if self.arena_waste > self.compact_waste_limit:
            self._compact_arena()

    def _unwatch(self, cref):
        # Only 3+-literal clauses are ever unwatched: _reduce_db protects
        # binary clauses, so bins entries are immortal.
        arena = self.arena
        for lit in (arena[cref + 2], arena[cref + 3]):
            ws = self.watches[lit]
            if ws is None:
                continue
            for i in range(1, len(ws), 2):
                if ws[i] == cref:
                    del ws[i - 1:i + 1]
                    break

    def _compact_arena(self):
        """Copy live clauses into a fresh arena, dropping deleted ones.

        Remaps clause references in the problem/learnt lists, the reason
        array and every watcher entry; watched-literal positions are
        preserved, so the propagation invariants carry over unchanged.
        """
        arena = self.arena
        new_arena = [0, 0]
        remap = {}
        for lst in (self.clauses, self.learnts):
            for idx, cref in enumerate(lst):
                size = arena[cref]
                nc = len(new_arena)
                new_arena.extend(arena[cref:cref + 2 + size])
                remap[cref] = nc
                lst[idx] = nc
        reason = self.reason
        for lit in self.trail:
            var = lit if lit > 0 else -lit
            r = reason[var]
            if r:
                reason[var] = remap[r]
        for table in (self.watches, self.bins):
            for ws in table:
                if not ws:
                    continue
                for i in range(1, len(ws), 2):
                    ws[i] = remap[ws[i]]
        self.arena = new_arena
        self.arena_waste = 0

    # ------------------------------------------------------------- utility

    def value_in_model(self, model, lit):
        truth = model[abs(lit)]
        return truth if lit > 0 else not truth
