"""Tseitin encoding of netlist cells into CNF clauses.

Gates become clause groups over a sink (``add_clause``/``new_var``
interface — both :class:`~repro.sat.cnf.Cnf` and
:class:`~repro.sat.solver.Solver` qualify). Inverters and buffers are *not*
encoded: callers alias the output literal to (the negation of) the input
literal, which roughly halves variable counts on typical netlists. The same
applies to NAND/NOR/XNOR: they are encoded as their base gate with an
inverted output literal by :func:`encode_cell`.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.netlist.cells import Kind


def encode_and(sink, out, inputs):
    """out <-> AND(inputs)."""
    for lit in inputs:
        sink.add_clause([-out, lit])
    sink.add_clause([out] + [-lit for lit in inputs])


def encode_or(sink, out, inputs):
    """out <-> OR(inputs)."""
    for lit in inputs:
        sink.add_clause([out, -lit])
    sink.add_clause([-out] + list(inputs))


def encode_xor2(sink, out, a, b):
    """out <-> a XOR b."""
    sink.add_clause([-out, a, b])
    sink.add_clause([-out, -a, -b])
    sink.add_clause([out, -a, b])
    sink.add_clause([out, a, -b])


def encode_xor(sink, out, inputs):
    """out <-> XOR(inputs); folds n-ary XOR with auxiliary variables."""
    acc = inputs[0]
    for i, lit in enumerate(inputs[1:]):
        if i == len(inputs) - 2:
            nxt = out
        else:
            nxt = sink.new_var()
        encode_xor2(sink, nxt, acc, lit)
        acc = nxt
    if len(inputs) == 1:
        # Degenerate 1-input XOR is a buffer.
        sink.add_clause([-out, inputs[0]])
        sink.add_clause([out, -inputs[0]])


def encode_mux(sink, out, sel, d0, d1):
    """out <-> sel ? d1 : d0 (with the redundant propagation clauses)."""
    sink.add_clause([-sel, -d1, out])
    sink.add_clause([-sel, d1, -out])
    sink.add_clause([sel, -d0, out])
    sink.add_clause([sel, d0, -out])
    sink.add_clause([d0, d1, -out])
    sink.add_clause([-d0, -d1, out])


def encode_cell(sink, kind, out_lit, in_lits):
    """Encode one combinational cell.

    ``NOT``/``BUF`` must be handled by literal aliasing in the caller and
    are rejected here. NAND/NOR/XNOR encode as the base gate with ``-out``.
    """
    if kind is Kind.AND:
        encode_and(sink, out_lit, in_lits)
    elif kind is Kind.OR:
        encode_or(sink, out_lit, in_lits)
    elif kind is Kind.XOR:
        encode_xor(sink, out_lit, in_lits)
    elif kind is Kind.NAND:
        encode_and(sink, -out_lit, in_lits)
    elif kind is Kind.NOR:
        encode_or(sink, -out_lit, in_lits)
    elif kind is Kind.XNOR:
        encode_xor(sink, -out_lit, in_lits)
    elif kind is Kind.MUX:
        encode_mux(sink, out_lit, in_lits[0], in_lits[1], in_lits[2])
    elif kind in (Kind.NOT, Kind.BUF):
        raise EncodingError(
            "{} cells are aliased, not encoded; caller bug".format(kind)
        )
    else:  # pragma: no cover - closed enum
        raise EncodingError("unknown cell kind {!r}".format(kind))


class CombEncoder:
    """Encodes the combinational logic of a netlist once (single frame).

    Used by the combinational checks in the test suite and the baselines.
    Sequential unrolling lives in :mod:`repro.bmc.unroll`.
    """

    def __init__(self, netlist, sink):
        from repro.netlist.traversal import topological_cells

        self.netlist = netlist
        self.sink = sink
        self.true_lit = sink.new_var()
        sink.add_clause([self.true_lit])
        self._lit = {0: -self.true_lit, 1: self.true_lit}
        for nets in netlist.inputs.values():
            for net in nets:
                self._lit[net] = sink.new_var()
        for flop in netlist.flops:
            self._lit[flop.q] = sink.new_var()
        for idx in topological_cells(netlist):
            cell = netlist.cells[idx]
            ins = [self._lit[n] for n in cell.inputs]
            if cell.kind is Kind.BUF:
                self._lit[cell.output] = ins[0]
            elif cell.kind is Kind.NOT:
                self._lit[cell.output] = -ins[0]
            else:
                out = sink.new_var()
                self._lit[cell.output] = out
                encode_cell(sink, cell.kind, out, ins)

    def lit(self, net):
        """SAT literal of a net (inputs, flop Qs and cell outputs)."""
        try:
            return self._lit[net]
        except KeyError:
            raise EncodingError(
                "net {} not in encoded cone".format(net)
            ) from None
