"""Parallel audit scheduling on a persistent worker pool.

Two layers:

* :mod:`~repro.sched.pool` — :class:`PersistentWorkerPool`: N check
  workers spawned once, each serving tasks over its own pipe with the
  crash-isolation guarantees of the fork-per-attempt runner (hard
  timeout kill + respawn, ``RLIMIT_AS`` at spawn, EOF-as-crash).
* :mod:`~repro.sched.scheduler` — :class:`AuditScheduler`: Algorithm 1
  as a dynamic task DAG, scheduled across registers and designs, with
  serial-replay assembly so the parallel report is identical to the
  serial one, claim-locked cache coordination, early cancellation, and
  per-design telemetry subtrees.

Entry points: ``TrojanDetector(..., config=AuditConfig(jobs=N))`` (or
``CheckRunner.configure(workers=N)``) routes a single audit through the
scheduler; :class:`AuditScheduler` directly schedules many designs on
one pool (the ``repro bench`` path).
"""

from repro.sched.pool import PersistentWorkerPool, PoolEvent
from repro.sched.scheduler import AuditRequest, AuditScheduler

__all__ = [
    "AuditRequest",
    "AuditScheduler",
    "PersistentWorkerPool",
    "PoolEvent",
]
