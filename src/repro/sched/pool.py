"""Persistent worker pool: spawn once, feed tasks over pipes.

PR 1's :func:`~repro.runner.worker.run_in_process` pays one ``fork`` +
interpreter teardown per *attempt* — fine for isolating a dozen checks,
ruinous for an audit fleet running thousands. :class:`PersistentWorkerPool`
spawns its workers **once**; each worker loops on its own duplex pipe,
pulling one task at a time and sending back the same tagged-tuple
protocol the fork-per-attempt worker speaks (``("ok", result)`` /
``("budget", msg, bound)`` / ``("crashed", msg)``, plus the optional
trailing telemetry dict). The crash-isolation guarantees carry over:

* a task that raises is caught *inside* the worker, reported as a
  protocol tuple, and the worker lives on to serve the next task;
* a worker that dies outright (segfault, ``os._exit``, OOM-kill) is
  detected as EOF on its pipe, reported as ``("crashed", ...)``, and
  **respawned** so the pool never shrinks;
* a task that overruns its hard deadline gets its worker killed
  (terminate → kill) and respawned, reported as ``("timeout", ...)``;
* ``RLIMIT_AS`` is installed once per worker at spawn (the cap is
  per-process and survives across tasks).

Scheduling stays on the supervisor side: the pool exposes *assignment*
(:meth:`submit` hands one task to one idle worker) and *observation*
(:meth:`wait` blocks until results, deaths or deadlines) and nothing
else. Priorities, retries, caching and DAG bookkeeping belong to
:class:`~repro.sched.scheduler.AuditScheduler`.

Telemetry: when ``collect_events`` is set, each worker buffers its spans
in a fresh :class:`~repro.obs.tracer.BufferTracer` per task and ships
them with the result, exactly like the fork-per-attempt protocol; a
killed worker loses the in-flight buffer by construction.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from repro.errors import ReproError, ResourceBudgetExceeded
from repro.obs.profiling import profiled
from repro.obs.tracer import NULL_TRACER, BufferTracer, set_tracer
from repro.runner.worker import _apply_memory_cap

_KILL_GRACE = 5.0  # seconds to wait after terminate() before SIGKILL

EXIT = "exit"
TASK = "task"


def _pool_worker_main(conn, memory_bytes, injector):
    """Worker entry point: serve tasks from the pipe until told to exit.

    The worker inherits the parent's global tracer on fork — including
    an open trace-file handle it must never write to; it is replaced
    before any task runs and per task afterwards.
    """
    set_tracer(NULL_TRACER)
    if memory_bytes is not None:
        _apply_memory_cap(memory_bytes)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not message or message[0] == EXIT:
            break
        (_kind, task_id, task, name, attempt_index, collect_events,
         profile_dir) = message
        buffer = BufferTracer() if collect_events else None
        set_tracer(buffer if collect_events else NULL_TRACER)

        def payload(base):
            if buffer is None:
                return base
            return base + ({
                "events": buffer.drain(),
                "counters": buffer.metrics.snapshot()["counters"],
            },)

        try:
            if injector is not None:
                injector.fire(name, attempt_index, in_worker=True)
            with profiled(profile_dir,
                          "{}.attempt{}".format(name, attempt_index)):
                result = task()
            out = payload(("ok", result))
        except ResourceBudgetExceeded as exc:
            out = payload(
                ("budget", str(exc), getattr(exc, "bound_reached", 0))
            )
        except MemoryError as exc:
            # building the telemetry payload may itself need memory the
            # rlimit no longer grants; report bare
            out = ("crashed", "MemoryError: {}".format(exc))
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            out = payload(
                ("crashed", "{}: {}".format(type(exc).__name__, exc))
            )
        set_tracer(NULL_TRACER)
        try:
            conn.send((task_id, out))
        except (OSError, ValueError):
            break  # parent is gone; nothing left to serve
    try:
        conn.close()
    except OSError:
        pass


def _ephemeral_main(conn, task_id, task, name, attempt_index, memory_bytes,
                    injector, collect_events, profile_dir):
    """One-shot fork worker for tasks that cannot cross a pipe.

    Pool tasks are normally pickled into a persistent worker; a task
    holding an unpicklable object (e.g. a ``RegisterSpec`` whose valid
    ways are lambdas) instead rides a ``fork`` into a single-use child
    that inherits it by copy-on-write — the same trick PR 1's
    fork-per-attempt worker relies on. Protocol and crash semantics are
    identical to :func:`_pool_worker_main`; the child serves exactly one
    task and exits.
    """
    set_tracer(NULL_TRACER)
    if memory_bytes is not None:
        _apply_memory_cap(memory_bytes)
    buffer = BufferTracer() if collect_events else None
    set_tracer(buffer if collect_events else NULL_TRACER)

    def payload(base):
        if buffer is None:
            return base
        return base + ({
            "events": buffer.drain(),
            "counters": buffer.metrics.snapshot()["counters"],
        },)

    try:
        if injector is not None:
            injector.fire(name, attempt_index, in_worker=True)
        with profiled(profile_dir,
                      "{}.attempt{}".format(name, attempt_index)):
            result = task()
        out = payload(("ok", result))
    except ResourceBudgetExceeded as exc:
        out = payload(("budget", str(exc), getattr(exc, "bound_reached", 0)))
    except MemoryError as exc:
        out = ("crashed", "MemoryError: {}".format(exc))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        out = payload(("crashed", "{}: {}".format(type(exc).__name__, exc)))
    try:
        conn.send((task_id, out))
    except (OSError, ValueError):
        pass
    try:
        conn.close()
    except OSError:
        pass


def _context():
    """Prefer fork (cheap spawn, COW memory) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


@dataclass
class _Worker:
    """Supervisor-side handle for one pool worker process."""

    proc: object
    conn: object
    task_id: object = None  # currently assigned task, None = idle
    deadline: float | None = None  # perf_counter() kill time
    name: str = ""  # check name of the assigned task (diagnostics)
    tasks_served: int = 0
    # an unpicklable task runs in a one-shot fork child instead of the
    # persistent process; while it does, this slot watches the proxy's
    # pipe and the persistent worker sits untouched behind it
    proxy_proc: object = None
    proxy_conn: object = None

    @property
    def idle(self):
        return self.task_id is None

    @property
    def watch_conn(self):
        return self.proxy_conn if self.proxy_conn is not None else self.conn


@dataclass
class PoolEvent:
    """One observation from :meth:`PersistentWorkerPool.wait`.

    ``message`` is a worker-protocol tuple (possibly with the trailing
    telemetry dict); ``kind`` mirrors ``message[0]`` for dispatch.
    """

    task_id: object
    message: tuple
    kind: str = field(init=False)

    def __post_init__(self):
        self.kind = self.message[0]


class PersistentWorkerPool:
    """A fixed-size pool of long-lived check workers.

    Parameters
    ----------
    size:
        Number of worker processes, spawned eagerly by :meth:`start`.
    memory_bytes:
        ``RLIMIT_AS`` installed in each worker at spawn.
    injector:
        Optional fault injector fired inside workers before each task.
    collect_events:
        Buffer per-task telemetry in the workers and ship it back with
        each result.
    profile_dir:
        cProfile pstats directory, one dump per task attempt.
    """

    def __init__(self, size, memory_bytes=None, injector=None,
                 mp_context=None, collect_events=False, profile_dir=None):
        if size < 1:
            raise ReproError("pool size must be >= 1, got {}".format(size))
        self.size = size
        self.memory_bytes = memory_bytes
        self.injector = injector
        self.ctx = mp_context if mp_context is not None else _context()
        self.collect_events = collect_events
        self.profile_dir = profile_dir
        self._workers = []
        self.stats = {
            "spawned": 0, "respawned": 0, "tasks_submitted": 0,
            "results": 0, "kills": 0, "worker_deaths": 0, "cancels": 0,
            "ephemeral": 0,
        }

    # ------------------------------------------------------------ lifecycle

    def start(self):
        while len(self._workers) < self.size:
            self._workers.append(self._spawn())
        return self

    def _spawn(self):
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self.memory_bytes, self.injector),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # exactly one child-side handle → EOF works
        self.stats["spawned"] += 1
        return _Worker(proc=proc, conn=parent_conn)

    def _kill(self, worker):
        self.stats["kills"] += 1
        worker.proc.terminate()
        worker.proc.join(_KILL_GRACE)
        if worker.proc.is_alive():  # pragma: no cover - terminate sufficed
            worker.proc.kill()
            worker.proc.join()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _replace(self, worker):
        self._kill(worker)
        index = self._workers.index(worker)
        self._workers[index] = self._spawn()
        self.stats["respawned"] += 1

    def _release_proxy(self, worker, kill=False):
        """Reap a slot's one-shot proxy child; the slot goes back idle.

        The persistent worker behind the slot never saw the task, so no
        respawn is needed — only the proxy dies.
        """
        proc, conn = worker.proxy_proc, worker.proxy_conn
        worker.proxy_proc = None
        worker.proxy_conn = None
        worker.task_id = None
        worker.deadline = None
        worker.name = ""
        if kill:
            self.stats["kills"] += 1
            proc.terminate()
        proc.join(_KILL_GRACE)
        if proc.is_alive():  # pragma: no cover - terminate sufficed
            proc.kill()
            proc.join()
        try:
            conn.close()
        except OSError:
            pass

    def shutdown(self):
        """Stop every worker: idle ones exit politely, busy ones die."""
        for worker in self._workers:
            if worker.proxy_proc is not None:
                self._release_proxy(worker, kill=True)
        for worker in self._workers:
            if worker.idle:
                try:
                    worker.conn.send((EXIT,))
                except (OSError, ValueError):
                    pass
        for worker in self._workers:
            if worker.idle:
                worker.proc.join(_KILL_GRACE)
            if worker.proc.is_alive():
                self._kill(worker)
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._workers = []

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.shutdown()

    # ----------------------------------------------------------- assignment

    @property
    def workers(self):
        return list(self._workers)

    @property
    def idle_count(self):
        return sum(1 for w in self._workers if w.idle)

    @property
    def busy_count(self):
        return sum(1 for w in self._workers if not w.idle)

    def submit(self, task_id, task, name="check", attempt_index=0,
               hard_timeout=None):
        """Hand ``task`` to an idle worker; ``False`` when all are busy.

        ``hard_timeout`` (seconds) arms the supervisor-side kill clock
        for this assignment; ``None`` trusts the task's cooperative
        budget.
        """
        worker = next((w for w in self._workers if w.idle), None)
        if worker is None:
            return False
        try:
            worker.conn.send((
                TASK, task_id, task, name, attempt_index,
                self.collect_events, self.profile_dir,
            ))
        except (pickle.PicklingError, AttributeError, TypeError):
            # Connection.send pickles the whole message before writing a
            # single byte, so the persistent worker's pipe is still
            # clean — fall back to a one-shot fork child that inherits
            # the task instead of pickling it.
            if self.ctx.get_start_method() != "fork":
                raise
            parent_conn, child_conn = self.ctx.Pipe(duplex=False)
            proc = self.ctx.Process(
                target=_ephemeral_main,
                args=(child_conn, task_id, task, name, attempt_index,
                      self.memory_bytes, self.injector,
                      self.collect_events, self.profile_dir),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            worker.proxy_proc = proc
            worker.proxy_conn = parent_conn
            self.stats["ephemeral"] += 1
        worker.task_id = task_id
        worker.name = name
        worker.deadline = (
            time.perf_counter() + hard_timeout
            if hard_timeout is not None else None
        )
        worker.tasks_served += 1
        self.stats["tasks_submitted"] += 1
        return True

    def cancel(self, task_id):
        """Abandon a running assignment: kill its worker, respawn.

        The canceled task produces **no** event — the caller has already
        decided its result is unwanted. Returns ``True`` when the task
        was running (and its worker was killed), ``False`` otherwise.
        """
        for worker in self._workers:
            if worker.task_id == task_id:
                self.stats["cancels"] += 1
                if worker.proxy_proc is not None:
                    self._release_proxy(worker, kill=True)
                else:
                    self._replace(worker)
                return True
        return False

    # ---------------------------------------------------------- observation

    def next_deadline(self):
        """Earliest armed kill time among busy workers (perf_counter)."""
        deadlines = [w.deadline for w in self._workers
                     if not w.idle and w.deadline is not None]
        return min(deadlines) if deadlines else None

    def wait(self, timeout=None):
        """Block until something happens; returns a list of `PoolEvent`.

        Wakes for: a worker result, a worker death (EOF → ``crashed``
        event + respawn), a deadline expiry (kill + respawn +
        ``timeout`` event), or ``timeout`` seconds elapsing (empty
        list). With nothing to wait *for* (no busy workers) it returns
        immediately.
        """
        events = []
        if self.busy_count == 0:
            if timeout:
                time.sleep(min(timeout, 0.05))
            return events
        now = time.perf_counter()
        wake = self.next_deadline()
        poll = timeout
        if wake is not None:
            until_kill = max(0.0, wake - now)
            poll = until_kill if poll is None else min(poll, until_kill)
        busy = {w.watch_conn: w for w in self._workers if not w.idle}
        ready = _conn_wait(list(busy), timeout=poll)
        for conn in ready:
            worker = busy[conn]
            task_id = worker.task_id
            proxied = worker.proxy_conn is not None
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                if proxied:
                    proc = worker.proxy_proc
                    proc.join(_KILL_GRACE)
                    exitcode = proc.exitcode
                    self.stats["worker_deaths"] += 1
                    self._release_proxy(worker)
                else:
                    worker.proc.join(_KILL_GRACE)
                    exitcode = worker.proc.exitcode
                    self.stats["worker_deaths"] += 1
                    self._replace(worker)
                events.append(PoolEvent(task_id, (
                    "crashed",
                    "worker died without a result (exit code {})".format(
                        exitcode
                    ),
                )))
                continue
            if proxied:
                self._release_proxy(worker)
            worker.task_id = None
            worker.deadline = None
            worker.name = ""
            got_id, message = payload
            if got_id != task_id:  # pragma: no cover - protocol invariant
                events.append(PoolEvent(task_id, (
                    "crashed",
                    "worker answered task {!r} while assigned {!r}".format(
                        got_id, task_id
                    ),
                )))
                continue
            self.stats["results"] += 1
            events.append(PoolEvent(task_id, message))
        # deadline sweep: kill anything past its hard timeout
        now = time.perf_counter()
        for worker in list(self._workers):
            if worker.idle or worker.deadline is None:
                continue
            if now >= worker.deadline:
                task_id = worker.task_id
                overrun = now - worker.deadline
                if worker.proxy_proc is not None:
                    self._release_proxy(worker, kill=True)
                else:
                    self._replace(worker)
                events.append(PoolEvent(task_id, (
                    "timeout",
                    "hard timeout: worker killed {:.1f}s past "
                    "deadline".format(overrun),
                )))
        return events
