"""Dependency-aware parallel scheduling of Algorithm 1 audits.

:class:`AuditScheduler` runs the paper's per-register check sequence —
Eq. (3) pseudo-critical tracking, Eq. (2) corruption, Eq. (4) bypass —
concurrently across registers *and* across designs on one
:class:`~repro.sched.pool.PersistentWorkerPool`, and still produces
reports **identical** to the serial
:class:`~repro.core.detector.TrojanDetector` loop. Two ideas make that
possible:

**Dynamic task DAG.** Every check is a node. Within a register,
``tracking(after)`` nodes are ready immediately; each ``tracking(before)``
node is gated on its ``after`` sibling finishing *without* a proof
(serial never runs ``before`` once ``after`` promoted the candidate). A
candidate promoted to pseudo-critical dynamically enqueues its own
shadow-corruption audit — new nodes appear as verdicts arrive. The
corruption and bypass nodes are ready immediately and run
*speculatively*: serial may never have reached them (``stop_on_first``),
so whether their results are *used* is decided later.

**Serial-replay assembly.** A register's finding is assembled only when
every check the serial loop *would have run* has completed, consuming
outcomes in exactly the serial order and discarding speculative results
serial would not have produced (a bypass solved in parallel with a
corruption check that found the Trojan is simply dropped). Registers
commit strictly in the serial (lint-prioritized) order, so
``report.findings``, each finding's ``check_outcomes`` insertion order,
promotion lists and stop-on-first truncation are byte-for-byte the
serial result. Early-cancel is the converse: the moment an outcome
proves a node's result can never be consumed — a committed Trojan at an
earlier register, a detected corruption ahead of its speculative bypass
— the node's worker is killed and the node dropped, *without* waiting.

Cross-pool coordination: cache-participating nodes claim their
fingerprint in a :class:`~repro.cache.ClaimRegistry` before solving;
losing the claim defers the node, which re-consults the cache while it
waits — two pools sharing a ``--cache-dir`` never solve the same check
twice. Telemetry: each node records its check/attempt spans (plus the
worker-shipped engine spans) in a private buffer; committed registers
replay their kept nodes' buffers, in serial order, into a per-design
``audit`` subtree that lands in the main trace when the design finishes
— N workers, one coherent tree.
"""

from __future__ import annotations

import heapq
import time

from repro.bmc.witness import confirms_violation
from repro.core.detector import (
    fused_register_scores,
    prioritize_registers,
)
from repro.core.report import DetectionReport, RegisterFinding
from repro.core.registers import pseudo_critical_candidates
from repro.errors import CheckpointWriteError, ReproError
from repro.obs.tracer import NULL_TRACER, BufferTracer, get_tracer
from repro.runner import AuditCheckpoint
from repro.runner.checkpoint import warn_checkpoint_lost
from repro.runner.execution import CheckExecution
from repro.runner.outcome import AttemptRecord
from repro.runner.policy import CRASHED, OK, RetryPolicy
from repro.runner.supervisor import PROCESS, absorb_message
from repro.runner.tasks import GroupObjectiveTask
from repro.sched.pool import PersistentWorkerPool

#: Node kinds (one per Algorithm 1 check family).
TRACKING = "tracking"
GROUP = "group"
CORRUPTION = "corruption"
SHADOW = "shadow"
BYPASS = "bypass"

#: Seconds between cache re-consults while another process holds a claim.
CLAIM_POLL = 0.05
#: Idle wait when nothing is running (deferred work pending).
IDLE_POLL = 0.2


class AuditRequest:
    """One design audit to schedule: a detector plus ``run()`` arguments."""

    def __init__(self, detector, registers=None, checkpoint=None):
        self.detector = detector
        self.registers = registers
        self.checkpoint = checkpoint


class _Node:
    """One schedulable check. States: waiting (gated), ready, deferred,
    running, done, canceled."""

    __slots__ = (
        "audit", "reg", "kind", "name", "seq", "priority", "factory",
        "task", "state", "execution", "retry", "candidate", "direction",
        "group_members", "claim_key", "claim_registry", "claim_held",
        "delay_served", "tracer", "check_span", "attempt_span",
        "attempt_task", "attempt_started", "outcome", "events",
    )

    def __init__(self, audit, reg, kind, name, seq, factory=None,
                 task=None):
        self.audit = audit
        self.reg = reg
        self.kind = kind
        self.name = name
        self.seq = seq
        self.priority = (-reg.static_score, audit.index, reg.index, seq)
        self.factory = factory
        self.task = task
        self.state = "waiting"
        self.execution = None
        self.retry = None
        self.candidate = None
        self.direction = None
        self.group_members = None
        self.claim_key = None
        self.claim_registry = None
        self.claim_held = False
        self.delay_served = False
        self.tracer = None
        self.check_span = None
        self.attempt_span = None
        self.attempt_task = None
        self.attempt_started = 0.0
        self.outcome = None
        self.events = None

    @property
    def done(self):
        return self.state == "done"

    @property
    def verdict(self):
        return self.outcome.verdict


class _RegisterState:
    """Scheduler-side view of one register's audit progress."""

    def __init__(self, audit, index, register, static_score):
        self.audit = audit
        self.index = index
        self.register = register
        # fused lint + IFT + diff priority score (fused_register_scores)
        self.static_score = static_score
        self.spec = None
        self.started = 0.0
        self.error = None  # raised when the serial replay reaches it
        self.candidates = []
        self.tracking = {}  # (candidate, direction) -> node
        self.grouped = False
        self.builds = []  # (candidate, direction, MonitorBuild), serial order
        self.group_nodes = []
        self.group_pending = 0
        self.group_results = {}  # build index -> engine result
        self.group_failures = {}  # build index -> group node CheckOutcome
        self.decisions = {}  # candidate -> (promoted, direction|None)
        self.promoted = None  # [(candidate, direction)] once fully decided
        self.corruption = None
        self.shadows = {}  # candidate -> node
        self.shadow_stop = None  # candidate index of first detected shadow
        self.suppress_shadows = False  # corruption found + stop_on_first
        self.bypass = None
        self.committed = False
        self.discarded = False

    def nodes(self):
        for node in self.tracking.values():
            yield node
        for node in self.group_nodes:
            yield node
        if self.corruption is not None:
            yield self.corruption
        for node in self.shadows.values():
            yield node
        if self.bypass is not None:
            yield self.bypass


class _AuditState:
    """One design audit in flight."""

    def __init__(self, index, detector, names, report, store):
        self.index = index
        self.detector = detector
        self.names = names  # serial (lint-prioritized) register order
        self.report = report
        self.store = store  # AuditCheckpoint or None
        self.regs = {}  # register -> _RegisterState (non-restored only)
        self.frontier = 0  # index into names of next commit
        self.started = time.perf_counter()
        self.done = False
        self.buf = None  # per-design BufferTracer
        self.audit_span = None


class AuditScheduler:
    """Runs one or more audits on a persistent pool of ``jobs`` workers.

    Pool-wide settings (memory cap, fault injector, profile dir,
    multiprocessing context) come from the **first** request's runner;
    per-node settings (retry policy, hard timeouts, cache directory)
    honour each request's own runner and detector.
    """

    def __init__(self, requests, jobs, mp_context=None):
        if not requests:
            raise ReproError("no audits to schedule")
        if jobs < 1:
            raise ReproError("jobs must be >= 1, got {}".format(jobs))
        self.requests = list(requests)
        self.jobs = jobs
        self.mp_context = mp_context
        self.audits = []
        self.pool = None
        self.tracer = get_tracer()
        self._seq = 0
        self._ready = []  # heap of (priority, node)
        self._deferred = []  # heap of (not_before, seq, node, wake_kind)
        self._running = {}  # seq -> node
        self._claims = {}  # id(backend) -> CacheBackend (claims released at end)
        self.stats = {"checks": 0, "cache_completed": 0, "discarded": 0,
                      "canceled": 0}

    # ------------------------------------------------------------------ API

    def run(self):
        """Run every audit to completion; returns reports in request
        order. Reports are identical to each detector's serial output."""
        self.tracer = get_tracer()
        for index, request in enumerate(self.requests):
            self.audits.append(self._setup_audit(index, request))
        for audit in self.audits:
            self._advance(audit)
        if not self._incomplete():
            return [audit.report for audit in self.audits]
        first = self.requests[0].detector.runner
        self.pool = PersistentWorkerPool(
            self.jobs,
            memory_bytes=first.limits.memory_bytes,
            injector=first.fault_injector,
            mp_context=self.mp_context or first.mp_context,
            collect_events=self.tracer.enabled,
            profile_dir=first.profile_dir,
        )
        try:
            self.pool.start()
            self._loop()
        finally:
            self.pool.shutdown()
            for registry in self._claims.values():
                registry.release_all()
        return [audit.report for audit in self.audits]

    # ------------------------------------------------------------ main loop

    def _incomplete(self):
        return any(not audit.done for audit in self.audits)

    def _loop(self):
        while self._incomplete():
            now = time.perf_counter()
            self._wake_deferred(now)
            self._dispatch()
            if not self._incomplete():
                return
            if not (self._running or self._ready or self._deferred):
                stuck = [
                    "{}[{}]".format(a.report.design, a.names[a.frontier])
                    for a in self.audits
                    if not a.done and a.frontier < len(a.names)
                ]
                raise ReproError(
                    "scheduler stalled with no runnable work; blocked on "
                    "{}".format(", ".join(stuck) or "nothing")
                )
            timeout = IDLE_POLL
            if self._deferred:
                timeout = min(
                    timeout,
                    max(0.0, self._deferred[0][0] - time.perf_counter()),
                )
            if self._running:
                for event in self.pool.wait(timeout=timeout):
                    self._on_event(event)
            else:
                time.sleep(max(timeout, 0.001))

    def _wake_deferred(self, now):
        while self._deferred and self._deferred[0][0] <= now:
            _due, _seq, node, wake = heapq.heappop(self._deferred)
            if node.state != "deferred":
                continue
            if wake == "claim" and node.execution.consult_cache(count=False):
                self._complete(node)
                continue
            if wake == "backoff":
                node.delay_served = True
            node.state = "ready"
            heapq.heappush(self._ready, (node.priority, node))

    def _defer(self, node, until, wake):
        node.state = "deferred"
        heapq.heappush(self._deferred, (until, node.seq, node, wake))

    def _dispatch(self):
        while self._ready and self.pool.idle_count > 0:
            _prio, node = heapq.heappop(self._ready)
            if node.state not in ("ready",):
                continue
            if node.execution is None and not self._init_execution(node):
                continue  # answered by the cache, or swallowed an error
            if node.claim_key is not None and not node.claim_held:
                if not node.claim_registry.claim(node.claim_key):
                    self._defer(node, time.perf_counter() + CLAIM_POLL,
                                "claim")
                    continue
                node.claim_held = True
                # the previous holder may have stored a verdict between
                # our miss and our claim: one more look before solving
                if node.execution.consult_cache(count=False):
                    self._complete(node)
                    continue
            task, delay = node.execution.next_attempt()
            if delay > 0 and not node.delay_served:
                self._defer(node, time.perf_counter() + delay, "backoff")
                continue
            node.delay_served = False
            self._submit(node, task)

    def _submit(self, node, task):
        runner = node.audit.detector.runner
        index = node.execution.attempt_index
        node.attempt_task = task
        node.attempt_started = time.perf_counter()
        if node.tracer is not None:
            node.attempt_span = node.tracer.begin(
                "runner.attempt", check=node.name, index=index,
                mode=PROCESS,
            )
        self.pool.submit(
            node.seq, task, name=node.name, attempt_index=index,
            hard_timeout=runner.limits.effective_timeout(
                getattr(task, "time_budget", None)
            ),
        )
        node.state = "running"
        self._running[node.seq] = node

    def _on_event(self, event):
        node = self._running.pop(event.task_id, None)
        if node is None:
            return  # canceled after the result was already in flight
        execution = node.execution
        task = node.attempt_task
        record = AttemptRecord(
            index=execution.attempt_index,
            status=CRASHED,
            mode=PROCESS,
            max_cycles=getattr(task, "max_cycles", 0) or 0,
            time_budget=getattr(task, "time_budget", None),
        )
        record._result = None
        message = event.message
        if node.tracer is not None and message and isinstance(
            message[-1], dict
        ) and "events" in message[-1]:
            telemetry = message[-1]
            node.tracer.absorb(telemetry.get("events"))
            node.tracer.metrics.merge_counters(
                telemetry.get("counters") or {}
            )
            message = message[:-1]
        if node.kind == GROUP and message[0] == "ok":
            # a group's result is a per-member list, not an engine result
            record.status = OK
            record._result = message[1]
        else:
            absorb_message(
                record, message, node.name,
                node.tracer if node.tracer is not None else NULL_TRACER,
            )
        record.elapsed = time.perf_counter() - node.attempt_started
        if node.tracer is not None:
            node.tracer.end(
                node.attempt_span,
                status=record.status, bound=record.bound_reached,
            )
            node.attempt_span = None
        if execution.record_attempt(record):
            self._complete(node)
            return
        retry = node.retry
        if node.tracer is not None:
            node.tracer.point(
                "runner.retry",
                check=node.name,
                failed_status=record.status,
                next_attempt=execution.attempt_index,
                backoff=retry.delay_for(execution.attempt_index),
            )
            node.tracer.metrics.counter("runner.retries").inc()
        delay = retry.delay_for(execution.attempt_index)
        if delay > 0:
            self._defer(node, time.perf_counter() + delay, "backoff")
            node.delay_served = True
        else:
            node.state = "ready"
            heapq.heappush(self._ready, (node.priority, node))

    # --------------------------------------------------------- node plumbing

    def _add_node(self, reg, kind, name, factory=None, task=None,
                  ready=False):
        self._seq += 1
        node = _Node(reg.audit, reg, kind, name, self._seq,
                     factory=factory, task=task)
        node.retry = (
            RetryPolicy() if kind == GROUP
            else reg.audit.detector.runner.retry
        )
        if ready:
            node.state = "ready"
            heapq.heappush(self._ready, (node.priority, node))
        return node

    def _init_execution(self, node):
        """Build the task and its state machine; consult the cache.

        Returns ``False`` when the node needs no worker (full cache hit)
        — the node is completed in place.
        """
        runner = node.audit.detector.runner
        if node.task is None:
            node.task = node.factory()
        cache = runner.cache_for(getattr(node.task, "cache_dir", None))
        node.execution = CheckExecution(
            node.task, node.name, node.retry, cache=cache
        )
        if self.tracer.enabled:
            node.tracer = BufferTracer()
            node.check_span = node.tracer.begin(
                "runner.check", check=node.name
            )
        done = node.execution.consult_cache()
        if node.tracer is not None and (
            node.execution.outcome.cache is not None
        ):
            node.tracer.point(
                "cache." + node.execution.outcome.cache, check=node.name
            )
        if cache is not None and hasattr(node.task, "cache_key") and (
            not done
        ):
            # the backend carries both the store and the claim registry;
            # remember it so shutdown can release whatever is still held
            self._claims[id(cache)] = cache
            node.claim_registry = cache
            node.claim_key = node.task.cache_key()
        if done:
            self.stats["cache_completed"] += 1
            self._complete(node)
            return False
        return True

    def _complete(self, node):
        outcome = node.execution.finish()
        node.outcome = outcome
        node.state = "done"
        self.stats["checks"] += 1
        if node.claim_held:
            # the worker stored its verdict before sending the result,
            # so releasing here means waiters find a readable entry
            node.claim_registry.release(node.claim_key)
            node.claim_held = False
        if node.tracer is not None:
            node.tracer.end(
                node.check_span,
                status=outcome.status,
                attempts=len(outcome.attempts),
                cache=outcome.cache,
                bound=outcome.bound_reached,
            )
            node.events = node.tracer.drain()
            metrics = self.tracer.metrics
            metrics.merge_counters(
                node.tracer.metrics.snapshot()["counters"]
            )
            metrics.counter("runner.checks").inc()
            metrics.counter("runner.attempts").inc(len(outcome.attempts))
            metrics.histogram("runner.check_seconds").observe(
                outcome.elapsed
            )
            node.tracer = None
        self._node_finished(node)

    def _cancel_node(self, node):
        if node is None or node.state in ("done", "canceled"):
            return
        if node.state == "running":
            self.pool.cancel(node.seq)
            self._running.pop(node.seq, None)
        if node.claim_held:
            node.claim_registry.release(node.claim_key)
            node.claim_held = False
        node.state = "canceled"
        node.tracer = None
        self.stats["canceled"] += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter("sched.canceled").inc()

    # ----------------------------------------------------------- DAG events

    def _node_finished(self, node):
        reg = node.reg
        if reg.discarded or node.audit.done:
            return
        det = node.audit.detector
        stop = det.stop_on_first
        if node.kind == TRACKING:
            self._tracking_done(node)
        elif node.kind == GROUP:
            self._group_done(node)
        elif node.kind == CORRUPTION:
            if stop and node.verdict.detected:
                # serial would never reach this register's shadows/bypass
                reg.suppress_shadows = True
                for shadow in reg.shadows.values():
                    self._cancel_node(shadow)
                self._cancel_node(reg.bypass)
        elif node.kind == SHADOW:
            if stop and node.verdict.detected:
                order = reg.candidates.index(node.candidate)
                if reg.shadow_stop is None or order < reg.shadow_stop:
                    reg.shadow_stop = order
                for candidate, shadow in reg.shadows.items():
                    if reg.candidates.index(candidate) > order:
                        self._cancel_node(shadow)
                self._cancel_node(reg.bypass)
        self._advance(node.audit)

    def _tracking_done(self, node):
        reg = node.reg
        candidate = node.candidate
        if node.direction == "after":
            if node.verdict.status == "proved":
                self._decide(reg, candidate, True, "after")
                # serial short-circuits: "before" is never checked
                before = reg.tracking.get((candidate, "before"))
                if before is not None:
                    before.state = "canceled"
            else:
                before = reg.tracking[(candidate, "before")]
                if before.state == "waiting":
                    before.state = "ready"
                    heapq.heappush(self._ready, (before.priority, before))
        else:
            if node.verdict.status == "proved":
                self._decide(reg, candidate, True, "before")
            else:
                self._decide(reg, candidate, False, None)

    def _decide(self, reg, candidate, promoted, direction):
        reg.decisions[candidate] = (promoted, direction)
        if promoted:
            self._spawn_shadow(reg, candidate, direction)
        if len(reg.decisions) == len(reg.candidates):
            reg.promoted = [
                (name, reg.decisions[name][1])
                for name in reg.candidates
                if reg.decisions[name][0]
            ]

    def _group_done(self, node):
        reg = node.reg
        result = node.outcome.result if node.outcome.ok else None
        if isinstance(result, list):
            for build_index, member in zip(node.group_members, result):
                reg.group_results[build_index] = member
        else:
            for build_index in node.group_members:
                reg.group_failures[build_index] = node.outcome
        reg.group_pending -= 1
        if reg.group_pending > 0:
            return
        # all groups answered: replay the serial promotion scan, where
        # "after" beats "before" because it comes first in build order
        found = []
        seen = set()
        for index, (candidate, direction, _build) in enumerate(reg.builds):
            member = reg.group_results.get(index)
            if member is not None and member.status == "proved" and (
                candidate not in seen
            ):
                seen.add(candidate)
                found.append((candidate, direction))
        reg.promoted = found
        for candidate, direction in found:
            self._spawn_shadow(reg, candidate, direction)

    def _spawn_shadow(self, reg, candidate, direction):
        """Dynamic DAG growth: a promoted register enqueues its own
        shadow-corruption audit (Eq. 2, non-functional, shifted window)."""
        det = reg.audit.detector
        if reg.suppress_shadows or candidate in reg.shadows:
            return
        if reg.shadow_stop is not None and (
            reg.candidates.index(candidate) > reg.shadow_stop
        ):
            return  # an earlier shadow already stopped the serial scan
        shadow_spec = det.shadow_spec(reg.spec, candidate, direction)
        way_delay = 2 if direction == "after" else 0
        node = self._add_node(
            reg, SHADOW, "corruption({})".format(candidate),
            factory=lambda det=det, spec=shadow_spec, wd=way_delay: (
                det.corruption_task(
                    spec, functional=False, way_delay=wd, session=None
                )[0]
            ),
            ready=True,
        )
        node.candidate = candidate
        node.direction = direction
        reg.shadows[candidate] = node

    # -------------------------------------------------------- audit assembly

    def _setup_audit(self, index, request):
        det = request.detector
        report = DetectionReport(
            design=det.netlist.name,
            engine=det.engine,
            max_cycles=det.max_cycles,
            trojan_info=det.spec.trojan,
        )
        names = request.registers or list(det.spec.critical)
        names = prioritize_registers(
            names, det.lint_report, det.ift_report, det.diff_report
        )
        store = None
        if request.checkpoint is not None:
            store = (
                request.checkpoint
                if isinstance(request.checkpoint, AuditCheckpoint)
                else AuditCheckpoint(request.checkpoint)
            )
            restored = store.begin(
                det.netlist.name, det.engine, det.max_cycles
            )
            for register in names:
                if register in restored:
                    report.findings[register] = restored[register]
        audit = _AuditState(index, det, names, report, store)
        if self.tracer.enabled:
            audit.buf = BufferTracer()
            audit.audit_span = audit.buf.begin(
                "audit",
                design=det.netlist.name,
                engine=det.engine,
                max_cycles=det.max_cycles,
            )
        scores = fused_register_scores(
            det.lint_report, det.ift_report, det.diff_report
        )
        for reg_index, register in enumerate(names):
            if register in report.findings:
                continue  # restored from the checkpoint
            reg = _RegisterState(
                audit, reg_index, register, scores.get(register, 0)
            )
            audit.regs[register] = reg
            try:
                self._init_register(reg)
            except Exception as exc:  # noqa: BLE001 - replay serial timing
                # serial raises only when its loop *reaches* the broken
                # register; stash the error and re-raise at the frontier
                reg.error = exc
        return audit

    def _init_register(self, reg):
        det = reg.audit.detector
        reg.spec = det.spec.spec_for(reg.register)
        reg.started = time.perf_counter()
        # session=None throughout: scheduler tasks execute in worker
        # processes, which cannot share the supervisor's live solver —
        # pickling would drop the session hint anyway, so the scheduler
        # never builds one.
        reg.corruption = self._add_node(
            reg, CORRUPTION, "corruption({})".format(reg.register),
            factory=lambda det=det, spec=reg.spec: (
                det.corruption_task(spec, session=None)[0]
            ),
            ready=True,
        )
        if det.check_pseudo_critical:
            reg.candidates = list(pseudo_critical_candidates(
                det.netlist, det.spec, reg.register
            ))
            if det.share_cones and det.engine == "bmc" and reg.candidates:
                self._init_grouped_tracking(reg)
            else:
                for candidate in reg.candidates:
                    for direction in ("after", "before"):
                        node = self._add_node(
                            reg, TRACKING,
                            "tracking({}->{},{})".format(
                                reg.register, candidate, direction
                            ),
                            factory=lambda det=det, spec=reg.spec,
                            c=candidate, d=direction: (
                                det.tracking_task(spec, c, d, session=None)[0]
                            ),
                            ready=(direction == "after"),
                        )
                        node.candidate = candidate
                        node.direction = direction
                        reg.tracking[(candidate, direction)] = node
            if not reg.candidates:
                reg.promoted = []
        else:
            reg.promoted = []
        if det.check_bypass:
            reg.bypass = self._add_node(
                reg, BYPASS, "bypass({})".format(reg.register),
                factory=lambda det=det, spec=reg.spec: (
                    det.bypass_task(spec)[0]
                ),
                ready=True,
            )

    def _init_grouped_tracking(self, reg):
        from repro.bmc.group import group_objectives_by_cone

        det = reg.audit.detector
        reg.grouped = True
        base, builds = det.tracking_group_builds(reg.spec, reg.candidates)
        reg.builds = builds
        nets = [build.objective_net for _, _, build in builds]
        names = [build.property_name for _, _, build in builds]
        for group in group_objectives_by_cone(base, nets):
            task = GroupObjectiveTask(
                netlist=base,
                objective_nets=tuple(nets[i] for i in group),
                max_cycles=det.pseudo_critical_cycles,
                property_names=tuple(names[i] for i in group),
                pinned_inputs=det.spec.pinned_inputs,
                time_budget=det.time_budget,
            )
            node = self._add_node(
                reg, GROUP, task.property_name, task=task, ready=True
            )
            node.group_members = list(group)
            reg.group_nodes.append(node)
        reg.group_pending = len(reg.group_nodes)

    def _advance(self, audit):
        """Serial-replay commit loop: commit frontier registers whose
        serial check set is fully known, in serial order."""
        if audit.done:
            return
        det = audit.detector
        report = audit.report
        while audit.frontier < len(audit.names):
            name = audit.names[audit.frontier]
            if name in report.findings:
                audit.frontier += 1
                continue  # restored from the checkpoint
            if det.stop_on_first and report.trojan_found:
                self._discard_rest(audit, audit.frontier)
                break
            reg = audit.regs[name]
            if reg.error is not None:
                raise reg.error
            assembled = self._try_assemble(reg)
            if assembled is None:
                return  # frontier register still has checks in flight
            finding, kept = assembled
            self._commit(audit, reg, finding, kept)
            audit.frontier += 1
            if det.stop_on_first and finding.trojan_found:
                self._discard_rest(audit, audit.frontier)
                break
        self._finalize(audit)

    def _try_assemble(self, reg):
        """Replay the serial per-register flow against completed nodes.

        Returns ``(finding, kept_nodes)`` when every check the serial
        loop would run has completed, else ``None``. ``kept_nodes`` are
        the consumed nodes in serial execution order — speculative
        results serial would not have produced are *not* consumed.
        """
        det = reg.audit.detector
        stop = det.stop_on_first
        kept = []
        outcomes = []  # (check name, CheckOutcome), serial insertion order
        promoted = []
        if det.check_pseudo_critical and reg.candidates:
            if reg.promoted is None:
                return None
            promoted = reg.promoted
            if reg.grouped:
                from repro.core.detector import grouped_check_outcome

                kept.extend(reg.group_nodes)
                for index, (candidate, direction, _build) in enumerate(
                    reg.builds
                ):
                    name = "tracking({}->{},{})".format(
                        reg.register, candidate, direction
                    )
                    member = reg.group_results.get(index)
                    if member is not None:
                        outcomes.append(
                            (name, grouped_check_outcome(name, member))
                        )
                    else:
                        outcomes.append((name, _group_failure_outcome(
                            name, reg.group_failures.get(index)
                        )))
            else:
                for candidate in reg.candidates:
                    after = reg.tracking[(candidate, "after")]
                    if not after.done:
                        return None
                    kept.append(after)
                    outcomes.append((after.name, after.outcome))
                    if after.verdict.status != "proved":
                        before = reg.tracking[(candidate, "before")]
                        if not before.done:
                            return None
                        kept.append(before)
                        outcomes.append((before.name, before.outcome))
        corruption = reg.corruption
        if not corruption.done:
            return None
        kept.append(corruption)
        outcomes.append((corruption.name, corruption.outcome))
        corruption_verdict = corruption.verdict
        shadows_used = []
        if not (stop and corruption_verdict.detected):
            for candidate, _direction in promoted:
                shadow = reg.shadows.get(candidate)
                if shadow is None or not shadow.done:
                    return None
                shadows_used.append((candidate, shadow))
                kept.append(shadow)
                outcomes.append((shadow.name, shadow.outcome))
                if stop and shadow.verdict.detected:
                    break
        trojan_so_far = corruption_verdict.detected or any(
            shadow.verdict.detected for _, shadow in shadows_used
        )
        bypass = None
        if det.check_bypass and not (stop and trojan_so_far):
            bypass = reg.bypass
            if bypass is None or not bypass.done:
                return None
            kept.append(bypass)
            outcomes.append((bypass.name, bypass.outcome))

        finding = RegisterFinding(register=reg.register)
        if det.lint_report is not None:
            finding.lint_evidence = [
                f.to_dict()
                for f in det.lint_report.findings_for(reg.register)
            ]
        if det.ift_report is not None:
            finding.ift_evidence = [
                f.to_dict()
                for f in det.ift_report.findings_for(reg.register)
            ]
        if det.diff_report is not None:
            finding.diff_evidence = [
                f.to_dict()
                for f in det.diff_report.findings_for(reg.register)
            ]
        finding.pseudo_criticals = list(promoted)
        for name, outcome in outcomes:
            finding.check_outcomes[name] = outcome
        finding.corruption = corruption_verdict
        if corruption_verdict.detected:
            monitor = det._monitor_for(reg.spec)
            finding.witness_confirmed = confirms_violation(
                monitor.netlist,
                corruption_verdict.witness,
                monitor.violation_net,
            )
        for candidate, shadow in shadows_used:
            finding.pseudo_corruptions[candidate] = shadow.verdict
        if bypass is not None:
            finding.bypass = bypass.verdict
        finding.elapsed = time.perf_counter() - reg.started
        return finding, kept

    def _commit(self, audit, reg, finding, kept):
        if audit.buf is not None:
            with audit.buf.span(
                "audit.register", register=reg.register
            ) as extra:
                for node in kept:
                    if node.events:
                        audit.buf.absorb(node.events)
                extra.update(trojan_found=finding.trojan_found)
        audit.report.findings[reg.register] = finding
        if audit.store is not None:
            try:
                audit.store.save_finding(reg.register, finding)
            except CheckpointWriteError as exc:
                audit.store = None  # keep auditing, uncheckpointed
                warn_checkpoint_lost(exc, self.tracer)
        reg.committed = True
        # anything this register solved speculatively but serial never
        # consumed (canceled or still running) is now provably unwanted
        for node in reg.nodes():
            if not (node.done and node in kept) and node.state != (
                "canceled"
            ):
                if node.done:
                    self.stats["discarded"] += 1
                else:
                    self._cancel_node(node)

    def _discard_rest(self, audit, from_index):
        """A committed Trojan ends the design's serial loop: every
        not-yet-committed register after it is dropped, its workers
        killed."""
        for name in audit.names[from_index:]:
            reg = audit.regs.get(name)
            if reg is None or reg.committed or reg.discarded:
                continue
            reg.discarded = True
            for node in reg.nodes():
                if node.done:
                    self.stats["discarded"] += 1
                else:
                    self._cancel_node(node)

    def _finalize(self, audit):
        audit.report.elapsed = time.perf_counter() - audit.started
        audit.done = True
        if audit.buf is not None:
            audit.buf.end(
                audit.audit_span,
                trojan_found=audit.report.trojan_found,
                registers=len(audit.report.findings),
            )
            self.tracer.absorb(audit.buf.drain())
            audit.buf = None


def _group_failure_outcome(name, group_outcome):
    """Member outcome for a group that died without per-member verdicts.

    Serial has no analogue (grouped solves run inline, so a crash there
    aborts the whole audit); the pool degrades it to an unconcluded
    outcome so the rest of the audit survives, exactly like any other
    supervised check failure.
    """
    from repro.runner.outcome import CheckOutcome

    if group_outcome is None:
        return CheckOutcome(name=name, status=CRASHED,
                            error="group check produced no result")
    return CheckOutcome(
        name=name,
        status=group_outcome.status,
        bound_reached=0,
        elapsed=group_outcome.elapsed,
        error=group_outcome.error or "group check failed",
    )
