"""Crash-tolerant audit service: durable job queue + HTTP front end.

The ROADMAP's north star is audit-as-a-service: a long-lived process
that accepts (design, spec) jobs, survives worker crashes, and never
loses or double-reports a verdict. This package supplies that layer on
the stdlib only:

* :mod:`~repro.serve.queue` — a durable job queue backed by an
  append-only, CRC-framed journal plus atomic snapshots. Ownership is
  lease-based: a worker that stops heartbeating loses its lease after a
  TTL and the job is re-run, with a bounded re-lease count before the
  job is dead-lettered (carrying whatever partial outcomes its failed
  attempts produced). Completion is fenced by the lease token, so a
  resurrected stale worker cannot double-complete a job.
* :mod:`~repro.serve.server` — :class:`AuditService` (worker threads
  draining the queue through the real :class:`~repro.core.TrojanDetector`)
  and an ``http.server``-based JSON API (``repro serve``) with
  ``repro submit`` / ``repro jobs`` clients. SIGTERM drains gracefully:
  stop leasing, finish in-flight jobs, snapshot the queue.

Fault injection for all of it lives in
:mod:`repro.runner.faultinject` (:class:`ServiceFaultPlan`), keeping
the same determinism contract as the engine-level faults: rules fire on
names and occurrence indices, never on wall clock or randomness.
"""

from repro.serve.queue import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    QUEUED,
    Job,
    JobQueue,
    Lease,
)
from repro.serve.server import AuditService, ServiceClient, run_server

__all__ = [
    "AuditService",
    "DEAD",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "LEASED",
    "Lease",
    "QUEUED",
    "run_server",
    "ServiceClient",
]
