"""Durable job queue: CRC-framed journal, leases, dead-lettering.

Design
------

All queue state lives in one directory::

    <root>/journal.jsonl    append-only records since the last snapshot
    <root>/snapshot.json    atomic full-state image + journal watermark

Every journal line is ``CRC32 <space> JSON``: the checksum covers the
JSON payload, so a torn append (power loss, SIGKILL mid-``write``)
leaves a line that fails its frame check and reading stops at the last
intact record — the journal degrades to its readable prefix, exactly
the contract the outcome cache and trace files already honour. Records
carry a monotonically increasing ``seq``; a snapshot stores the highest
``seq`` it covers, so replaying an un-rotated journal over a snapshot
is idempotent (records at or below the watermark are skipped).

Ownership is a **lease**, not an assignment. ``lease()`` hands a job to
a worker together with a fencing token (the journal seq of the lease
record) and a deadline; ``heartbeat()`` extends the deadline; a lease
whose deadline passes is *reclaimed* — the job returns to the queue and
the next worker gets a new token. Any ``complete``/``fail``/
``heartbeat`` presenting a stale token is rejected: the slow first
worker that wakes up after its lease was reclaimed cannot finish the
job twice. A job reclaimed or failed ``max_leases`` times is moved to
the **dead-letter** state, keeping the error and any partial
:class:`~repro.runner.result.CheckOutcome`-shaped payloads its attempts
reported, so an operator can inspect why it kept dying.

Clocks are injectable (``clock=time.time``) and a
:class:`~repro.runner.faultinject.ServiceFaultPlan` may deterministically
tear journal appends or skew individual clock readings, which is how
the chaos tests drive reclaim races without sleeping.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib

from repro.errors import JobQueueError

QUEUED = "queued"
LEASED = "leased"
DONE = "done"
FAILED = "failed"   # attempt failed, will be re-leased
DEAD = "dead"       # exhausted max_leases; terminal, carries partials

TERMINAL = (DONE, DEAD)

JOURNAL = "journal.jsonl"
SNAPSHOT = "snapshot.json"


class Lease:
    """A worker's hold on a job: fencing token + deadline."""

    __slots__ = ("token", "worker", "deadline")

    def __init__(self, token, worker, deadline):
        self.token = token
        self.worker = worker
        self.deadline = deadline

    def to_dict(self):
        return {
            "token": self.token,
            "worker": self.worker,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["token"], data.get("worker"), data["deadline"])


class Job:
    """One submitted audit job and its full lifecycle state."""

    __slots__ = ("id", "payload", "state", "lease", "attempts", "result",
                 "errors", "partials", "submitted_seq")

    def __init__(self, job_id, payload, submitted_seq=0):
        self.id = job_id
        self.payload = payload
        self.state = QUEUED
        self.lease = None
        self.attempts = 0        # leases granted so far
        self.result = None       # terminal verdict payload (DONE)
        self.errors = []         # one entry per failed/reclaimed attempt
        self.partials = []       # partial outcomes surviving dead attempts
        self.submitted_seq = submitted_seq

    def to_dict(self):
        return {
            "id": self.id,
            "payload": self.payload,
            "state": self.state,
            "lease": self.lease.to_dict() if self.lease else None,
            "attempts": self.attempts,
            "result": self.result,
            "errors": list(self.errors),
            "partials": list(self.partials),
            "submitted_seq": self.submitted_seq,
        }

    @classmethod
    def from_dict(cls, data):
        job = cls(data["id"], data.get("payload") or {},
                  data.get("submitted_seq", 0))
        job.state = data.get("state", QUEUED)
        lease = data.get("lease")
        job.lease = Lease.from_dict(lease) if lease else None
        job.attempts = data.get("attempts", 0)
        job.result = data.get("result")
        job.errors = list(data.get("errors") or [])
        job.partials = list(data.get("partials") or [])
        return job


def _frame(record):
    """One journal line: crc32-of-payload, space, payload, newline."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True,
                         default=str)
    data = payload.encode("utf-8")
    return "{:08x} ".format(zlib.crc32(data) & 0xFFFFFFFF).encode() + \
        data + b"\n"


def _unframe(raw_line):
    """Parse one framed line; returns the record dict or ``None``."""
    if b" " not in raw_line:
        return None
    crc_hex, payload = raw_line.split(b" ", 1)
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def read_journal(path):
    """All intact records, in order, plus the count of torn lines.

    Reading stops at the first bad frame: the journal is append-only,
    so anything after a torn line is the debris of a crashed writer,
    not data.
    """
    records = []
    torn = 0
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return records, torn
    for raw_line in raw.split(b"\n"):
        if not raw_line.strip():
            continue
        record = _unframe(raw_line)
        if record is None:
            torn += 1
            break
        records.append(record)
    return records, torn


class JobQueue:
    """Durable, lease-based job queue (thread-safe).

    Parameters
    ----------
    root:
        Directory for the journal and snapshot (created on demand).
    lease_ttl:
        Seconds a lease stays valid without a heartbeat.
    max_leases:
        Leases granted to one job before it is dead-lettered.
    clock:
        Injectable wall-clock (``time.time``); deadlines must survive
        process restarts, so the monotonic clock is *not* suitable.
    fault_plan:
        Optional :class:`~repro.runner.faultinject.ServiceFaultPlan`;
        consulted for ``torn-journal-write`` on every append and
        ``stale-lease-clock-skew`` on every clock reading.
    """

    def __init__(self, root, lease_ttl=30.0, max_leases=3,
                 clock=time.time, fault_plan=None):
        self.root = str(root)
        self.lease_ttl = float(lease_ttl)
        self.max_leases = int(max_leases)
        self._clock = clock
        self.fault_plan = fault_plan
        self._lock = threading.RLock()
        self._jobs = {}          # id -> Job
        self._order = []         # submission order of ids
        self._seq = 0            # last journal seq issued
        self._snapshot_seq = 0   # watermark covered by snapshot.json
        self._next_job = 1
        self.torn_lines = 0
        self.stale_rejections = 0
        self.reclaims = 0
        os.makedirs(self.root, exist_ok=True)
        self._recover()
        self._handle = open(self._journal_path, "ab")

    # ----------------------------------------------------------- paths

    @property
    def _journal_path(self):
        return os.path.join(self.root, JOURNAL)

    @property
    def _snapshot_path(self):
        return os.path.join(self.root, SNAPSHOT)

    # -------------------------------------------------------- recovery

    def _recover(self):
        """Rebuild state: snapshot image, then replay newer records."""
        try:
            with open(self._snapshot_path, "r") as handle:
                image = json.load(handle)
        except (FileNotFoundError, ValueError):
            image = None
        if image:
            self._snapshot_seq = self._seq = image.get("seq", 0)
            self._next_job = image.get("next_job", 1)
            for data in image.get("jobs", []):
                job = Job.from_dict(data)
                self._jobs[job.id] = job
                self._order.append(job.id)
        records, self.torn_lines = read_journal(self._journal_path)
        for record in records:
            seq = record.get("seq", 0)
            if seq <= self._snapshot_seq:
                continue  # already folded into the snapshot
            self._seq = max(self._seq, seq)
            self._apply(record)
        # Leases held by the process that died are left in place: they
        # expire by TTL and lease() reclaims them, which is the whole
        # point of lease-based ownership.

    def _apply(self, record):
        """Fold one journal record into in-memory state (replay path)."""
        kind = record.get("kind")
        job_id = record.get("job")
        if kind == "submit":
            job = Job(job_id, record.get("payload") or {},
                      record.get("seq", 0))
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._next_job = max(self._next_job,
                                 record.get("next_job", self._next_job))
            return
        job = self._jobs.get(job_id)
        if job is None:
            return  # record for a job the snapshot already dropped
        if kind == "lease":
            job.state = LEASED
            job.attempts = record.get("attempts", job.attempts + 1)
            job.lease = Lease(record.get("seq"), record.get("worker"),
                              record.get("deadline", 0.0))
        elif kind == "heartbeat":
            if job.lease is not None and \
                    job.lease.token == record.get("token"):
                job.lease.deadline = record.get("deadline",
                                                job.lease.deadline)
        elif kind == "reclaim":
            job.state = QUEUED
            job.lease = None
            if record.get("error"):
                job.errors.append(record["error"])
        elif kind == "complete":
            job.state = DONE
            job.lease = None
            job.result = record.get("result")
        elif kind == "fail":
            job.state = QUEUED
            job.lease = None
            if record.get("error"):
                job.errors.append(record["error"])
            if record.get("partial") is not None:
                job.partials.append(record["partial"])
        elif kind == "dead":
            job.state = DEAD
            job.lease = None
            if record.get("error"):
                job.errors.append(record["error"])
            if record.get("partial") is not None:
                job.partials.append(record["partial"])

    # --------------------------------------------------------- journal

    def _now(self, operation):
        now = self._clock()
        if self.fault_plan is not None:
            now += self.fault_plan.skew_for(operation)
        return now

    def _append(self, record, durable=True):
        """Frame and append one record; returns its seq.

        The in-memory state is updated by the *caller* (who holds the
        lock); this method only persists. A ``torn-journal-write``
        fault truncates the line mid-frame — the bytes a power loss
        would have left.
        """
        self._seq += 1
        record["seq"] = self._seq
        line = _frame(record)
        if self.fault_plan is not None:
            keep = self.fault_plan.torn_bytes(record.get("kind", "?"))
            if keep is not None:
                line = line[:max(0, keep)]
        self._handle.write(line)
        self._handle.flush()
        if durable:
            os.fsync(self._handle.fileno())
        return self._seq

    def snapshot(self):
        """Write the full state atomically and rotate the journal.

        Crash-ordering: the snapshot (with its seq watermark) lands via
        fsync + ``os.replace`` *before* the journal is truncated. A
        crash in between leaves a snapshot plus a journal whose records
        are all at or below the watermark — replay skips them.
        """
        with self._lock:
            image = {
                "seq": self._seq,
                "next_job": self._next_job,
                "jobs": [self._jobs[i].to_dict() for i in self._order],
            }
            tmp = self._snapshot_path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(image, handle, separators=(",", ":"),
                          default=str)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._snapshot_path)
            self._snapshot_seq = self._seq
            self._handle.close()
            self._handle = open(self._journal_path, "wb")

    def close(self):
        with self._lock:
            if not self._handle.closed:
                self.snapshot()
                self._handle.close()

    # ------------------------------------------------------ operations

    def submit(self, payload):
        """Enqueue a job; returns its id. Durable before returning."""
        with self._lock:
            job_id = "job-{:04d}".format(self._next_job)
            self._next_job += 1
            job = Job(job_id, payload)
            self._jobs[job_id] = job
            self._order.append(job_id)
            job.submitted_seq = self._append({
                "kind": "submit", "job": job_id, "payload": payload,
                "next_job": self._next_job,
            })
            return job_id

    def _reclaim_expired(self, now):
        """Expired leases → back to QUEUED (or DEAD past max_leases)."""
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state != LEASED or job.lease is None:
                continue
            if job.lease.deadline > now:
                continue
            self.reclaims += 1
            error = "lease {} (worker {}) expired".format(
                job.lease.token, job.lease.worker)
            if job.attempts >= self.max_leases:
                job.state = DEAD
                job.lease = None
                job.errors.append(error)
                self._append({"kind": "dead", "job": job_id,
                              "error": error, "partial": None})
            else:
                job.state = QUEUED
                job.lease = None
                job.errors.append(error)
                self._append({"kind": "reclaim", "job": job_id,
                              "error": error}, durable=False)

    def lease(self, worker):
        """Lease the oldest runnable job to ``worker``.

        Returns ``(job_dict, token)`` or ``None`` when nothing is
        runnable. Reclaims expired leases first, so a queue whose only
        work is a dead worker's job still makes progress.
        """
        with self._lock:
            # the reclaim scan reads the (skewable) clock; the deadline
            # granted below reads the true clock — a skewed scan may
            # wrongly reclaim a live lease, but must not hand out a
            # deadline from the future
            self._reclaim_expired(self._now("lease"))
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state != QUEUED:
                    continue
                job.attempts += 1
                job.state = LEASED
                deadline = self._clock() + self.lease_ttl
                token = self._append({
                    "kind": "lease", "job": job_id, "worker": worker,
                    "deadline": deadline, "attempts": job.attempts,
                }, durable=False)
                job.lease = Lease(token, worker, deadline)
                return job.to_dict(), token
            return None

    def _fenced(self, job_id, token):
        """The job, if ``token`` is its *current* lease; else ``None``.

        The fencing check: a worker whose lease was reclaimed presents
        a token older than the current lease record's seq and is turned
        away — its job either belongs to someone else now or already
        reached a terminal state.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise JobQueueError("unknown job {!r}".format(job_id))
        if job.state != LEASED or job.lease is None or \
                job.lease.token != token:
            self.stale_rejections += 1
            return None
        return job

    def heartbeat(self, job_id, token):
        """Extend the lease; returns the new deadline or ``None`` if
        the token is stale (the worker must abandon the job)."""
        with self._lock:
            job = self._fenced(job_id, token)
            if job is None:
                return None
            deadline = self._now("heartbeat") + self.lease_ttl
            job.lease.deadline = deadline
            self._append({"kind": "heartbeat", "job": job_id,
                          "token": token, "deadline": deadline},
                         durable=False)
            return deadline

    def complete(self, job_id, token, result):
        """Terminal success. Returns ``True`` exactly once per job;
        a stale token is rejected with ``False`` (fencing)."""
        with self._lock:
            job = self._fenced(job_id, token)
            if job is None:
                return False
            job.state = DONE
            job.lease = None
            job.result = result
            self._append({"kind": "complete", "job": job_id,
                          "result": result})
            return True

    def fail(self, job_id, token, error, partial=None):
        """One attempt failed. Requeues the job, or dead-letters it
        when ``max_leases`` attempts are spent; stale tokens are
        rejected with ``False``."""
        with self._lock:
            job = self._fenced(job_id, token)
            if job is None:
                return False
            job.lease = None
            job.errors.append(str(error))
            if partial is not None:
                job.partials.append(partial)
            if job.attempts >= self.max_leases:
                job.state = DEAD
                self._append({"kind": "dead", "job": job_id,
                              "error": str(error), "partial": partial})
            else:
                job.state = QUEUED
                self._append({"kind": "fail", "job": job_id,
                              "error": str(error), "partial": partial})
            return True

    # ------------------------------------------------------- inspection

    def job(self, job_id):
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobQueueError("unknown job {!r}".format(job_id))
            return job.to_dict()

    def jobs(self):
        with self._lock:
            return [self._jobs[i].to_dict() for i in self._order]

    def counts(self):
        with self._lock:
            counts = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def pending(self):
        """Jobs not yet in a terminal state (queued, leased, failed)."""
        with self._lock:
            return [
                self._jobs[i].to_dict() for i in self._order
                if self._jobs[i].state not in TERMINAL
            ]
