"""Audit service: worker threads + JSON-over-HTTP front end.

:class:`AuditService` drains a :class:`~repro.serve.queue.JobQueue`
with a small pool of worker *threads* (the engines are pure Python and
each audit may itself fan out to worker processes; the service threads
are coordinators, not compute). Each worker:

1. leases a job (fencing token + TTL deadline),
2. heartbeats on a daemon thread while the audit runs,
3. runs the real :class:`~repro.core.TrojanDetector` with a per-job
   file tracer (installed thread-locally, so concurrent jobs get
   separate streams),
4. completes the job with the full report dict — or fails it, shipping
   the per-register findings completed so far as the partial payload.

Crash behaviour is the load-bearing part: a worker "killed" by the
fault plan (:class:`~repro.runner.faultinject.WorkerKilled`) abandons
the job silently — no release, no fail record, heartbeats stop — which
is indistinguishable from SIGKILL as far as the queue can tell. The
lease expires, the job is re-leased, and the fencing token keeps the
ghost from completing anything later.

The HTTP layer is deliberately thin: ``http.server`` threads translate
JSON requests into queue calls. Endpoints::

    POST /api/jobs                  {"design": ..., "options": {...}}
    GET  /api/jobs                  all jobs (id, state, attempts)
    GET  /api/jobs/<id>             full job state incl. result/errors
    GET  /api/jobs/<id>/events?after=N   trace events, incremental
    GET  /healthz                   {"ok": true, "counts": {...}}

``SIGTERM``/``SIGINT`` drain gracefully: workers stop leasing, finish
what they hold, the queue snapshots, the socket closes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import JobQueueError, ServiceError
from repro.obs.summary import load_trace
from repro.obs.tracer import NULL_TRACER, Tracer, tracing
from repro.runner.faultinject import WorkerKilled
from repro.serve.queue import JobQueue

KILL_STAGES = ("leased", "mid", "pre-complete")


class _KillPointTracer:
    """Tracer proxy that fires the ``mid`` kill point from *inside* an
    audit: the first ``audit.register`` span a killed-at-mid worker
    opens raises :class:`WorkerKilled` through the detector — the job
    dies with real partial state (registers already checkpointed by
    earlier spans), not at a polite boundary."""

    def __init__(self, inner, plan, job_id):
        self._inner = inner
        self._plan = plan
        self._job_id = job_id
        self.enabled = inner.enabled
        self.metrics = inner.metrics

    def begin(self, name, **attrs):
        if name == "audit.register" and self._plan is not None:
            self._plan.kill_worker(self._job_id, "mid")
        return self._inner.begin(name, **attrs)

    def span(self, name, **attrs):
        # must route through *our* begin: the inner tracer's span()
        # would bypass the kill point
        @contextmanager
        def _span():
            span_id = self.begin(name, **attrs)
            extra = {}
            try:
                yield extra
            except BaseException:
                extra.setdefault("error", True)
                raise
            finally:
                self._inner.end(span_id, **extra)

        return _span()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _build_audit(payload):
    """(netlist, spec, config) for one job payload.

    Designs resolve through the ingestion frontend, so a job can name a
    built-in, a ``*.design.json`` bundle, or a Verilog file — anything
    :func:`repro.frontend.load_design` accepts.
    """
    from repro.core import AuditConfig
    from repro.errors import FrontendError
    from repro.frontend import load_design

    design = payload.get("design")
    if not design:
        raise ServiceError("job payload needs a 'design'")
    try:
        netlist, spec = load_design(design)
    except FrontendError as exc:
        raise ServiceError(str(exc))
    options = dict(payload.get("options") or {})
    known = {
        "engine", "max_cycles", "time_budget", "functional",
        "check_pseudo_critical", "check_bypass", "jobs", "cache_dir",
    }
    unknown = set(options) - known
    if unknown:
        raise ServiceError(
            "unknown audit option(s): {}".format(", ".join(sorted(unknown)))
        )
    config = AuditConfig(**options)
    return netlist, spec, config


class AuditService:
    """Worker pool draining a durable queue through TrojanDetector."""

    def __init__(self, queue_dir, workers=2, lease_ttl=30.0, max_leases=3,
                 fault_plan=None, clock=time.time, poll_interval=0.05,
                 backend_factory=None):
        self.queue = JobQueue(queue_dir, lease_ttl=lease_ttl,
                              max_leases=max_leases, clock=clock,
                              fault_plan=fault_plan)
        self.fault_plan = fault_plan
        self.workers = int(workers)
        self.poll_interval = float(poll_interval)
        self.backend_factory = backend_factory
        self.trace_dir = os.path.join(str(queue_dir), "traces")
        os.makedirs(self.trace_dir, exist_ok=True)
        self._stop = threading.Event()      # stop leasing (drain)
        self._threads = []
        self._active = {}                   # job_id -> token (heartbeats)
        self._active_lock = threading.Lock()
        self._heartbeat_thread = None
        self.jobs_run = 0
        self.jobs_abandoned = 0

    # ------------------------------------------------------- lifecycle

    def start(self):
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="serve-heartbeat",
            daemon=True,
        )
        self._heartbeat_thread.start()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=("worker-{}".format(index),),
                name="serve-worker-{}".format(index), daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def drain(self, timeout=None):
        """Stop leasing, wait for in-flight jobs, snapshot the queue."""
        self._stop.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self.queue.close()

    def wait_idle(self, timeout=30.0):
        """Block until no job is pending (test/smoke convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.queue.pending():
                return True
            time.sleep(self.poll_interval)
        return False

    # ------------------------------------------------------ heartbeats

    def _heartbeat_loop(self):
        interval = max(self.queue.lease_ttl / 3.0, 0.01)
        while not self._stop.is_set() or self._snapshot_active():
            with self._active_lock:
                active = dict(self._active)
            for job_id, token in active.items():
                if self.queue.heartbeat(job_id, token) is None:
                    # stale: the lease moved on without us; stop
                    # heartbeating a job we no longer own
                    with self._active_lock:
                        if self._active.get(job_id) == token:
                            del self._active[job_id]
            if self._stop.wait(interval):
                if not self._snapshot_active():
                    return

    def _snapshot_active(self):
        with self._active_lock:
            return bool(self._active)

    # ---------------------------------------------------------- worker

    def _worker_loop(self, worker_name):
        while not self._stop.is_set():
            leased = self.queue.lease(worker_name)
            if leased is None:
                if self._stop.wait(self.poll_interval):
                    return
                continue
            job, token = leased
            try:
                self._run_job(job, token)
            except WorkerKilled:
                # Simulated SIGKILL: abandon silently. No fail record,
                # no release — the lease must die by TTL, exactly as it
                # would for a real dead process.
                self.jobs_abandoned += 1
                with self._active_lock:
                    self._active.pop(job["id"], None)

    def _run_job(self, job, token):
        job_id = job["id"]
        plan = self.fault_plan
        with self._active_lock:
            self._active[job_id] = token
        try:
            if plan is not None:
                plan.kill_worker(job_id, "leased")
            trace_path = os.path.join(self.trace_dir,
                                      "{}.jsonl".format(job_id))
            tracer = Tracer(trace_path)
            report = None
            error = None
            partial = None
            try:
                with tracing(_KillPointTracer(tracer, plan, job_id)):
                    report = self._audit(job)
            except WorkerKilled:
                raise  # propagate to the worker loop: abandon
            except Exception as exc:  # noqa: BLE001 - job boundary
                error = "{}: {}".format(type(exc).__name__, exc)
                partial = getattr(exc, "partial_findings", None)
            finally:
                tracer.close()
            if plan is not None:
                plan.kill_worker(job_id, "pre-complete")
            if error is not None:
                self.queue.fail(job_id, token, error, partial=partial)
                return
            self.jobs_run += 1
            self.queue.complete(job_id, token, report)
        finally:
            with self._active_lock:
                if self._active.get(job_id) == token:
                    del self._active[job_id]

    def _audit(self, job):
        from repro.core import TrojanDetector
        from repro.runner import CheckRunner

        netlist, spec, config = _build_audit(job["payload"])
        runner = CheckRunner(backend_factory=self.backend_factory)
        detector = TrojanDetector(netlist, spec, config=config,
                                  runner=runner)
        report = detector.run()
        return {
            "design": job["payload"].get("design"),
            "trojan_found": report.trojan_found,
            "degraded": report.degraded,
            "report": report.to_dict(),
        }

    # -------------------------------------------------------- trace API

    def job_events(self, job_id, after=0):
        """Parsed trace events for a job, skipping the first ``after``.

        Sources the same per-job JSONL stream ``repro trace summarize``
        reads; the torn-tail tolerance of :func:`load_trace` means
        polling a live (or killed) job returns the readable prefix.
        """
        path = os.path.join(self.trace_dir, "{}.jsonl".format(job_id))
        if not os.path.exists(path):
            return [], after
        events, _meta, _bad = load_trace(path)
        return events[after:], len(events)


# ---------------------------------------------------------------- HTTP


def _handler_for(service):
    """A request-handler class bound to one :class:`AuditService`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # quiet by default
            pass

        def _reply(self, status, payload):
            body = json.dumps(payload, default=str).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            try:
                if parts == ["healthz"]:
                    self._reply(200, {"ok": True,
                                      "counts": service.queue.counts()})
                elif parts == ["api", "jobs"]:
                    rows = [
                        {"id": j["id"], "state": j["state"],
                         "attempts": j["attempts"]}
                        for j in service.queue.jobs()
                    ]
                    self._reply(200, {"jobs": rows})
                elif len(parts) == 3 and parts[:2] == ["api", "jobs"]:
                    self._reply(200, service.queue.job(parts[2]))
                elif len(parts) == 4 and parts[:2] == ["api", "jobs"] \
                        and parts[3] == "events":
                    after = 0
                    for pair in query.split("&"):
                        key, _, value = pair.partition("=")
                        if key == "after" and value.isdigit():
                            after = int(value)
                    service.queue.job(parts[2])  # 404 on unknown id
                    events, cursor = service.job_events(parts[2], after)
                    self._reply(200, {"events": events, "next": cursor})
                else:
                    self._reply(404, {"error": "not found"})
            except JobQueueError as exc:
                self._reply(404, {"error": str(exc)})

        def do_POST(self):
            path = self.path.partition("?")[0]
            parts = [p for p in path.split("/") if p]
            if parts != ["api", "jobs"]:
                self._reply(404, {"error": "not found"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            try:
                payload = json.loads(
                    self.rfile.read(length).decode("utf-8") or "{}"
                )
            except ValueError:
                self._reply(400, {"error": "invalid JSON body"})
                return
            try:
                _build_audit(payload)  # validate before enqueueing
            except (ServiceError, SystemExit, TypeError) as exc:
                self._reply(400, {"error": str(exc)})
                return
            job_id = service.queue.submit(payload)
            self._reply(201, {"job_id": job_id})

    return Handler


def run_server(service, host="127.0.0.1", port=8630, ready=None,
               install_signals=True):
    """Serve the JSON API until SIGTERM/SIGINT, then drain gracefully.

    ``ready`` (optional callable) receives the bound ``(host, port)``
    once the socket is listening — tests and the CLI use it to print
    the actual port when ``port=0`` asked for an ephemeral one.
    """
    httpd = ThreadingHTTPServer((host, port), _handler_for(service))
    httpd.daemon_threads = True
    service.start()

    def shutdown(_signum=None, _frame=None):
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, shutdown)
        signal.signal(signal.SIGINT, shutdown)
    if ready is not None:
        ready(httpd.server_address)
    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        httpd.server_close()
        service.drain()
    return 0


class ServiceClient:
    """Tiny urllib client for the JSON API (used by ``repro submit``
    and ``repro jobs``; also handy in tests)."""

    def __init__(self, base_url, timeout=10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path, payload=None):
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                detail = {"error": str(exc)}
            raise ServiceError(
                "{} {}: {}".format(exc.code, path,
                                   detail.get("error", detail))
            ) from exc

    def submit(self, design, options=None):
        reply = self._request("/api/jobs", {
            "design": design, "options": options or {},
        })
        return reply["job_id"]

    def jobs(self):
        return self._request("/api/jobs")["jobs"]

    def job(self, job_id):
        return self._request("/api/jobs/{}".format(job_id))

    def events(self, job_id, after=0):
        reply = self._request(
            "/api/jobs/{}/events?after={}".format(job_id, after)
        )
        return reply["events"], reply["next"]

    def health(self):
        return self._request("/healthz")

    def wait(self, job_id, timeout=120.0, poll=0.2):
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "dead"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "timed out waiting for {} (state {})".format(
                        job_id, job["state"])
                )
            time.sleep(poll)
