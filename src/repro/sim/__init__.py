"""Logic simulation: bit-parallel evaluation, sequential runs, VCD, stimulus."""

from repro.sim.engine import CombEvaluator
from repro.sim.random_stim import StimulusGenerator
from repro.sim.sequential import SequentialSimulator, Trace
from repro.sim.vcd import VcdWriter

__all__ = [
    "CombEvaluator",
    "StimulusGenerator",
    "SequentialSimulator",
    "Trace",
    "VcdWriter",
]
