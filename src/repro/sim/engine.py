"""Levelized bit-parallel logic simulation.

Net values are Python integers used as *pattern vectors*: bit ``k`` of every
net's word is the value of that net under stimulus pattern ``k``. A
:class:`CombEvaluator` with ``lanes = 1`` is an ordinary single-pattern
simulator; with ``lanes = 64`` (or any width — Python ints are unbounded) it
evaluates 64 patterns per pass, which is what makes the FANCI sampling and
fault-simulation substrates tractable in pure Python.

The evaluator is *compiled* once per netlist: cells are stored in topological
order and replayed linearly — no event wheel, every gate evaluates every
pass. For the design sizes in this repository (10^3–10^5 gates) the oblivious
approach beats an event-driven one in CPython by a wide margin.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.netlist.cells import Kind
from repro.netlist.traversal import topological_cells


class CombEvaluator:
    """Evaluates the combinational portion of a netlist, bit-parallel."""

    def __init__(self, netlist, lanes=1):
        if lanes < 1:
            raise SimulationError("lanes must be >= 1")
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self._order = topological_cells(netlist)
        # Pre-decode cells into a flat program of (opcode, inputs, output)
        self._program = [
            (cell.kind, cell.inputs, cell.output)
            for cell in (netlist.cells[i] for i in self._order)
        ]

    def fresh_values(self):
        """A value array with constants set; everything else 0."""
        values = [0] * self.netlist.num_nets
        values[1] = self.mask
        return values

    def propagate(self, values):
        """Evaluate all combinational cells in place over ``values``.

        ``values`` must already hold the input-port nets and flop Q nets.
        """
        mask = self.mask
        for kind, ins, out in self._program:
            if kind is Kind.AND:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc &= values[net]
                values[out] = acc
            elif kind is Kind.OR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc |= values[net]
                values[out] = acc
            elif kind is Kind.XOR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc ^= values[net]
                values[out] = acc
            elif kind is Kind.NOT:
                values[out] = ~values[ins[0]] & mask
            elif kind is Kind.MUX:
                sel = values[ins[0]]
                values[out] = (values[ins[1]] & ~sel) | (values[ins[2]] & sel)
            elif kind is Kind.BUF:
                values[out] = values[ins[0]]
            elif kind is Kind.NAND:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc &= values[net]
                values[out] = ~acc & mask
            elif kind is Kind.NOR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc |= values[net]
                values[out] = ~acc & mask
            elif kind is Kind.XNOR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc ^= values[net]
                values[out] = ~acc & mask
            else:  # pragma: no cover - closed enum
                raise SimulationError("unknown cell kind {!r}".format(kind))
        return values

    # ------------------------------------------------------------- word I/O

    def set_word(self, values, nets, word):
        """Broadcast an integer word onto nets (same value in every lane)."""
        mask = self.mask
        for i, net in enumerate(nets):
            values[net] = mask if (word >> i) & 1 else 0

    def set_word_lanes(self, values, nets, words):
        """Set per-lane words: ``words[k]`` drives lane ``k``.

        More words than lanes is an error.  *Fewer* words than lanes is
        allowed and zero-fills: lanes ``len(words)..lanes-1`` are driven
        to 0, not left at their previous value and not broadcast from
        the last word.  Callers that want a broadcast should use
        :meth:`set_word` instead.
        """
        if len(words) > self.lanes:
            raise SimulationError(
                "{} words but only {} lanes".format(len(words), self.lanes)
            )
        for i, net in enumerate(nets):
            acc = 0
            for lane, word in enumerate(words):
                if (word >> i) & 1:
                    acc |= 1 << lane
            values[net] = acc

    def get_word(self, values, nets, lane=0):
        """Read nets as an integer word from one lane."""
        word = 0
        for i, net in enumerate(nets):
            if (values[net] >> lane) & 1:
                word |= 1 << i
        return word

    def get_word_lanes(self, values, nets):
        """Read nets as a list of per-lane integer words."""
        return [self.get_word(values, nets, lane) for lane in range(self.lanes)]
