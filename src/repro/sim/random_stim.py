"""Deterministic random stimulus generation.

Used by the baselines (FANCI sampling, VeriTrust activation runs), the
fault simulator, and the test suite. All generators take explicit seeds —
results are reproducible run to run.
"""

from __future__ import annotations

import random


class StimulusGenerator:
    """Seeded generator of input words and per-cycle stimulus dicts."""

    def __init__(self, netlist, seed=0):
        self.netlist = netlist
        self.rng = random.Random(seed)

    def random_word(self, width):
        return self.rng.getrandbits(width) if width else 0

    def random_inputs(self, exclude=()):
        """One cycle of random values for every input port."""
        return {
            name: self.random_word(len(nets))
            for name, nets in self.netlist.inputs.items()
            if name not in exclude
        }

    def random_sequence(self, cycles, overrides=None, exclude=()):
        """A list of per-cycle stimulus dicts.

        ``overrides`` maps port name -> callable(cycle) or constant, letting
        callers pin control ports (e.g. hold ``reset`` low) while the rest
        stays random.
        """
        overrides = overrides or {}
        sequence = []
        for cycle in range(cycles):
            inputs = self.random_inputs(exclude=exclude)
            for name, value in overrides.items():
                inputs[name] = value(cycle) if callable(value) else value
            sequence.append(inputs)
        return sequence

    def random_lane_words(self, width, lanes):
        """``lanes`` independent random words of ``width`` bits."""
        return [self.random_word(width) for _ in range(lanes)]
