"""Cycle-accurate sequential simulation on top of :class:`CombEvaluator`.

:class:`SequentialSimulator` drives a netlist clock by clock: set input
words, evaluate the combinational logic, sample outputs/registers, then
advance every flop. It supports bit-parallel lanes (simulate many stimulus
sequences at once) and trace capture for counterexample replay — every
witness produced by the BMC/ATPG engines is validated by replaying it here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.engine import CombEvaluator


@dataclass
class Trace:
    """Captured per-cycle values of selected registers/ports (lane 0).

    ``complete`` is set by :meth:`SequentialSimulator.run` once every
    observed series has been fully captured.  A trace assembled by hand
    (or inspected mid-run) may legitimately have series of different
    lengths; a *complete* trace may not.
    """

    registers: dict = field(default_factory=dict)  # name -> [value per cycle]
    outputs: dict = field(default_factory=dict)  # name -> [value per cycle]
    complete: bool = False

    def cycles(self):
        """Number of captured cycles: the max across all series.

        Raises :class:`SimulationError` if a complete trace is ragged
        (series of unequal length), which indicates a capture bug rather
        than a mid-run snapshot.
        """
        lengths = {len(series) for series in self.registers.values()}
        lengths.update(len(series) for series in self.outputs.values())
        if not lengths:
            return 0
        if self.complete and len(lengths) > 1:
            raise SimulationError(
                "ragged trace: series lengths {}".format(sorted(lengths))
            )
        return max(lengths)


class SequentialSimulator:
    """Clocked simulator with named-port stimulus and register observation."""

    def __init__(self, netlist, lanes=1):
        self.netlist = netlist
        self.evaluator = CombEvaluator(netlist, lanes=lanes)
        self.values = self.evaluator.fresh_values()
        self.cycle = 0
        self.reset()

    # ----------------------------------------------------------------- state

    def reset(self):
        """Restore the power-on state: fresh net values, flop inits, cycle 0.

        Rebuilds the whole value vector rather than just reloading flop Q
        nets — otherwise previously driven input ports and stale
        combinational values would survive into the next run and replay
        old stimulus.
        """
        self.values = self.evaluator.fresh_values()
        for flop in self.netlist.flops:
            self.values[flop.q] = self.evaluator.mask if flop.init else 0
        self.cycle = 0

    def set_input(self, name, word):
        """Drive an input port with an integer word (broadcast to all lanes)."""
        nets = self._input_nets(name)
        self.evaluator.set_word(self.values, nets, word)

    def set_input_lanes(self, name, words):
        """Drive an input port with one word per lane."""
        nets = self._input_nets(name)
        self.evaluator.set_word_lanes(self.values, nets, words)

    def _input_nets(self, name):
        try:
            return self.netlist.inputs[name]
        except KeyError:
            raise SimulationError("no input port {!r}".format(name)) from None

    # ------------------------------------------------------------ evaluation

    def propagate(self):
        """Evaluate combinational logic for the current cycle (no clocking)."""
        self.evaluator.propagate(self.values)

    def clock(self):
        """Advance all flops: Q <= D. Call after :meth:`propagate`."""
        values = self.values
        updates = [(flop.q, values[flop.d]) for flop in self.netlist.flops]
        for q, v in updates:
            values[q] = v
        self.cycle += 1

    def step(self, inputs=None):
        """One full clock cycle: drive inputs, propagate, clock.

        ``inputs`` maps port name -> integer word. Ports not mentioned keep
        their previous value.
        """
        if inputs:
            for name, word in inputs.items():
                self.set_input(name, word)
        self.propagate()
        self.clock()

    def run(self, stimulus, observe_registers=(), observe_outputs=()):
        """Run a list of per-cycle input dicts, capturing a :class:`Trace`.

        The trace records values *after* each cycle's clock edge for
        registers (their new contents) and *before* the edge for outputs
        (their combinational value during the cycle).
        """
        trace = Trace(
            registers={name: [] for name in observe_registers},
            outputs={name: [] for name in observe_outputs},
        )
        for cycle_inputs in stimulus:
            for name, word in cycle_inputs.items():
                self.set_input(name, word)
            self.propagate()
            for name in observe_outputs:
                trace.outputs[name].append(self.output_value(name))
            self.clock()
            for name in observe_registers:
                trace.registers[name].append(self.register_value(name))
        trace.complete = True
        return trace

    # ---------------------------------------------------------- observation

    def register_value(self, name, lane=0):
        """Current contents of a named register as an integer."""
        nets = self.netlist.register_q_nets(name)
        return self.evaluator.get_word(self.values, nets, lane)

    def output_value(self, name, lane=0):
        """Current value of an output port (valid after :meth:`propagate`)."""
        try:
            nets = self.netlist.outputs[name]
        except KeyError:
            raise SimulationError("no output port {!r}".format(name)) from None
        return self.evaluator.get_word(self.values, nets, lane)

    def net_value(self, net, lane=0):
        return (self.values[net] >> lane) & 1

    def state(self):
        """Snapshot of all register values (lane 0), by name."""
        return {
            name: self.register_value(name) for name in self.netlist.registers
        }
