"""Minimal VCD (Value Change Dump) writer for simulation traces.

Lets a user open counterexample replays in GTKWave or any waveform viewer.
Only what the library needs: multi-bit variables, one clock domain, value
changes per cycle.
"""

from __future__ import annotations

import io

from repro.errors import SimulationError


_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index):
    """Short printable VCD identifier for a variable index."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


def _change(value, width, ident):
    """One value-change line (scalar or vector form by width)."""
    if width == 1:
        return "{}{}\n".format(value, ident)
    return "b{:b} {}\n".format(value, ident)


class VcdWriter:
    """Accumulates named multi-bit signals and writes a VCD document."""

    def __init__(self, design_name="repro", timescale="1ns"):
        self.design_name = design_name
        self.timescale = timescale
        self._vars = []  # (name, width, identifier)
        self._series = []  # per-var list of per-cycle values

    def add_signal(self, name, width, values):
        """Register a signal with one integer value per cycle.

        Every value must fit the declared width; out-of-range values are
        an error (a truncated waveform would silently misrepresent the
        trace it is supposed to witness).
        """
        series = list(values)
        limit = 1 << width
        for cycle, value in enumerate(series):
            if not 0 <= value < limit:
                raise SimulationError(
                    "signal {!r} cycle {}: value {} does not fit "
                    "width {}".format(name, cycle, value, width)
                )
        ident = _identifier(len(self._vars))
        self._vars.append((name, width, ident))
        self._series.append(series)

    def add_trace(self, trace, widths):
        """Add every series from a :class:`~repro.sim.sequential.Trace`.

        ``widths`` maps signal name -> bit width.
        """
        for name, values in trace.registers.items():
            self.add_signal(name, widths[name], values)
        for name, values in trace.outputs.items():
            self.add_signal(name, widths[name], values)

    def dumps(self):
        """Render the VCD document as a string."""
        out = io.StringIO()
        out.write("$date repro $end\n")
        out.write("$version repro vcd writer $end\n")
        out.write("$timescale {} $end\n".format(self.timescale))
        out.write("$scope module {} $end\n".format(self.design_name))
        for name, width, ident in self._vars:
            out.write(
                "$var wire {} {} {} $end\n".format(width, ident, name)
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        cycles = max((len(s) for s in self._series), default=0)
        previous = [None] * len(self._vars)
        out.write("#0\n$dumpvars\n")
        for idx, (_name, width, ident) in enumerate(self._vars):
            series = self._series[idx]
            if not series:
                continue
            previous[idx] = series[0]
            out.write(_change(series[0], width, ident))
        out.write("$end\n")
        for cycle in range(1, cycles):
            out.write("#{}\n".format(cycle))
            for idx, (_name, width, ident) in enumerate(self._vars):
                series = self._series[idx]
                if cycle >= len(series):
                    continue
                value = series[cycle]
                if value == previous[idx]:
                    continue
                previous[idx] = value
                out.write(_change(value, width, ident))
        out.write("#{}\n".format(cycles))
        return out.getvalue()

    def write(self, path):
        """Write the VCD document to a file path."""
        with open(path, "w") as handle:
            handle.write(self.dumps())
