"""Fault simulation tests, including the Section 4.1 argument: a stuck
pseudo-critical register bit is revealed by functional testing."""

from repro.atpg import Fault, FaultSimulator, full_fault_list
from repro.sim import StimulusGenerator

from tests.conftest import build_counter, build_secret_design


def test_detects_injected_output_fault():
    nl = build_counter(4)
    bit0 = nl.register_q_nets("count")[0]
    sim = FaultSimulator(nl)
    result = sim.run([Fault(bit0, 0)], [{"en": 1}] * 3)
    assert Fault(bit0, 0) in result.detected
    # count becomes 1 at the first edge; the stuck bit is visible on the
    # output during the following cycle
    assert result.detected[Fault(bit0, 0)] == 1


def test_undetected_without_stimulus():
    nl = build_counter(4)
    bit0 = nl.register_q_nets("count")[0]
    sim = FaultSimulator(nl)
    result = sim.run([Fault(bit0, 0)], [{"en": 0}] * 3)
    assert Fault(bit0, 0) in result.undetected
    assert result.coverage == 0.0


def test_batching_matches_small_batches():
    nl = build_counter(3)
    faults = full_fault_list(nl)
    stim = [{"en": 1}] * 6
    big = FaultSimulator(nl, batch=63).run(faults, stim)
    small = FaultSimulator(nl, batch=3).run(faults, stim)
    assert set(big.detected) == set(small.detected)


def test_coverage_on_counter_with_random_stimulus():
    nl = build_counter(4)
    gen = StimulusGenerator(nl, seed=3)
    stim = gen.random_sequence(40)
    result = FaultSimulator(nl).run(full_fault_list(nl), stim)
    assert result.coverage > 0.5
    assert result.patterns == 40


def test_stuck_pseudo_critical_bit_revealed():
    """Section 4.1: an attacker cannot force a pseudo-critical register bit
    to a constant — functional testing with valid update sequences reveals
    the stuck-at fault at an output."""
    nl = build_secret_design(trojan=False, pseudo=True)
    pseudo_bit = nl.register_q_nets("pseudo_secret")[0]
    functional_suite = [
        {"reset": 1, "load": 0, "key_in": 0},
        {"reset": 0, "load": 1, "key_in": 0xFF},
        {"reset": 0, "load": 0, "key_in": 0},
        {"reset": 0, "load": 1, "key_in": 0x00},
        {"reset": 0, "load": 0, "key_in": 0},
    ]
    sim = FaultSimulator(nl)
    result = sim.run(
        [Fault(pseudo_bit, 0), Fault(pseudo_bit, 1)], functional_suite
    )
    assert Fault(pseudo_bit, 0) in result.detected
    assert Fault(pseudo_bit, 1) in result.detected
