"""Fault list and collapsing tests."""

from repro.atpg import Fault, collapse_faults, full_fault_list
from repro.netlist import Circuit

from tests.conftest import build_counter


def test_full_list_covers_driven_nets():
    nl = build_counter(2)
    faults = full_fault_list(nl)
    nets = {f.net for f in faults}
    for cell in nl.cells:
        assert cell.output in nets
    for flop in nl.flops:
        assert flop.q in nets
    # both polarities present
    assert Fault(nl.cells[0].output, 0) in faults
    assert Fault(nl.cells[0].output, 1) in faults


def test_collapse_is_subset():
    nl = build_counter(4)
    full = set(full_fault_list(nl))
    collapsed = set(collapse_faults(nl))
    assert collapsed <= full
    assert len(collapsed) < len(full)


def test_collapse_drops_controlled_and_inputs():
    c = Circuit("cl")
    a = c.input("a", 1)
    b = c.input("b", 1)
    y = a & b
    c.output("y", y)
    nl = c.finalize()
    collapsed = set(collapse_faults(nl))
    # s-a-0 on fanout-free AND inputs is equivalent to output s-a-0
    assert Fault(a.nets[0], 0) not in collapsed
    assert Fault(b.nets[0], 0) not in collapsed
    assert Fault(a.nets[0], 1) in collapsed
    assert Fault(y.nets[0], 0) in collapsed


def test_fault_str():
    assert str(Fault(12, 1)) == "s-a-1@12"
