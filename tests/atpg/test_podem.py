"""Combinational PODEM tests: generated tests validated by fault simulation
semantics (apply pattern to good and faulty circuit; outputs must differ)."""

import pytest

from repro.atpg import CombPodem, Fault, TESTABLE, UNTESTABLE
from repro.netlist import Circuit
from repro.sim import CombEvaluator


def apply_with_fault(netlist, pattern, fault):
    """Evaluate (good, faulty) observable values for a full input pattern."""
    results = []
    for inject in (False, True):
        ev = CombEvaluator(netlist)
        values = ev.fresh_values()
        for net, bit in pattern.items():
            values[net] = bit
        if inject:
            values[fault.net] = fault.stuck_at
        # propagate with injection at the fault site
        for kind, ins, out in ev._program:
            from repro.netlist.cells import Cell

            cell = Cell(kind, ins, out)
            values[out] = cell.eval(values) & 1
            if inject and out == fault.net:
                values[out] = fault.stuck_at
        observable = []
        for nets in netlist.outputs.values():
            observable.extend(values[n] for n in nets)
        for flop in netlist.flops:
            observable.append(values[flop.d])
        results.append(tuple(observable))
    return results


def build_and_or():
    c = Circuit("ao")
    a = c.input("a", 1)
    b = c.input("b", 1)
    d = c.input("d", 1)
    y = (a & b) | d
    c.output("y", y)
    return c.finalize(), y.nets[0]


class TestBasicFaults:
    def test_output_stuck_at_0(self):
        nl, y = build_and_or()
        result = CombPodem(nl).generate_test(Fault(y, 0))
        assert result.status == TESTABLE
        good, faulty = apply_with_fault(nl, result.test, Fault(y, 0))
        assert good != faulty

    def test_internal_fault(self):
        nl, _y = build_and_or()
        and_net = nl.cells[0].output
        for stuck in (0, 1):
            fault = Fault(and_net, stuck)
            result = CombPodem(nl).generate_test(fault)
            assert result.status == TESTABLE
            good, faulty = apply_with_fault(nl, result.test, fault)
            assert good != faulty

    def test_untestable_redundant_fault(self):
        # y = a | ~a is constant 1: s-a-1 at y is untestable
        c = Circuit("red")
        a = c.input("a", 1)
        y = a | ~a
        c.output("y", y)
        nl = c.finalize()
        result = CombPodem(nl).generate_test(Fault(y.nets[0], 1))
        assert result.status == UNTESTABLE


class TestWholeFaultList:
    @pytest.mark.parametrize("builder", [build_and_or])
    def test_full_coverage_small_circuit(self, builder):
        from repro.atpg import full_fault_list

        nl, _ = builder()
        podem = CombPodem(nl)
        results = podem.run_fault_list(full_fault_list(nl))
        for fault, result in results.items():
            if result.status != TESTABLE:
                continue
            good, faulty = apply_with_fault(nl, result.test, fault)
            assert good != faulty, fault

    def test_comparator_faults_testable(self):
        c = Circuit("cmp")
        a = c.input("a", 4)
        y = a.eq_const(0xA)
        c.output("y", y)
        nl = c.finalize()
        podem = CombPodem(nl)
        fault = Fault(y.nets[0], 0)
        result = podem.generate_test(fault)
        assert result.status == TESTABLE
        # the test must set a == 0xA to excite s-a-0 at the compare output
        word = sum(
            result.test.get(net, 0) << bit
            for bit, net in enumerate(nl.inputs["a"])
        )
        assert word == 0xA


class TestSequentialView:
    def test_flop_pins_are_pseudo_ports(self):
        c = Circuit("seq")
        en = c.input("en", 1)
        r = c.reg("r", 2)
        r.hold_unless((en, r.q + 1))
        c.output("y", r.q)
        nl = c.finalize()
        podem = CombPodem(nl)
        assert set(nl.register_q_nets("r")) <= set(podem.controllable)
        d_nets = set(nl.register_d_nets("r"))
        assert d_nets <= set(podem.observable)


def test_monitor_output_stuck_at_formulation(trojan_design, spec):
    """The paper's Section 3.2 trick: a test for s-a-1 at the monitor
    output is an input pattern driving the (combinationally viewed)
    violation signal to 0 in the good circuit — i.e. the property holds
    for that pattern; s-a-0 tests force a violation pattern if one exists
    in the combinational view."""
    from repro.properties.monitors import build_corruption_monitor

    monitor = build_corruption_monitor(trojan_design, spec)
    podem = CombPodem(monitor.netlist)
    result = podem.generate_test(Fault(monitor.violation_net, 1))
    # s-a-1 is testable iff the violation net can be 0 somewhere: trivially
    # yes (any cycle without corruption)
    assert result.status == TESTABLE
