"""PODEM sequential justifier tests (mirrors the backward engine's suite:
the two must agree with BMC on every verdict)."""

from repro.netlist import Circuit
from repro.atpg import PodemJustifier
from repro.bmc import BmcEngine, confirms_violation

from tests.conftest import build_counter, build_secret_design, secret_spec


def counter_objective(value, width=4):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    return nl, c.bv(nl.register_q_nets("count")).eq_const(value).nets[0]


def test_bounds_match_bmc():
    for value in (1, 3, 6):
        nl, obj = counter_objective(value)
        bmc = BmcEngine(nl, obj).check(12)
        podem = PodemJustifier(nl, obj).check(12)
        assert podem.status == bmc.status == "violated"
        assert podem.bound == bmc.bound


def test_proved_case():
    nl, obj = counter_objective(9)
    assert PodemJustifier(nl, obj).check(6).status == "proved"


def test_witness_confirms():
    nl, obj = counter_objective(4)
    result = PodemJustifier(nl, obj).check(10)
    assert result.detected
    assert confirms_violation(nl, result.witness, obj)


def test_pinned_inputs():
    nl, obj = counter_objective(2)
    blocked = PodemJustifier(nl, obj, pinned_inputs={"en": 0}).check(8)
    assert blocked.status == "proved"
    forced = PodemJustifier(nl, obj, pinned_inputs={"en": 1}).check(8)
    assert forced.detected


def test_budget_unknown():
    nl, obj = counter_objective(15)
    assert PodemJustifier(nl, obj).check(100, time_budget=0.0).status == (
        "unknown"
    )


def test_trojan_monitor_never_wrong_under_budget():
    """PODEM is the portfolio's arithmetic-property specialist; on
    counter/comparator monitors it may abort — but it must never return a
    wrong verdict, and any detection must carry a valid witness. (The
    composite 'atpg' backend covers this design via the backward stage —
    see test_portfolio.)"""
    from repro.properties.monitors import build_corruption_monitor

    nl = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(nl, secret_spec())
    result = PodemJustifier(monitor.netlist, monitor.objective_net).check(
        15, time_budget=10
    )
    assert result.status in ("violated", "unknown")
    if result.detected:
        assert confirms_violation(
            monitor.netlist, result.witness, monitor.violation_net
        )


def test_clean_monitor_never_wrong_under_budget():
    from repro.properties.monitors import build_corruption_monitor

    nl = build_secret_design(trojan=False)
    monitor = build_corruption_monitor(nl, secret_spec())
    result = PodemJustifier(monitor.netlist, monitor.objective_net).check(
        8, time_budget=10
    )
    assert result.status in ("proved", "unknown")


def test_cross_engine_agreement_random_fsm():
    """All three engines agree on reachability of random target values."""
    import random

    from repro.atpg import SequentialJustifier

    rng = random.Random(4)
    c = Circuit("fsm")
    step = c.input("step", 2)
    state = c.reg("state", 3)
    # a little random walk FSM: +1, +2, hold, reset-to-5
    state.hold_unless(
        (step.eq_const(1), state.q + 1),
        (step.eq_const(2), state.q + 2),
        (step.eq_const(3), c.const(5, 3)),
    )
    c.output("s", state.q)
    nl = c.finalize()
    cc = Circuit.attach(nl)
    for _ in range(4):
        target = rng.randrange(8)
        obj = cc.bv(nl.register_q_nets("state")).eq_const(target).nets[0]
        verdicts = {
            BmcEngine(nl, obj).check(6).status,
            SequentialJustifier(nl, obj).check(6).status,
            PodemJustifier(nl, obj).check(6).status,
        }
        assert len(verdicts) == 1, (target, verdicts)
