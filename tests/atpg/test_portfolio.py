"""Portfolio justifier tests."""

from repro.atpg.portfolio import PortfolioJustifier
from repro.netlist import Circuit

from tests.conftest import build_counter, build_secret_design, secret_spec


def counter_objective(value, width=4):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    return nl, c.bv(nl.register_q_nets("count")).eq_const(value).nets[0]


def test_finds_violation():
    nl, obj = counter_objective(4)
    result = PortfolioJustifier(nl, obj).check(10, time_budget=30)
    assert result.detected
    assert result.bound == 5


def test_proved_by_first_stage():
    nl, obj = counter_objective(9)
    justifier = PortfolioJustifier(nl, obj)
    result = justifier.check(5, time_budget=30)
    assert result.status == "proved"
    # the backward ramp concludes; later stages never run
    assert len(justifier.stage_results) == 1


def test_unknown_reports_deepest_bound():
    nl, obj = counter_objective(15)
    result = PortfolioJustifier(nl, obj).check(100, time_budget=0.2)
    assert result.status in ("unknown", "violated")


def test_detects_trojan_monitor():
    from repro.bmc.witness import confirms_violation
    from repro.properties.monitors import build_corruption_monitor

    nl = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(nl, secret_spec())
    result = PortfolioJustifier(
        monitor.netlist, monitor.objective_net
    ).check(15, time_budget=60)
    assert result.detected
    assert confirms_violation(
        monitor.netlist, result.witness, monitor.violation_net
    )
