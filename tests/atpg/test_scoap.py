"""SCOAP testability measure tests."""

from repro.atpg import compute_scoap
from repro.netlist import Circuit

from tests.conftest import build_counter


def test_inputs_cost_one():
    c = Circuit("s")
    a = c.input("a", 1)
    b = c.input("b", 1)
    y = a & b
    c.output("y", y)
    nl = c.finalize()
    scoap = compute_scoap(nl)
    assert scoap.cc0[a.nets[0]] == 1
    assert scoap.cc1[a.nets[0]] == 1
    # AND: hard-1 (both inputs), easy-0 (either input)
    assert scoap.cc1[y.nets[0]] == 3  # 1 + 1 + 1
    assert scoap.cc0[y.nets[0]] == 2  # min(1,1) + 1


def test_constants():
    c = Circuit("s")
    a = c.input("a", 1)
    c.output("y", a)
    nl = c.finalize()
    scoap = compute_scoap(nl)
    assert scoap.cc0[0] == 0
    assert scoap.cc1[0] == float("inf")  # const0 can never be 1
    assert scoap.cc1[1] == 0


def test_deep_and_tree_harder_than_shallow():
    c = Circuit("s")
    a = c.input("a", 8)
    wide = a.reduce_and()
    single = a[0]
    c.output("w", wide)
    c.output("s1", single)
    nl = c.finalize()
    scoap = compute_scoap(nl)
    assert scoap.cc1[wide.nets[0]] > scoap.cc1[single.nets[0]]


def test_sequential_costs_finite():
    nl = build_counter(4)
    scoap = compute_scoap(nl)
    for flop in nl.flops:
        assert scoap.cc0[flop.q] < float("inf")
        assert scoap.cc1[flop.q] < float("inf")


def test_observability_zero_at_outputs():
    nl = build_counter(4)
    scoap = compute_scoap(nl)
    for net in nl.outputs["value"]:
        assert scoap.co[net] == 0.0
    # flop D pins observable through the registers
    for flop in nl.flops:
        assert scoap.co[flop.d] < float("inf")


def test_cost_helper():
    nl = build_counter(2)
    scoap = compute_scoap(nl)
    net = nl.flops[0].q
    assert scoap.cost(net, 0) == scoap.cc0[net]
    assert scoap.cost(net, 1) == scoap.cc1[net]
