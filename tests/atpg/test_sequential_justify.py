"""Backward sequential justification tests, cross-checked against BMC."""

from repro.netlist import Circuit
from repro.atpg import SequentialJustifier
from repro.bmc import BmcEngine, confirms_violation

from tests.conftest import build_counter, build_secret_design, secret_spec


def counter_objective(value, width=4):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    return nl, c.bv(nl.register_q_nets("count")).eq_const(value).nets[0]


class TestAgainstBmc:
    def test_same_bounds_as_bmc(self):
        for value in (1, 3, 6):
            nl, obj = counter_objective(value)
            bmc = BmcEngine(nl, obj).check(12)
            atpg = SequentialJustifier(nl, obj).check(12)
            assert atpg.status == bmc.status == "violated"
            assert atpg.bound == bmc.bound == value + 1

    def test_proved_matches_bmc(self):
        nl, obj = counter_objective(9)
        assert SequentialJustifier(nl, obj).check(6).status == "proved"
        assert BmcEngine(nl, obj).check(6).status == "proved"


class TestWitnesses:
    def test_witness_confirms(self):
        nl, obj = counter_objective(4)
        result = SequentialJustifier(nl, obj).check(10)
        assert result.detected
        assert confirms_violation(nl, result.witness, obj)

    def test_unassigned_inputs_default_zero(self):
        nl = build_secret_design(trojan=True)
        c = Circuit.attach(nl)
        obj = c.bv(nl.register_q_nets("troj_counter")).eq_const(2).nets[0]
        result = SequentialJustifier(nl, obj).check(8)
        assert result.detected
        # reset unconstrained by the property: justified witness keeps it 0
        assert all(f["reset"] == 0 for f in result.witness.inputs)
        assert confirms_violation(nl, result.witness, obj)


class TestBudgets:
    def test_time_budget_gives_unknown(self):
        nl, obj = counter_objective(15)
        result = SequentialJustifier(nl, obj).check(100, time_budget=0.0)
        assert result.status == "unknown"

    def test_pinned_inputs(self):
        nl, obj = counter_objective(2)
        blocked = SequentialJustifier(
            nl, obj, pinned_inputs={"en": 0}
        ).check(8)
        assert blocked.status == "proved"
        forced = SequentialJustifier(
            nl, obj, pinned_inputs={"en": 1}
        ).check(8)
        assert forced.detected
        assert all(f["en"] == 1 for f in forced.witness.inputs)


class TestEndToEndTrojan:
    def test_detects_secret_corruption(self):
        from repro.properties.monitors import build_corruption_monitor

        nl = build_secret_design(trojan=True)
        monitor = build_corruption_monitor(nl, secret_spec())
        result = SequentialJustifier(
            monitor.netlist, monitor.objective_net
        ).check(15)
        assert result.detected
        assert confirms_violation(
            monitor.netlist, result.witness, monitor.violation_net
        )

    def test_clean_design_proved(self):
        from repro.properties.monitors import build_corruption_monitor

        nl = build_secret_design(trojan=False)
        monitor = build_corruption_monitor(nl, secret_spec())
        result = SequentialJustifier(
            monitor.netlist, monitor.objective_net
        ).check(10)
        assert result.status == "proved"
