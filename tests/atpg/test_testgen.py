"""Test-set generation tests: correctness by independent fault simulation."""

from repro.atpg.testgen import GeneratedTests, generate_tests, _SingleFrameFaultSim
from repro.netlist import Circuit

from tests.conftest import build_counter, build_secret_design


def build_comb():
    c = Circuit("comb")
    a = c.input("a", 4)
    b = c.input("b", 4)
    c.output("y", (a & b) ^ (a | b))
    c.output("z", a == b)
    return c.finalize()


def test_full_coverage_on_combinational_design():
    nl = build_comb()
    result = generate_tests(nl)
    assert result.aborted == []
    assert result.coverage == 1.0
    assert len(result.patterns) >= 1
    # compaction: far fewer patterns than detected faults
    assert len(result.patterns) < len(result.detected)


def test_every_claimed_detection_verified_independently():
    nl = build_comb()
    result = generate_tests(nl)
    sim = _SingleFrameFaultSim(nl)
    for fault, index in result.detected.items():
        assert fault in sim.detected_by(result.patterns[index], [fault])


def test_untestable_faults_on_redundant_logic():
    c = Circuit("red")
    a = c.input("a", 1)
    c.output("y", a | ~a)  # constant-1 output
    nl = c.finalize()
    result = generate_tests(nl)
    # s-a-1 at the constant output is redundant
    assert any(f.stuck_at == 1 for f in result.untestable)


def test_sequential_design_single_frame_view():
    nl = build_counter(4)
    result = generate_tests(nl)
    # flop Qs are pseudo-inputs: the counter logic is fully testable
    assert result.coverage == 1.0


def test_budget_moves_faults_to_aborted():
    nl = build_secret_design(trojan=True)
    result = generate_tests(nl, time_budget=0.0)
    assert result.aborted
    assert result.coverage < 1.0


def test_summary_text():
    assert "coverage" in GeneratedTests().summary()
