"""5-valued D-calculus tests: exhaustive against the (good, faulty) pair
semantics."""

import pytest

from repro.atpg.values import (
    D,
    DBAR,
    ONE,
    X,
    ZERO,
    and5,
    faulty_value,
    fold,
    good_value,
    is_d_value,
    mux5,
    not5,
    or5,
    xor5,
)

ALL = [ZERO, ONE, X, D, DBAR]


def pair(v):
    return good_value(v), faulty_value(v)


def check_op(op, pyop, a, b):
    """Oracle for the 5-valued algebra with its standard pessimism: if
    EITHER the good or the faulty component comes out unknown, the result
    is X and both components are lost (X carries no per-circuit data)."""
    ga, fa = pair(a)
    gb, fb = pair(b)
    result = op(a, b)
    gr, fr = pair(result)

    def comp(x, y):
        if x is None or y is None:
            # determined only if the op is insensitive to the unknown
            candidates = {
                pyop(xx, yy)
                for xx in ([x] if x is not None else [0, 1])
                for yy in ([y] if y is not None else [0, 1])
            }
            return candidates.pop() if len(candidates) == 1 else None
        return pyop(x, y)

    expected_good = comp(ga, gb)
    expected_faulty = comp(fa, fb)
    if expected_good is None or expected_faulty is None:
        expected_good = expected_faulty = None  # collapse to X
    assert gr == expected_good
    assert fr == expected_faulty


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
def test_and_or_xor_exhaustive(a, b):
    check_op(and5, lambda x, y: x & y, a, b)
    check_op(or5, lambda x, y: x | y, a, b)
    check_op(xor5, lambda x, y: x ^ y, a, b)


@pytest.mark.parametrize("a", ALL)
def test_not(a):
    g, f = pair(a)
    gr, fr = pair(not5(a))
    assert gr == (None if g is None else 1 - g)
    assert fr == (None if f is None else 1 - f)


def test_d_semantics():
    assert and5(D, ONE) == D
    assert and5(D, ZERO) == ZERO
    assert and5(D, DBAR) == ZERO  # good 1&0=0, faulty 0&1=0
    assert or5(D, DBAR) == ONE
    assert xor5(D, D) == ZERO
    assert xor5(D, DBAR) == ONE
    assert not5(D) == DBAR


@pytest.mark.parametrize("sel", ALL)
@pytest.mark.parametrize("d0", [ZERO, ONE, D])
@pytest.mark.parametrize("d1", [ZERO, ONE, DBAR])
def test_mux_exhaustive(sel, d0, d1):
    result = mux5(sel, d0, d1)

    def component_expectation(component):
        s = component(sel)
        lo, hi = component(d0), component(d1)
        if s == 0:
            return lo
        if s == 1:
            return hi
        if lo == hi and lo is not None:
            return lo
        return None

    expected_good = component_expectation(good_value)
    expected_faulty = component_expectation(faulty_value)
    if expected_good is None or expected_faulty is None:
        expected_good = expected_faulty = None  # X collapses both
    assert good_value(result) == expected_good
    assert faulty_value(result) == expected_faulty


def test_fold_and_is_d():
    assert fold(and5, [ONE, ONE, D]) == D
    assert is_d_value(D) and is_d_value(DBAR)
    assert not is_d_value(X) and not is_d_value(ONE)
