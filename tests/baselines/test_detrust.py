"""DeTrust transformation tests."""

import pytest

from repro.baselines import chunk_constants, split_comparator, wide_comparator
from repro.baselines.detrust import sequence_recognizer
from repro.errors import PropertyError
from repro.netlist import Circuit, validate
from repro.sim import SequentialSimulator


def test_chunk_constants():
    assert chunk_constants(0xABCD, 16, 4) == [0xD, 0xC, 0xB, 0xA]
    with pytest.raises(PropertyError):
        chunk_constants(0xAB, 8, 3)


def test_wide_comparator_semantics():
    c = Circuit("w")
    a = c.input("a", 8)
    y = wide_comparator(c, a, 0x3C)
    c.output("y", y)
    nl = c.finalize()
    sim = SequentialSimulator(nl)
    for value in (0x3C, 0x3D, 0x00, 0xFF):
        sim.set_input("a", value)
        sim.propagate()
        assert sim.output_value("y") == int(value == 0x3C)


def test_split_comparator_scans_chunks():
    c = Circuit("s")
    a = c.input("a", 16)
    rst = c.input("rst", 1)
    fired = split_comparator(
        c, a, 0xBEEF, chunk_bits=4, step=c.true(), reset=rst
    )
    c.output("fired", fired)
    nl = c.finalize()
    validate(nl)
    sim = SequentialSimulator(nl)
    sim.step({"rst": 1, "a": 0})
    sim.set_input("rst", 0)
    sim.set_input("a", 0xBEEF)
    for _ in range(4):
        assert sim.output_value("fired") == 0
        sim.step()
    sim.propagate()
    assert sim.output_value("fired") == 1


def test_split_comparator_rejects_mismatch():
    c = Circuit("s")
    a = c.input("a", 16)
    rst = c.input("rst", 1)
    fired = split_comparator(
        c, a, 0xBEEF, chunk_bits=4, step=c.true(), reset=rst
    )
    c.output("fired", fired)
    nl = c.finalize()
    sim = SequentialSimulator(nl)
    sim.step({"rst": 1, "a": 0})
    sim.set_input("rst", 0)
    sim.set_input("a", 0xBEEF ^ 0x10)  # wrong second nibble
    for _ in range(6):
        sim.step()
    sim.propagate()
    assert sim.output_value("fired") == 0


class TestSequenceRecognizer:
    def build(self):
        c = Circuit("seq")
        sym = c.input("sym", 4)
        step = c.input("step", 1)
        rst = c.input("rst", 1)
        matches = [sym.eq_const(v) for v in (1, 2, 3)]
        fired = sequence_recognizer(c, matches, step, rst)
        c.output("fired", fired)
        return c.finalize()

    def run(self, nl, symbols):
        sim = SequentialSimulator(nl)
        sim.step({"rst": 1, "sym": 0, "step": 0})
        sim.set_input("rst", 0)
        for s in symbols:
            sim.step({"sym": s, "step": 1})
        sim.propagate()
        return sim.output_value("fired")

    def test_exact_sequence_fires(self):
        assert self.run(self.build(), [1, 2, 3]) == 1

    def test_wrong_order_does_not(self):
        assert self.run(self.build(), [2, 1, 3]) == 0

    def test_interruption_restarts(self):
        assert self.run(self.build(), [1, 2, 9, 1, 2, 3]) == 1
        assert self.run(self.build(), [1, 2, 9, 2, 3]) == 0

    def test_fired_latches(self):
        nl = self.build()
        sim = SequentialSimulator(nl)
        sim.step({"rst": 1, "sym": 0, "step": 0})
        sim.set_input("rst", 0)
        for s in (1, 2, 3, 9, 9):
            sim.step({"sym": s, "step": 1})
        sim.propagate()
        assert sim.output_value("fired") == 1

    def test_non_step_cycles_hold(self):
        nl = self.build()
        sim = SequentialSimulator(nl)
        sim.step({"rst": 1, "sym": 0, "step": 0})
        sim.set_input("rst", 0)
        for s, st in ((1, 1), (7, 0), (2, 1), (7, 0), (3, 1)):
            sim.step({"sym": s, "step": st})
        sim.propagate()
        assert sim.output_value("fired") == 1
