"""FANCI tests: the DeTrust story in miniature — wide single-cycle triggers
are flagged, chunked multi-cycle triggers are not."""

from repro.baselines import Fanci, wide_comparator
from repro.netlist import Circuit

from tests.conftest import build_secret_design


def build_with_wide_trigger(width=32):
    """A design with a naive wide comparator feeding a payload mux."""
    c = Circuit("naive")
    data = c.input("data", width)
    load = c.input("load", 1)
    reg = c.reg("r", 8)
    trigger = wide_comparator(c, data, 0x5A5A5A5A & ((1 << width) - 1))
    reg.hold_unless((load, data[0:8]), (trigger, c.const(0xFF, 8)))
    c.output("y", reg.q)
    return c.finalize(), trigger.nets[0]


class TestControlValues:
    def test_xor_has_high_cv(self):
        c = Circuit("x")
        a = c.input("a", 1)
        b = c.input("b", 1)
        y = a ^ b
        c.output("y", y)
        nl = c.finalize()
        report = Fanci(nl, samples=128).analyze([y.nets[0]])
        score = report.scores[y.nets[0]]
        assert score.mean == 1.0  # every input always controls an XOR

    def test_wide_and_has_tiny_cv(self):
        nl, trigger_net = build_with_wide_trigger()
        report = Fanci(nl, samples=512).analyze([trigger_net])
        score = report.scores[trigger_net]
        assert score.mean < 0.01

    def test_small_comparator_cv_moderate(self):
        c = Circuit("cmp4")
        a = c.input("a", 4)
        y = a.eq_const(0x9)
        c.output("y", y)
        nl = c.finalize()
        report = Fanci(nl, samples=2048, threshold=2 ** -10).analyze(
            [y.nets[0]]
        )
        score = report.scores[y.nets[0]]
        # each input controls when the other 3 match: CV = 2^-3
        assert 0.05 < score.mean < 0.3
        assert not score.flagged(2 ** -10)
        assert not score.flagged(2 ** -10, use_median=True)


class TestDetection:
    def test_naive_trigger_flagged(self):
        nl, trigger_net = build_with_wide_trigger()
        report = Fanci(nl, samples=1024, threshold=2 ** -10).analyze()
        assert trigger_net in report.flagged_nets
        assert report.detects({trigger_net})

    def test_detrust_chunked_trigger_not_flagged(self):
        """MC8051-T800's nibble-matched trigger: every Trojan gate's
        control values stay far above the threshold."""
        from repro.designs.trojans import mc8051_t800

        nl, spec = mc8051_t800()
        report = Fanci(nl, samples=2048, threshold=2 ** -10).analyze()
        assert not report.detects(spec.trojan.trojan_nets)

    def test_clean_design_no_false_positives(self):
        nl = build_secret_design(trojan=False)
        report = Fanci(nl, samples=2048, threshold=2 ** -10).analyze()
        assert report.flagged_nets == []

    def test_summary(self):
        nl = build_secret_design(trojan=False)
        report = Fanci(nl, samples=64).analyze()
        assert "FANCI" in report.summary()


def test_cone_truncation_bounds_work():
    nl, trigger_net = build_with_wide_trigger(width=32)
    analyzer = Fanci(nl, max_cone_cells=4, samples=64)
    report = analyzer.analyze([trigger_net])
    # truncated cone still yields a score (frontier nets as pseudo-inputs)
    assert trigger_net in report.scores
