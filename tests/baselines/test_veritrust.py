"""VeriTrust tests: dormant-pin analysis under random activation."""

from repro.baselines import VeriTrust, wide_comparator
from repro.netlist import Circuit

from tests.conftest import build_secret_design


def test_xor_pins_always_influence():
    c = Circuit("x")
    a = c.input("a", 4)
    b = c.input("b", 4)
    c.output("y", a ^ b)
    nl = c.finalize()
    report = VeriTrust(nl, cycles=8, lanes=32).analyze()
    assert report.dormant == []


def test_wide_trigger_gate_is_dormant():
    c = Circuit("naive")
    data = c.input("data", 32)
    load = c.input("load", 1)
    reg = c.reg("r", 8)
    trigger = wide_comparator(c, data, 0x13371337)
    reg.hold_unless((load, data[0:8]), (trigger, c.const(0xFF, 8)))
    c.output("y", reg.q)
    nl = c.finalize()
    report = VeriTrust(nl, cycles=32, lanes=64, suspects=10).analyze()
    # the payload mux select (driven by the never-firing trigger) tops the
    # dormancy ranking
    assert report.detects({trigger.nets[0]} | set(
        cell.output for cell in nl.cells if trigger.nets[0] in cell.inputs
    ))


def test_detrust_trojan_not_in_top_suspects():
    """MC8051-T800 (a genuinely DeTrust-shaped Trojan): its nibble-FSM
    wires either activate under random traffic (not dormant) or hide among
    ordinary rarely-influencing decode logic — either way it stays out of
    a realistic inspection budget."""
    from repro.designs.trojans import mc8051_t800

    nl, spec = mc8051_t800()
    report = VeriTrust(nl, cycles=48, lanes=64, suspects=10).analyze()
    assert not report.detects(spec.trojan.trojan_nets)


def test_semi_naive_toy_is_caught():
    """The conftest toy's 9-bit single-cycle arming condition is exactly
    what VeriTrust *can* catch — a sanity check that the analysis has
    teeth."""
    nl = build_secret_design(trojan=True)
    counter_nets = set(nl.register_q_nets("troj_counter"))
    trojan_cone = set(counter_nets)
    for cell in nl.cells:
        if counter_nets & set(cell.inputs):
            trojan_cone.add(cell.output)
    report = VeriTrust(nl, cycles=64, lanes=64, suspects=3).analyze()
    assert report.detects(trojan_cone)


def test_report_shape():
    nl = build_secret_design(trojan=False)
    report = VeriTrust(nl, cycles=16, lanes=32).analyze()
    assert report.cycles == 16 * 32
    assert report.ranked
    assert "VeriTrust" in report.summary()
    first = report.ranked[0]
    assert first.rate <= report.ranked[-1].rate


def test_explicit_stimulus():
    nl = build_secret_design(trojan=False)
    stim = [
        {"reset": 0, "load": 1, "key_in": 0xAA},
        {"reset": 0, "load": 0, "key_in": 0x00},
    ]
    report = VeriTrust(nl, cycles=8, stimulus=stim, lanes=1).analyze()
    assert report.cycles == 8
