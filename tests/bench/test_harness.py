"""Bench harness tests."""

from repro.bench import (
    baseline_run,
    detection_run,
    fmt_bool,
    fmt_memory,
    fmt_seconds,
    max_bound_within_budget,
    render_table,
)
from repro.properties import DesignSpec
from repro.properties.monitors import build_corruption_monitor

from tests.conftest import build_secret_design, secret_spec


def design_and_spec(trojan=True):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(name="toy", critical={"secret": secret_spec()})
    return netlist, spec


class TestDetectionRun:
    def test_detects_and_confirms(self):
        netlist, spec = design_and_spec()
        row = detection_run(
            "toy", netlist, spec, "secret", "bmc", 15, time_budget=30
        )
        assert row.detected and row.confirmed
        assert row.verdict == "Yes"
        assert row.peak_memory > 0

    def test_clean_is_na(self):
        netlist, spec = design_and_spec(trojan=False)
        row = detection_run(
            "toy", netlist, spec, "secret", "bmc", 8, time_budget=30
        )
        assert not row.detected
        assert row.verdict == "N/A"

    def test_supervised_run_same_verdict(self):
        from repro.runner import CheckRunner

        netlist, spec = design_and_spec()
        row = detection_run(
            "toy", netlist, spec, "secret", "bmc", 15, time_budget=30,
            runner=CheckRunner(), measure_memory=False,
        )
        assert row.detected and row.confirmed
        assert row.extra["outcome"].ok

    def test_supervised_crash_yields_row_not_exception(self):
        from repro.runner import CheckRunner, FaultInjector

        netlist, spec = design_and_spec()
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.crash_on("toy:bmc"),
        )
        row = detection_run(
            "toy", netlist, spec, "secret", "bmc", 15, time_budget=30,
            runner=runner,
        )
        assert not row.detected
        assert row.status == "crashed"
        assert row.verdict == "crashed"
        assert not row.extra["outcome"].ok


class TestCachedDetectionRun:
    def test_cold_then_warm_rows(self, tmp_path):
        from repro.runner import CheckRunner

        netlist, spec = design_and_spec()
        runner = CheckRunner()
        kwargs = dict(
            time_budget=30, runner=runner, measure_memory=False,
            cache_dir=str(tmp_path),
        )
        cold = detection_run("toy", netlist, spec, "secret", "bmc", 15,
                             **kwargs)
        assert cold.detected and cold.confirmed
        assert cold.extra["cache"] == "miss"
        warm = detection_run("toy", netlist, spec, "secret", "bmc", 15,
                             **kwargs)
        assert warm.detected and warm.confirmed  # witness replayed + confirmed
        assert warm.extra["cache"] == "hit"
        assert warm.extra["cache_saved"] > 0
        assert runner.cache_counters == {
            "hits": 1, "partial_hits": 0, "misses": 1, "stores": 0,
        }

    def test_no_cache_dir_records_no_disposition(self):
        from repro.runner import CheckRunner

        netlist, spec = design_and_spec()
        row = detection_run(
            "toy", netlist, spec, "secret", "bmc", 15, time_budget=30,
            runner=CheckRunner(), measure_memory=False,
        )
        assert "cache" not in row.extra


class TestDepthRamp:
    def test_continues_past_detection(self):
        netlist, spec = design_and_spec()
        monitor = build_corruption_monitor(netlist, secret_spec())
        bound, elapsed = max_bound_within_budget(
            monitor.netlist, monitor.objective_net, "bmc", 2.0,
            pinned_inputs=spec.pinned_inputs,
        )
        # the Trojan fires at bound 7; the ramp must push well past it
        assert bound > 7
        assert elapsed <= 3.0


class TestDiffSweep:
    def test_diff_run_condenses_the_report(self):
        from repro.bench.harness import diff_run

        netlist, spec = design_and_spec()
        row = diff_run("toy", netlist, spec)
        assert row.flagged
        assert row.divergent_registers == ["secret"]
        assert row.suspicious == row.findings >= 1
        assert row.solver_calls == 0
        assert row.lanes > 0 and row.cycles > 0

    def test_audit_sweep_fuses_the_diff_screen(self):
        from repro.bench.harness import audit_sweep

        netlist, spec = design_and_spec()
        clean_netlist, clean_spec = design_and_spec(trojan=False)
        rows = audit_sweep(
            [("toy", netlist, spec),
             ("toy-clean", clean_netlist, clean_spec)],
            max_cycles=2, time_budget=30, diff=True,
        )
        trojaned, clean = rows
        assert trojaned.diff is not None and trojaned.diff.flagged
        assert trojaned.report.differential_suspects == ["secret"]
        assert clean.diff is not None and not clean.diff.flagged
        assert clean.report.differential_suspects == []

    def test_sweep_without_diff_leaves_rows_bare(self):
        from repro.bench.harness import audit_sweep

        netlist, spec = design_and_spec()
        (row,) = audit_sweep(
            [("toy", netlist, spec)], max_cycles=2, time_budget=30,
        )
        assert row.diff is None


class TestBaselineRun:
    def test_runs_and_scores(self):
        netlist, spec = design_and_spec()
        trojan_nets = set(netlist.register_q_nets("troj_counter"))
        row = baseline_run(
            "toy", netlist, trojan_nets,
            fanci_samples=256, veritrust_cycles=8, veritrust_lanes=16,
        )
        assert row.elapsed > 0
        assert isinstance(row.fanci_detected, bool)


class TestTables:
    def test_render_table(self):
        text = render_table(
            ["a", "bb"], [["1", "2"], ["333"]], title="T"
        )
        assert "T" in text
        assert "| 333" in text
        assert text.count("+-") >= 3

    def test_formatters(self):
        assert fmt_seconds(None) == "-"
        assert fmt_seconds(0.001) == "<0.01"
        assert fmt_seconds(1.5) == "1.50"
        assert fmt_memory(0) == "-"
        assert fmt_memory(2 * 1024 * 1024) == "2.0 MB"
        assert "GB" in fmt_memory(3 * 1024 ** 3)
        assert fmt_bool(True) == "Yes"
