"""ASCII plot helper tests."""

from repro.bench.plot import bar_chart, series_compare, sparkline


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 4])
    assert len(line) == 4
    assert line[-1] == "█"
    assert line[0] != line[-1]


def test_sparkline_degenerate():
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "▁▁"


def test_bar_chart():
    text = bar_chart([("bmc", 10), ("atpg", 30)], width=10, title="depth")
    assert text.startswith("depth")
    lines = text.splitlines()[1:]
    assert lines[1].count("#") > lines[0].count("#")
    assert "30" in lines[1]


def test_series_compare():
    text = series_compare({"a": [1, 2, 3], "bb": [3, 2, 1]}, title="ramp")
    assert "ramp" in text
    assert "a " in text and "bb" in text
    assert "max=3" in text
