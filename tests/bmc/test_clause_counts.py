"""BmcResult clause accounting: total = problem + learnt, split fields.

Regression for the cumulative-clause bug: ``total_clauses`` documented
itself as "cumulative clause count" but reported only the problem
clauses, silently dropping the learnt database.
"""

from repro.bmc import BmcEngine
from repro.bmc.group import MultiObjectiveBmc
from repro.netlist import Circuit

from tests.conftest import build_counter


def counter_reaches(value, width=4):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    objective = c.bv(nl.register_q_nets("count")).eq_const(value)
    return nl, objective.nets[0]


class TestEngineCounts:
    def test_total_is_problem_plus_learnt(self):
        nl, obj = counter_reaches(9)
        engine = BmcEngine(nl, obj)
        result = engine.check(8)
        assert result.total_problem_clauses == len(engine.solver.clauses)
        assert result.total_learnt_clauses == len(engine.solver.learnts)
        assert result.total_clauses == (
            result.total_problem_clauses + result.total_learnt_clauses
        )

    def test_learnt_clauses_counted_when_search_conflicts(self):
        # A deep proof on a wider counter forces conflicts, so the learnt
        # database is non-empty and total must exceed the problem count.
        nl, obj = counter_reaches(63, width=6)
        engine = BmcEngine(nl, obj)
        result = engine.check(20)
        assert engine.solver.stats.learned_clauses > 0
        assert result.total_learnt_clauses > 0
        assert result.total_clauses > result.total_problem_clauses


class TestGroupCounts:
    def test_group_results_share_solver_totals(self):
        nl = build_counter(4)
        c = Circuit.attach(nl)
        bits = nl.register_q_nets("count")
        objectives = [
            c.bv(bits).eq_const(9).nets[0],
            c.bv(bits).eq_const(12).nets[0],
        ]
        results = MultiObjectiveBmc(nl, objectives).check_all(8)
        for result in results:
            assert result.total_clauses == (
                result.total_problem_clauses + result.total_learnt_clauses
            )
            assert result.total_problem_clauses > 0
