"""BMC engine tests against exhaustively-known small FSMs."""

from repro.netlist import Circuit
from repro.bmc import BmcEngine, confirms_violation

from tests.conftest import build_counter


def counter_reaches(value, width=4):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    objective = c.bv(nl.register_q_nets("count")).eq_const(value)
    return nl, objective.nets[0]


class TestBounds:
    def test_exact_violation_bound(self):
        # count == 7 observable at frame 7, i.e. bound 8 (value + 1)
        nl, obj = counter_reaches(7)
        result = BmcEngine(nl, obj).check(10)
        assert result.status == "violated"
        assert result.bound == 8

    def test_proved_below_reachability(self):
        nl, obj = counter_reaches(9)
        result = BmcEngine(nl, obj).check(8)
        assert result.status == "proved"
        assert result.bound == 8

    def test_witness_replays(self):
        nl, obj = counter_reaches(5)
        result = BmcEngine(nl, obj).check(8)
        assert confirms_violation(nl, result.witness, obj)
        assert len(result.witness.inputs) == 6
        assert all(
            frame["en"] == 1 for frame in result.witness.inputs[:5]
        )

    def test_incremental_reuse(self):
        nl, obj = counter_reaches(6)
        engine = BmcEngine(nl, obj)
        first = engine.check(3)
        assert first.status == "proved"
        second = engine.check(10, start_cycle=4)
        assert second.status == "violated"
        assert second.bound == 7

    def test_time_budget_unknown(self):
        nl, obj = counter_reaches(15, width=4)
        result = BmcEngine(nl, obj).check(200, time_budget=0.0)
        assert result.status == "unknown"

    def test_stats_populated(self):
        nl, obj = counter_reaches(3)
        result = BmcEngine(nl, obj).check(5, measure_memory=True)
        assert result.variables > 0
        assert result.clauses > 0
        assert result.peak_memory > 0
        assert result.cone[0] > 0
        assert "violated" in result.summary()


class TestPinnedInputs:
    def test_pinned_enable_blocks_counting(self):
        nl, obj = counter_reaches(2)
        result = BmcEngine(nl, obj, pinned_inputs={"en": 0}).check(10)
        assert result.status == "proved"

    def test_pinned_enable_forces_counting(self):
        nl, obj = counter_reaches(2)
        result = BmcEngine(nl, obj, pinned_inputs={"en": 1}).check(10)
        assert result.status == "violated"
        assert result.bound == 3


def test_check_objective_wrapper():
    from repro.bmc import check_objective

    nl, obj = counter_reaches(2)
    result = check_objective(nl, obj, 5, property_name="count2")
    assert result.detected
    assert result.property_name == "count2"
