"""Shared-cone BMC: grouped verdicts must match single-engine verdicts."""

from __future__ import annotations

import pytest

from repro.bmc import (
    BmcEngine,
    MultiObjectiveBmc,
    confirms_violation,
    group_objectives_by_cone,
)
from repro.errors import ReproError
from repro.netlist import Circuit
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)
from tests.conftest import build_secret_design, secret_spec


def two_counter_objectives(width=4):
    """One netlist, two independent counters, one objective each."""
    c = Circuit("two_counters")
    en_a = c.input("en_a", 1)
    en_b = c.input("en_b", 1)
    a = c.reg("a", width)
    a.hold_unless((en_a, a.q + 1))
    b = c.reg("b", width)
    b.hold_unless((en_b, b.q + 1))
    c.output("out", a.q ^ b.q)
    netlist = c.finalize()
    circuit = Circuit.attach(netlist)
    obj_a = circuit.bv(netlist.register_q_nets("a")).eq_const(9).nets[0]
    obj_b = circuit.bv(netlist.register_q_nets("b")).eq_const(3).nets[0]
    return netlist, obj_a, obj_b


def stacked_secret_monitors(trojan=False):
    netlist = build_secret_design(trojan=trojan, pseudo=True)
    spec = secret_spec()
    base = netlist.clone()
    tracking = build_tracking_monitor(
        netlist, spec, "pseudo_secret", direction="after", into=base
    )
    corruption = build_corruption_monitor(netlist, spec, into=base)
    assert tracking.netlist is base and corruption.netlist is base
    return base, tracking, corruption


# ------------------------------------------------------------- grouping


def test_overlapping_cones_group_together():
    base, tracking, corruption = stacked_secret_monitors()
    groups = group_objectives_by_cone(
        base, [tracking.objective_net, corruption.objective_net]
    )
    assert groups == [[0, 1]]


def test_disjoint_cones_stay_separate():
    netlist, obj_a, obj_b = two_counter_objectives()
    assert group_objectives_by_cone(netlist, [obj_a, obj_b]) == [[0], [1]]


# ------------------------------------------------------------- verdicts


def test_grouped_verdicts_match_single_engine():
    base, tracking, corruption = stacked_secret_monitors()
    nets = [tracking.objective_net, corruption.objective_net]
    grouped = MultiObjectiveBmc(
        base, nets,
        property_names=[tracking.property_name, corruption.property_name],
    ).check_all(8)
    for net, name, result in zip(
        nets, [tracking.property_name, corruption.property_name], grouped
    ):
        single = BmcEngine(base, net, property_name=name).check(8)
        assert result.status == single.status == "proved"
        assert result.bound == single.bound == 8


def test_grouped_violation_decodes_replayable_witness():
    netlist = build_secret_design(trojan=True, pseudo=True)
    spec = secret_spec()
    base = netlist.clone()
    corruption = build_corruption_monitor(netlist, spec, into=base)
    tracking = build_tracking_monitor(
        netlist, spec, "pseudo_secret", direction="after", into=base
    )
    results = MultiObjectiveBmc(
        base,
        [corruption.objective_net, tracking.objective_net],
        property_names=[corruption.property_name, tracking.property_name],
    ).check_all(10)
    violated = results[0]
    assert violated.status == "violated"
    assert confirms_violation(
        base, violated.witness, corruption.violation_net
    )
    # a violation of one objective must not leak into the other
    assert results[1].status in ("proved", "violated", "unknown")
    single = BmcEngine(base, tracking.objective_net).check(10)
    assert results[1].status == single.status


def test_per_objective_bounds():
    netlist, obj_a, obj_b = two_counter_objectives()
    results = MultiObjectiveBmc(netlist, [obj_a, obj_b]).check_all([6, 2])
    assert results[0].status == "proved" and results[0].bound == 6
    assert results[1].status == "proved" and results[1].bound == 2
    assert len(results[0].per_bound_elapsed) == 6
    assert len(results[1].per_bound_elapsed) == 2


def test_shared_encoding_is_paid_once():
    base, tracking, corruption = stacked_secret_monitors()
    nets = [tracking.objective_net, corruption.objective_net]
    grouped = MultiObjectiveBmc(base, nets).check_all(6)
    separate = sum(
        BmcEngine(base, net).check(6).variables for net in nets
    )
    # both grouped results report the same (shared) encoding growth, and
    # it is strictly smaller than the sum of two separate unrollings
    assert grouped[0].variables == grouped[1].variables
    assert grouped[0].variables < separate


# ------------------------------------------------------------ edge cases


def test_vacuous_ranges_are_unknown():
    netlist, obj_a, obj_b = two_counter_objectives()
    multi = MultiObjectiveBmc(netlist, [obj_a, obj_b])
    assert [r.status for r in multi.check_all(0)] == ["unknown", "unknown"]
    mixed = multi.check_all([4, 0])
    assert (mixed[0].status, mixed[0].bound) == ("proved", 4)
    assert (mixed[1].status, mixed[1].bound) == ("unknown", 0)


def test_expired_budget_yields_unknown_not_proved():
    base, tracking, corruption = stacked_secret_monitors()
    results = MultiObjectiveBmc(
        base, [tracking.objective_net, corruption.objective_net]
    ).check_all(8, time_budget=0.0)
    assert [r.status for r in results] == ["unknown", "unknown"]
    assert [r.bound for r in results] == [0, 0]


def test_constructor_validation():
    netlist, obj_a, _obj_b = two_counter_objectives()
    with pytest.raises(ReproError):
        MultiObjectiveBmc(netlist, [])
    with pytest.raises(ReproError):
        MultiObjectiveBmc(netlist, [obj_a], property_names=["a", "b"])
    with pytest.raises(ReproError):
        MultiObjectiveBmc(netlist, [obj_a]).check_all([1, 2])
