"""k-induction tests: unbounded certification beyond the paper's bounded
guarantee."""

from repro.bmc.induction import prove_by_induction
from repro.properties.monitors import build_corruption_monitor

from tests.conftest import build_secret_design, secret_spec


def test_clean_design_proved_forever():
    netlist = build_secret_design(trojan=False)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=4,
        property_name="secret-forever",
    )
    assert result.proved_forever
    assert result.k <= 2
    assert "proved-unbounded" in result.summary()


def test_trojan_found_in_base_case():
    netlist = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=12
    )
    assert result.status == "violated"
    assert result.witness is not None
    from repro.bmc.witness import confirms_violation

    assert confirms_violation(
        monitor.netlist, result.witness, monitor.violation_net
    )


def test_budget_exhaustion_is_unknown():
    netlist = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=12, time_budget=0.0
    )
    assert result.status == "unknown"


def test_true_but_non_inductive_property_is_unknown():
    # a mod-10 counter never shows 15, but the step formula may start in
    # the unreachable state 14 and count to 15 — k-induction (without
    # reachability strengthening) cannot close the proof
    from repro.netlist import Circuit

    c = Circuit("mod10")
    enable = c.input("en", 1)
    count = c.reg("count", 4)
    wrapped = c.mux(count.q.eq_const(9), count.q + 1, c.const(0, 4))
    count.hold_unless((enable, wrapped))
    c.output("v", count.q)
    nl = c.finalize()
    cc = Circuit.attach(nl)
    objective = cc.bv(nl.register_q_nets("count")).eq_const(15)
    result = prove_by_induction(nl, objective.nets[0], max_k=3)
    assert result.status == "unknown"
    assert result.k == 3


def test_risc_stack_pointer_unbounded():
    """The headline extension: the clean RISC stack pointer is certified
    for ALL cycles — no periodic reset needed (contrast Section 3.2)."""
    from repro.designs import build_risc

    netlist, spec = build_risc()
    monitor = build_corruption_monitor(
        netlist, spec.critical["stack_pointer"], functional=False
    )
    result = prove_by_induction(
        monitor.netlist,
        monitor.violation_net,
        max_k=3,
        time_budget=60,
        pinned_inputs=spec.pinned_inputs,
        property_name="risc-sp-forever",
    )
    assert result.proved_forever
