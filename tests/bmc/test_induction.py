"""k-induction tests: unbounded certification beyond the paper's bounded
guarantee."""

from repro.bmc.induction import prove_by_induction
from repro.properties.monitors import build_corruption_monitor

from tests.conftest import build_secret_design, secret_spec


def test_clean_design_proved_forever():
    netlist = build_secret_design(trojan=False)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=4,
        property_name="secret-forever",
    )
    assert result.proved_forever
    assert result.k <= 2
    assert "proved-unbounded" in result.summary()


def test_trojan_found_in_base_case():
    netlist = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=12
    )
    assert result.status == "violated"
    assert result.witness is not None
    from repro.bmc.witness import confirms_violation

    assert confirms_violation(
        monitor.netlist, result.witness, monitor.violation_net
    )


def test_budget_exhaustion_is_unknown():
    netlist = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(netlist, secret_spec())
    result = prove_by_induction(
        monitor.netlist, monitor.violation_net, max_k=12, time_budget=0.0
    )
    assert result.status == "unknown"


def test_true_but_non_inductive_property_is_unknown():
    # a mod-10 counter never shows 15, but the step formula may start in
    # the unreachable state 14 and count to 15 — k-induction (without
    # reachability strengthening) cannot close the proof
    from repro.netlist import Circuit

    c = Circuit("mod10")
    enable = c.input("en", 1)
    count = c.reg("count", 4)
    wrapped = c.mux(count.q.eq_const(9), count.q + 1, c.const(0, 4))
    count.hold_unless((enable, wrapped))
    c.output("v", count.q)
    nl = c.finalize()
    cc = Circuit.attach(nl)
    objective = cc.bv(nl.register_q_nets("count")).eq_const(15)
    result = prove_by_induction(nl, objective.nets[0], max_k=3)
    assert result.status == "unknown"
    assert result.k == 3


def test_risc_stack_pointer_unbounded():
    """The headline extension: the clean RISC stack pointer is certified
    for ALL cycles — no periodic reset needed (contrast Section 3.2)."""
    from repro.designs import build_risc

    netlist, spec = build_risc()
    monitor = build_corruption_monitor(
        netlist, spec.critical["stack_pointer"], functional=False
    )
    result = prove_by_induction(
        monitor.netlist,
        monitor.violation_net,
        max_k=3,
        time_budget=60,
        pinned_inputs=spec.pinned_inputs,
        property_name="risc-sp-forever",
    )
    assert result.proved_forever


def _shift_chain(n):
    """n-stage shift register fed by constant 0: the last stage's
    "violation" is true-but-only-n-inductive, so k-induction must deepen
    to exactly k=n before the step closes."""
    from repro.netlist import Circuit

    c = Circuit("shift{}".format(n))
    regs = [c.reg("s{}".format(i), 1) for i in range(n)]
    regs[0].drive(c.const(0, 1))
    for i in range(1, n):
        regs[i].drive(regs[i - 1].q)
    c.output("v", regs[-1].q)
    nl = c.finalize()
    return nl, nl.register_q_nets("s{}".format(n - 1))[0]


def test_step_clause_growth_is_linear_in_k(monkeypatch):
    """Each frame's ¬violation constraint is added to the step solver
    exactly once across the whole deepening loop (regression: it used to
    be re-added for frames 0..k-1 at every k, i.e. k(k+1)/2 times)."""
    import repro.bmc.induction as ind
    from repro.sat.solver import Solver

    created = []

    class CountingSolver(Solver):
        def __init__(self, **kwargs):
            super().__init__(**kwargs)
            self.unit_adds = 0

        def add_clause(self, literals):
            literals = list(literals)
            if len(literals) == 1:
                self.unit_adds += 1
            return super().add_clause(literals)

    def counting_factory(**kwargs):
        solver = CountingSolver(**kwargs)
        created.append(solver)
        return solver

    monkeypatch.setattr(ind, "default_solver", counting_factory)
    netlist, objective = _shift_chain(5)
    result = ind.prove_by_induction(netlist, objective, max_k=8)
    assert result.proved_forever
    assert result.k == 5
    (step_solver,) = created
    # one unit for the unroller's constant-true literal, then exactly one
    # step constraint per frame 0..k-1 — linear, not quadratic
    assert step_solver.unit_adds == 1 + result.k


def test_exhausted_budget_bails_before_any_solving(monkeypatch):
    """A budget that is already spent must return unknown immediately —
    not proceed with clamped 1ms slices (regression: remaining() used to
    floor at 0.001s, so 'out of time' never stopped the loop)."""
    import types

    import repro.bmc.induction as ind

    class Clock:
        def __init__(self, step):
            self.now = 0.0
            self.step = step

        def perf_counter(self):
            self.now += self.step
            return self.now

    class ForbiddenEngine:
        def __init__(self, *args, **kwargs):
            pass

        def check(self, *args, **kwargs):
            raise AssertionError("base BMC ran despite exhausted budget")

    # every clock read advances 0.6s against a 0.4s budget: exhausted at
    # the first top-of-loop check
    clock = Clock(0.6)
    monkeypatch.setattr(
        ind, "time", types.SimpleNamespace(perf_counter=clock.perf_counter)
    )
    monkeypatch.setattr(ind, "BmcEngine", ForbiddenEngine)
    netlist, objective = _shift_chain(3)
    result = ind.prove_by_induction(
        netlist, objective, max_k=8, time_budget=0.4
    )
    assert result.status == "unknown"
    assert result.k == 1


def test_budget_expiry_mid_loop_stops_deepening(monkeypatch):
    """The loop re-checks the remaining budget before each step solve and
    stops deepening the moment it goes negative."""
    import types

    import repro.bmc.induction as ind
    from repro.sat.solver import Solver

    class Clock:
        def __init__(self, step):
            self.now = 0.0
            self.step = step

        def perf_counter(self):
            self.now += self.step
            return self.now

    created = []

    class CountingSolver(Solver):
        def __init__(self, **kwargs):
            super().__init__(**kwargs)
            self.solve_calls = 0

        def solve(self, **kwargs):
            self.solve_calls += 1
            return super().solve(**kwargs)

    def counting_factory(**kwargs):
        solver = CountingSolver(**kwargs)
        created.append(solver)
        return solver

    monkeypatch.setattr(ind, "default_solver", counting_factory)
    # 0.3s per clock read, 1.0s budget: k=1 fits (step solve #1, SAT —
    # the chain needs k=5), then the budget runs out during k=2
    clock = Clock(0.3)
    monkeypatch.setattr(
        ind, "time", types.SimpleNamespace(perf_counter=clock.perf_counter)
    )
    netlist, objective = _shift_chain(5)
    result = ind.prove_by_induction(
        netlist, objective, max_k=8, time_budget=1.0
    )
    assert result.status == "unknown"
    assert result.k == 2
    (step_solver,) = created
    assert step_solver.solve_calls == 1
