"""Persistent solver sessions: identity and accounting guarantees.

A :class:`~repro.bmc.session.SolverSession` keeps one solver and one
unrolling alive across all of a register's checks. These tests pin the
contract that makes that reuse safe to ship: verdicts, bounds, witnesses
and cache fingerprints are *identical* with and without sessions — the
session is purely an execution hint — and per-check solver statistics
remain attributable even when one solver serves several properties.
"""

import json

import pytest

from repro.bmc.session import SolverSession
from repro.core import AuditConfig, TrojanDetector
from repro.core.report import scrub_volatile
from repro.properties import DesignSpec
from repro.properties.monitors import build_corruption_monitor

from tests.conftest import build_secret_design, secret_spec


def _design(trojan):
    netlist = build_secret_design(trojan=trojan)
    return netlist, DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )


def _scrubbed(netlist, spec, **config_kwargs):
    det = TrojanDetector(
        netlist, spec, config=AuditConfig(**config_kwargs)
    )
    report = det.run()
    return json.dumps(scrub_volatile(report.to_dict()), sort_keys=True)


class TestReportIdentity:
    @pytest.mark.parametrize("trojan", [False, True])
    def test_fresh_vs_session_reports_byte_identical(self, trojan):
        cold = _scrubbed(*_design(trojan), sessions=False)
        warm = _scrubbed(*_design(trojan), sessions=True)
        assert cold == warm

    def test_one_worker_vs_many_workers_byte_identical(self):
        # jobs=1 and jobs=N both execute in worker processes (sessions
        # stay supervisor-side), so their scrubbed reports must match to
        # the byte — including the runner's mode metadata.
        one = _scrubbed(*_design(True), jobs=1)
        many = _scrubbed(*_design(True), jobs=3)
        assert one == many

    def test_serial_session_vs_worker_pool_same_verdicts(self):
        # serial (inline, session-backed) vs pooled (process, fresh
        # engines): identical up to the runner's execution-mode tag
        serial = _scrubbed(*_design(True)).replace('"inline"', '"X"')
        pooled = _scrubbed(*_design(True), jobs=2).replace('"process"', '"X"')
        assert serial == pooled


class TestCacheParity:
    def test_warm_session_hits_cold_engine_cache(self, tmp_path):
        """Fresh engines populate the cache; a session run against the
        same directory must compute the very same fingerprints — every
        check a hit, no new entries — because fingerprints hash what is
        checked, never the solver state it is checked with."""
        cache_dir = str(tmp_path / "audit-cache")
        _scrubbed(*_design(True), sessions=False, cache_dir=cache_dir)
        entries_after_cold = sorted(
            p.name for p in (tmp_path / "audit-cache").rglob("*")
            if p.is_file()
        )
        fresh_hits = _scrubbed(
            *_design(True), sessions=False, cache_dir=cache_dir
        )
        session_hits = _scrubbed(
            *_design(True), sessions=True, cache_dir=cache_dir
        )
        entries_after_warm = sorted(
            p.name for p in (tmp_path / "audit-cache").rglob("*")
            if p.is_file()
        )
        # all-hit runs are byte-identical whichever engine kind runs them
        assert fresh_hits == session_hits
        assert '"cache": "hit"' in session_hits
        assert '"cache": "miss"' not in session_hits
        # no session-run fingerprint missed (a miss would write an entry)
        assert entries_after_cold == entries_after_warm


class TestStatAttribution:
    def test_one_solver_three_properties_deltas_sum(self):
        """Per-check stat deltas must partition the shared solver's
        totals when one session serves several properties."""
        base = build_secret_design(trojan=True)
        spec = secret_spec()
        session = SolverSession(base.clone(), use_induction=False)
        results = []
        for functional, way_delay in ((False, 1), (True, 1), (False, 2)):
            monitor = build_corruption_monitor(
                base, spec, functional=functional, way_delay=way_delay,
                into=session.netlist,
            )
            live = session.objective(
                monitor.objective_net,
                violation_net=monitor.violation_net,
                property_name=monitor.property_name,
            )
            results.append(live.check(max_cycles=20))
        assert session.checks_served == 3
        # the shared solver's cumulative counters equal the sum of the
        # per-check deltas — nothing double-counted, nothing lost
        totals = session.solver.stats
        assert sum(r.conflicts for r in results) == totals.conflicts
        assert sum(r.decisions for r in results) == totals.decisions
        assert sum(r.variables for r in results) == session.solver.num_vars
        # cumulative totals are monotone across the serving order
        assert results[0].total_variables <= results[1].total_variables
        assert results[1].total_variables <= results[2].total_variables
        assert results[2].total_variables == session.solver.num_vars

    def test_session_verdicts_match_fresh_engines(self):
        """Check-level ground truth: each property's status/bound/witness
        from the shared session equals a cold single-property engine."""
        from repro.bmc.engine import BmcEngine

        base = build_secret_design(trojan=True)
        spec = secret_spec()
        session = SolverSession(base.clone(), use_induction=False)
        for functional in (False, True):
            stacked = build_corruption_monitor(
                base, spec, functional=functional, into=session.netlist
            )
            live = session.objective(
                stacked.objective_net,
                violation_net=stacked.violation_net,
                property_name=stacked.property_name,
            )
            warm = live.check(max_cycles=20)
            standalone = build_corruption_monitor(
                base, spec, functional=functional
            )
            cold = BmcEngine(
                standalone.netlist,
                standalone.objective_net,
                property_name=standalone.property_name,
            ).check(20)
            assert warm.status == cold.status
            assert warm.bound == cold.bound
            if cold.witness is None:
                assert warm.witness is None
            else:
                assert warm.witness.inputs == cold.witness.inputs
