"""Unroller tests: frame mapping, COI restriction, pinned inputs."""

import pytest

from repro.errors import EncodingError
from repro.sat import SAT, Solver
from repro.bmc import Unroller

from tests.conftest import build_counter, build_secret_design


def test_flop_aliases_previous_frame():
    nl = build_counter(2)
    solver = Solver()
    unroller = Unroller(nl, solver, [nl.flops[0].q])
    unroller.extend_to(3)
    q = nl.flops[0].q
    d = nl.flops[0].d
    assert unroller.lit(q, 1) == unroller.lit(d, 0)
    assert unroller.lit(q, 2) == unroller.lit(d, 1)


def test_frame_zero_is_reset_state():
    nl = build_counter(2)
    solver = Solver()
    unroller = Unroller(nl, solver, [nl.flops[0].q])
    unroller.extend_to(1)
    # init 0 -> q at frame 0 is the false literal
    assert unroller.lit(nl.flops[0].q, 0) == -unroller.true_lit


def test_coi_excludes_unrelated_logic():
    nl = build_secret_design(trojan=True)
    solver = Solver()
    # the trojan counter's cone excludes the secret register
    counter_q = nl.register_q_nets("troj_counter")
    unroller = Unroller(nl, solver, counter_q)
    cells, flops, _inputs = unroller.cone_size
    assert flops < len(nl.flops)
    assert cells < len(nl.cells)


def test_no_coi_covers_everything():
    nl = build_secret_design(trojan=True)
    solver = Solver()
    unroller = Unroller(nl, solver, [0], use_coi=False)
    cells, flops, inputs = unroller.cone_size
    assert cells == len(nl.cells)
    assert flops == len(nl.flops)
    assert inputs == sum(len(v) for v in nl.inputs.values())


def test_missing_frame_rejected():
    nl = build_counter(2)
    unroller = Unroller(nl, Solver(), [nl.flops[0].q])
    unroller.extend_to(1)
    with pytest.raises(EncodingError):
        unroller.lit(nl.flops[0].q, 5)


def test_pinned_inputs_are_constants():
    nl = build_secret_design(trojan=False)
    solver = Solver()
    secret_q = nl.register_q_nets("secret")
    unroller = Unroller(nl, solver, secret_q, pinned_inputs={"reset": 1})
    unroller.extend_to(2)
    reset_net = nl.inputs["reset"][0]
    assert unroller.lit(reset_net, 0) == unroller.true_lit
    assert unroller.lit(reset_net, 1) == unroller.true_lit


def test_input_assignment_decodes_model():
    nl = build_counter(3)
    solver = Solver()
    count_q = nl.register_q_nets("count")
    unroller = Unroller(nl, solver, count_q)
    unroller.extend_to(4)
    # force count == 3 at frame 3: en must be 1 in frames 0..2
    target = 3
    assumptions = []
    for bit, net in enumerate(count_q):
        lit = unroller.lit(net, 3)
        assumptions.append(lit if (target >> bit) & 1 else -lit)
    result = solver.solve(assumptions=assumptions)
    assert result.status == SAT
    frames = unroller.input_assignment(result.model, 3)
    assert all(frame["en"] == 1 for frame in frames)
