"""No engine may ever return a vacuous ``proved``.

A bound range that never runs a single solve — ``max_cycles=0``,
``start_cycle > max_cycles``, or a budget that dies during frame
encoding — proves nothing. Before the fix, every engine's bound loop
fell through with its initial ``proved`` status and callers recorded
"trustworthy for 0 cycles" as a pass; the outcome cache would have
persisted and replayed that lie forever.
"""

from __future__ import annotations

import pytest

from repro.bmc import BmcEngine
from repro.bmc.unroll import Unroller
from repro.core.backends import make_engine
from repro.netlist import Circuit
from repro.sat.solver import Solver
from tests.conftest import build_counter

ENGINES = ["bmc", "atpg", "atpg-podem", "atpg-backward"]


def counter_objective(width=4, target=9):
    netlist = build_counter(width)
    circuit = Circuit.attach(netlist)
    objective = circuit.bv(
        netlist.register_q_nets("count")
    ).eq_const(target).nets[0]
    return netlist, objective


@pytest.mark.parametrize("engine", ENGINES)
def test_max_cycles_zero_is_unknown(engine):
    netlist, objective = counter_objective()
    result = make_engine(engine, netlist, objective).check(0)
    assert result.status == "unknown"
    assert result.bound == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_start_cycle_beyond_max_is_unknown(engine):
    netlist, objective = counter_objective()
    eng = make_engine(engine, netlist, objective)
    try:
        result = eng.check(4, start_cycle=6)
    except TypeError:
        pytest.skip("{} does not take start_cycle".format(engine))
    assert result.status == "unknown"
    assert result.bound == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_nonempty_range_still_proves(engine):
    # the guard must not over-trigger: a real range still concludes
    netlist, objective = counter_objective(target=9)
    result = make_engine(engine, netlist, objective).check(4)
    assert result.status == "proved"
    assert result.bound == 4


def test_budget_spent_during_encoding_is_unknown(monkeypatch):
    # the frame encoding itself can exhaust the cooperative budget; the
    # engine must notice *after* extend_to and refuse to call that frame
    # proved (before the fix the budget was computed pre-encoding only)
    netlist, objective = counter_objective()
    engine = BmcEngine(netlist, objective)

    real_extend = Unroller.extend_to

    def slow_extend(self, frame_count):
        real_extend(self, frame_count)
        monkeypatch.setattr(
            "repro.bmc.engine.time.perf_counter",
            lambda offset=engine_start: offset + 3600.0,
        )

    import time as _time

    engine_start = _time.perf_counter()
    monkeypatch.setattr(Unroller, "extend_to", slow_extend)

    def no_solve(self, *args, **kwargs):
        raise AssertionError("solved a frame after the budget expired")

    monkeypatch.setattr(Solver, "solve", no_solve)
    result = engine.check(8, time_budget=5.0)
    assert result.status == "unknown"
    assert result.bound == 0
    assert len(result.per_bound_elapsed) == 1  # charged, not solved
