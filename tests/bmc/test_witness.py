"""Witness formatting and replay tests."""

from repro.bmc import Witness, replay
from repro.sim import SequentialSimulator

from tests.conftest import build_counter


def test_format_lists_cycles():
    w = Witness(
        inputs=[{"en": 1}, {"en": 0}, {"en": 1}],
        violation_cycle=2,
        property_name="demo",
    )
    text = w.format()
    assert "demo" in text
    assert "cycle   0" in text
    assert len(w) == 3


def test_format_truncates():
    w = Witness(inputs=[{"en": 1}] * 50, violation_cycle=49)
    text = w.format(max_cycles=5)
    assert "more cycles" in text


def test_replay_trace_matches_direct_simulation():
    nl = build_counter(4)
    w = Witness(inputs=[{"en": 1}] * 4 + [{"en": 0}] * 2, violation_cycle=5)
    trace = replay(nl, w, observe_registers=["count"], observe_outputs=["value"])
    assert trace.registers["count"] == [1, 2, 3, 4, 4, 4]

    sim = SequentialSimulator(nl)
    for words in w.inputs:
        sim.step(words)
    assert sim.register_value("count") == 4


def test_replay_with_probe():
    nl = build_counter(4)
    probe_net = nl.register_q_nets("count")[1]  # bit 1
    w = Witness(inputs=[{"en": 1}] * 3, violation_cycle=2)
    _trace, probe = replay(nl, w, net_probe=probe_net)
    # count values during cycles: 0,1,2 -> bit1 = 0,0,1
    assert probe == [0, 0, 1]


def test_witness_to_vcd(tmp_path):
    from repro.bmc import witness_to_vcd

    nl = build_counter(4)
    w = Witness(inputs=[{"en": 1}] * 3, violation_cycle=2)
    path = witness_to_vcd(nl, w, str(tmp_path / "cex.vcd"))
    text = open(path).read()
    assert "$var wire 1" in text  # the en input
    assert "count" in text and "value" in text
    assert "$enddefinitions" in text
