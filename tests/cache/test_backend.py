"""CacheBackend interface: local/memory/null backends and the fallback
wrapper's circuit breaker + degradation guarantees."""

import pytest

from repro.cache import OutcomeCache
from repro.cache.backend import (
    CacheBackend,
    FallbackBackend,
    LocalBackend,
    MemoryBackend,
    NullBackend,
    backend_for,
)


class FakeResult:
    def __init__(self, status, bound, witness=None, elapsed=0.0):
        self.status = status
        self.bound = bound
        self.witness = witness
        self.elapsed = elapsed


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FlakyBackend(CacheBackend):
    """Raises on demand; counts the calls that reached it."""

    name = "flaky"

    def __init__(self):
        super().__init__()
        self.failing = True
        self.calls = []
        self.entries = {}

    def _maybe_fail(self, op):
        self.calls.append(op)
        if self.failing:
            raise ConnectionError("backend unreachable")

    def get(self, key):
        self._maybe_fail("get")
        return self.entries.get(key)

    def put(self, key, **fields):
        self._maybe_fail("put")
        self.entries[key] = fields

    def claim(self, key):
        self._maybe_fail("claim")
        return True

    def release(self, key):
        self._maybe_fail("release")


class TestLocalBackend:
    def test_is_the_default_for_a_cache_dir(self, tmp_path):
        backend = backend_for(tmp_path)
        assert isinstance(backend, LocalBackend)
        assert backend_for(None) is None
        assert backend_for(backend) is backend  # pass-through

    def test_roundtrip_through_the_real_store(self, tmp_path):
        backend = LocalBackend(tmp_path)
        assert backend.get("a" * 16) is None
        backend.record_result("a" * 16, FakeResult("proved", 12),
                              engine="bmc")
        entry = backend.lookup("a" * 16)
        assert entry.proved_bound == 12 and entry.engine == "bmc"
        # visible to a plain OutcomeCache on the same directory
        assert OutcomeCache(tmp_path).lookup("a" * 16).proved_bound == 12

    def test_counters_shared_with_store(self, tmp_path):
        backend = LocalBackend(tmp_path)
        backend.put("b" * 16, proved_bound=4)
        assert backend.counters["stores"] == 1

    def test_claims_delegate_to_registry(self, tmp_path):
        backend = LocalBackend(tmp_path)
        other = LocalBackend(tmp_path)
        assert backend.claim("c" * 16)
        assert not other.claim("c" * 16)  # same fingerprint, live owner
        backend.release("c" * 16)
        assert other.claim("c" * 16)
        other.release_all()


class TestMemoryBackend:
    def test_merge_semantics_match_the_store(self):
        backend = MemoryBackend()
        backend.put("k", proved_bound=4)
        backend.put("k", proved_bound=10)          # deeper proof wins
        backend.put("k", violation_bound=9, witness={"w": 1})
        backend.put("k", violation_bound=7, witness={"w": 2})  # earliest
        entry = backend.get("k")
        assert entry.proved_bound == 10
        assert entry.violation_bound == 7
        assert entry.witness == {"w": 2}

    def test_claim_exactly_one_winner(self):
        backend = MemoryBackend()
        assert backend.claim("k")
        assert not backend.claim("k")
        backend.release("k")
        assert backend.claim("k")

    def test_record_result_stores_only_conclusive_facts(self):
        backend = MemoryBackend()
        assert not backend.record_result("k", FakeResult("unknown", 0))
        assert backend.record_result("k", FakeResult("unknown", 5))
        assert backend.get("k").proved_bound == 5  # partial prefix
        assert backend.record_result("k", FakeResult("violated", 8),
                                     certified_base=5)
        entry = backend.get("k")
        assert entry.violation_bound == 8
        assert entry.proved_bound == 5  # violation claims no proof


class TestNullBackend:
    def test_remembers_nothing_claims_everything(self):
        backend = NullBackend()
        backend.put("k", proved_bound=9)
        assert backend.get("k") is None
        assert backend.claim("k") and backend.claim("k")


class TestFallbackBackend:
    def make(self, failures=3, cooldown=30.0, local=None):
        clock = FakeClock()
        primary = FlakyBackend()
        wrapper = FallbackBackend(
            primary, local=local, slow_seconds=0.5,
            failures=failures, cooldown=cooldown, clock=clock,
        )
        return wrapper, primary, clock

    def test_failure_degrades_to_local(self):
        local = MemoryBackend()
        wrapper, primary, _clock = self.make(local=local)
        local.put("k", proved_bound=6)
        entry = wrapper.get("k")  # primary raises -> local answers
        assert entry.proved_bound == 6
        assert wrapper.stats["primary_failures"] == 1
        assert wrapper.stats["degraded_calls"] == 1

    def test_breaker_opens_after_consecutive_failures(self):
        wrapper, primary, clock = self.make(failures=3, cooldown=30.0)
        for _ in range(3):
            wrapper.get("k")
        assert wrapper.degraded
        assert wrapper.stats["breaker_opens"] == 1
        # while open, the primary is not even attempted
        attempts = len(primary.calls)
        wrapper.get("k")
        wrapper.claim("k")
        assert len(primary.calls) == attempts

    def test_breaker_probes_after_cooldown_and_closes(self):
        wrapper, primary, clock = self.make(failures=2, cooldown=30.0)
        wrapper.get("k")
        wrapper.get("k")
        assert wrapper.degraded
        primary.failing = False
        clock.advance(31.0)
        assert not wrapper.degraded  # cooldown elapsed: probing again
        wrapper.get("k")             # probe succeeds
        assert wrapper.stats["breaker_closes"] == 1
        assert not wrapper.degraded

    def test_slow_primary_counts_toward_the_breaker(self):
        clock = FakeClock()
        primary = MemoryBackend()
        slow_get = primary.get

        def get(key):
            clock.advance(1.0)  # slower than slow_seconds
            return slow_get(key)

        primary.get = get
        wrapper = FallbackBackend(primary, slow_seconds=0.5, failures=2,
                                  cooldown=30.0, clock=clock)
        wrapper.get("k")
        wrapper.get("k")
        assert wrapper.degraded
        assert wrapper.stats["primary_failures"] == 2

    def test_put_mirrors_to_local_always(self):
        local = MemoryBackend()
        wrapper, primary, _clock = self.make(local=local)
        primary.failing = False
        wrapper.put("k", proved_bound=3)
        assert local.get("k").proved_bound == 3       # mirrored
        assert primary.entries["k"]["proved_bound"] == 3
        primary.failing = True
        wrapper.put("k2", proved_bound=4)
        assert local.get("k2").proved_bound == 4      # survives failure

    def test_claim_defaults_to_granting_when_everything_fails(self):
        # no local side: the floor is the NullBackend, which always
        # grants — cache trouble must not stop the solve
        wrapper, primary, _clock = self.make()
        assert wrapper.claim("k") is True

    def test_release_all_swallows_backend_errors(self):
        wrapper, primary, _clock = self.make()

        def boom():
            raise ConnectionError("down")

        primary.release_all = boom
        wrapper.release_all()  # must not raise


class TestRecordResultContract:
    """The backend-level record_result must match the store's."""

    @pytest.mark.parametrize("status,bound,base,proved,violation", [
        ("proved", 10, 0, 10, None),
        ("proved", 4, 7, 7, None),      # base deeper than this run
        ("violated", 9, 3, 3, 9),
        ("unknown", 6, 0, 6, None),     # partial prefix
    ])
    def test_semantics(self, status, bound, base, proved, violation):
        backend = MemoryBackend()
        assert backend.record_result(
            "k", FakeResult(status, bound), certified_base=base
        )
        entry = backend.get("k")
        assert entry.proved_bound == proved
        assert entry.violation_bound == violation

    def test_unknown_with_no_prefix_is_not_stored(self):
        backend = MemoryBackend()
        assert not backend.record_result("k", FakeResult("unknown", 0))
        assert backend.get("k") is None
