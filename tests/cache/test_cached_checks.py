"""Cache-aware checking end to end: hits, resumes, replays, degradation.

The acceptance-critical assertions live here:

* a warm-cache re-check performs **zero** SAT solves (enforced by
  monkeypatching ``Solver.solve`` to explode);
* a partial hit provably resumes at ``start_cycle = cached_bound + 1``
  (enforced via ``per_bound_elapsed`` length — one solve per frame —
  and the solver-stats deltas of the resumed run);
* a cached violation replays its stored witness on the simulator;
* a corrupted cache file degrades to a miss, never an error.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.bmc import confirms_violation
from repro.cache import FILENAME, OutcomeCache
from repro.core import TrojanDetector
from repro.netlist import Circuit
from repro.properties.monitors import build_corruption_monitor
from repro.properties.valid_ways import DesignSpec
from repro.runner import CachedResult, CheckRunner, ObjectiveTask
from repro.sat.solver import Solver
from tests.conftest import build_counter, build_secret_design, secret_spec


def counter_task(max_cycles, cache_dir, width=4, target=9, **kwargs):
    """An ObjectiveTask asking 'can the counter reach ``target``?'."""
    netlist = build_counter(width)
    circuit = Circuit.attach(netlist)
    objective = circuit.bv(
        netlist.register_q_nets("count")
    ).eq_const(target).nets[0]
    return ObjectiveTask(
        engine="bmc",
        netlist=netlist,
        objective_net=objective,
        max_cycles=max_cycles,
        property_name="count-reaches-{}".format(target),
        cache_dir=str(cache_dir),
        **kwargs,
    )


def secret_detector(tmp_path, trojan, **kwargs):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(name="t", critical={"secret": secret_spec()})
    return TrojanDetector(
        netlist, spec, max_cycles=10, cache_dir=str(tmp_path / "cache"),
        **kwargs,
    )


def forbid_solves(monkeypatch):
    def exploding_solve(self, *args, **kwargs):
        raise AssertionError("SAT solve attempted on a warm cache")

    monkeypatch.setattr(Solver, "solve", exploding_solve)


# ------------------------------------------------------------- full hits


def test_full_hit_skips_the_solve_entirely(tmp_path, monkeypatch):
    runner = CheckRunner()
    task = counter_task(6, tmp_path)
    cold = runner.run(task)
    assert cold.cache == "miss"
    assert cold.result.status == "proved"
    forbid_solves(monkeypatch)  # any solver call from here on is a failure
    warm = runner.run(task)
    assert warm.cache == "hit"
    assert isinstance(warm.result, CachedResult)
    assert warm.result.status == "proved"
    assert warm.result.bound == 6
    assert warm.bound_reached == 6


def test_hit_serves_shallower_requests(tmp_path, monkeypatch):
    runner = CheckRunner()
    runner.run(counter_task(8, tmp_path))
    forbid_solves(monkeypatch)
    warm = runner.run(counter_task(3, tmp_path))
    assert warm.cache == "hit"
    assert warm.result.status == "proved"
    assert warm.result.bound >= 3


def test_cache_off_never_consults(tmp_path):
    runner = CheckRunner()
    runner.run(counter_task(6, tmp_path))
    uncached = runner.run(
        replace(counter_task(6, tmp_path), cache_dir=None)
    )
    assert uncached.cache is None
    assert runner.cache_counters["hits"] == 0


# -------------------------------------------------------- partial resume


def test_partial_hit_resumes_at_cached_bound_plus_one(tmp_path):
    runner = CheckRunner()
    cold = runner.run(counter_task(4, tmp_path))
    assert cold.result.status == "proved"
    assert cold.result.bound == 4
    # one solve per frame: the cold run solved frames 1..4
    assert len(cold.result.per_bound_elapsed) == 4

    deeper = runner.run(counter_task(8, tmp_path))
    assert deeper.cache == "partial"
    assert deeper.result.status == "proved"
    # exactly four solves — frames 5..8 and nothing below: the engine
    # was started at start_cycle = cached_bound + 1
    assert len(deeper.result.per_bound_elapsed) == 4
    # the certified prefix folds back into the absolute bound
    assert deeper.result.bound == 8
    assert deeper.bound_reached == 8
    # and the search did strictly less work than an uncached deep run
    fresh = CheckRunner().run(counter_task(8, tmp_path / "elsewhere"))
    assert len(fresh.result.per_bound_elapsed) == 8
    assert deeper.result.decisions <= fresh.result.decisions

    # the resumed run's absolute bound was written back: a third run at
    # the deeper bound is now a full hit
    third = runner.run(counter_task(8, tmp_path))
    assert third.cache == "hit"
    assert third.result.bound == 8


def test_user_start_cycle_is_never_rewritten(tmp_path):
    runner = CheckRunner()
    runner.run(counter_task(4, tmp_path))
    pinned = counter_task(
        8, tmp_path, check_kwargs={"start_cycle": 3}
    )
    outcome = runner.run(pinned)
    # a hand-set start_cycle must not be silently replaced by the cache's
    # resume offset — the caller asked for frames 3..8, they get 3..8
    assert outcome.cache == "miss"
    assert len(outcome.result.per_bound_elapsed) == 6


def test_foreign_start_cycle_stores_no_proof(tmp_path):
    runner = CheckRunner()
    pinned = counter_task(6, tmp_path, check_kwargs={"start_cycle": 4})
    outcome = runner.run(pinned)
    assert outcome.result.status == "proved"  # frames 4..6 are UNSAT
    # ...but the store must not have recorded bound 6 as an absolute
    # claim: frames 1..3 were never checked
    entry = OutcomeCache(str(tmp_path)).lookup(pinned.cache_key())
    assert entry is None


# ----------------------------------------------------- violation replays


def test_cached_violation_replays_stored_witness(tmp_path, monkeypatch):
    netlist = build_secret_design(trojan=True)
    spec = secret_spec()
    monitor = build_corruption_monitor(netlist, spec)
    task = ObjectiveTask(
        engine="bmc",
        netlist=monitor.netlist,
        objective_net=monitor.objective_net,
        max_cycles=12,
        property_name=monitor.property_name,
        cache_dir=str(tmp_path),
    )
    runner = CheckRunner()
    cold = runner.run(task)
    assert cold.result.status == "violated"
    forbid_solves(monkeypatch)
    # a *fresh* monitor build (different uid names, same structure) hits
    rebuilt = build_corruption_monitor(netlist, spec)
    warm = CheckRunner().run(ObjectiveTask(
        engine="bmc",
        netlist=rebuilt.netlist,
        objective_net=rebuilt.objective_net,
        max_cycles=12,
        property_name=rebuilt.property_name,
        cache_dir=str(tmp_path),
    ))
    assert warm.cache == "hit"
    assert warm.result.status == "violated"
    assert warm.result.detected
    assert confirms_violation(
        rebuilt.netlist, warm.result.witness, rebuilt.violation_net
    )


def test_violation_below_request_is_served_deeper(tmp_path, monkeypatch):
    netlist = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(netlist, secret_spec())

    def task(bound):
        return ObjectiveTask(
            engine="bmc", netlist=monitor.netlist,
            objective_net=monitor.objective_net, max_cycles=bound,
            property_name=monitor.property_name, cache_dir=str(tmp_path),
        )

    runner = CheckRunner()
    cold = runner.run(task(12))
    violation_bound = cold.result.bound
    forbid_solves(monkeypatch)
    # any request at or beyond the violation bound is satisfied by it
    warm = runner.run(task(violation_bound + 20))
    assert warm.cache == "hit"
    assert warm.result.status == "violated"
    assert warm.result.bound == violation_bound


# ------------------------------------------------------ full-audit warm


def test_warm_reaudit_of_trojan_design_is_all_hits(tmp_path, monkeypatch):
    cold = secret_detector(tmp_path, trojan=True).run()
    assert cold.trojan_found
    assert cold.findings["secret"].witness_confirmed

    forbid_solves(monkeypatch)
    warm_detector = secret_detector(tmp_path, trojan=True)
    warm = warm_detector.run()
    assert warm.trojan_found
    assert warm.findings["secret"].witness_confirmed
    counters = warm_detector.runner.cache_counters
    assert counters["misses"] == 0
    assert counters["hits"] >= 1


def test_warm_reaudit_of_clean_design_is_all_hits(tmp_path, monkeypatch):
    assert not secret_detector(tmp_path, trojan=False).run().trojan_found
    forbid_solves(monkeypatch)
    warm_detector = secret_detector(tmp_path, trojan=False)
    assert not warm_detector.run().trojan_found
    assert warm_detector.runner.cache_counters["misses"] == 0


def test_trojan_and_clean_designs_do_not_share_entries(tmp_path):
    # structural fingerprints keep the two designs' verdicts apart even
    # in the same cache directory
    assert secret_detector(tmp_path, trojan=True).run().trojan_found
    clean_detector = secret_detector(tmp_path, trojan=False)
    assert not clean_detector.run().trojan_found
    assert clean_detector.runner.cache_counters["hits"] == 0


# ------------------------------------------------------------ degradation


def test_corrupted_cache_degrades_to_miss(tmp_path):
    runner = CheckRunner()
    task = counter_task(6, tmp_path)
    runner.run(task)
    store_path = tmp_path / FILENAME
    store_path.write_text("definitely { not json\n" * 3)
    fresh_runner = CheckRunner()
    outcome = fresh_runner.run(task)
    assert outcome.cache == "miss"
    assert outcome.result.status == "proved"
    assert outcome.result.bound == 6
    # ...and the re-solve repopulated the store
    assert OutcomeCache(str(tmp_path)).lookup(task.cache_key()) is not None


def test_version_skew_degrades_to_miss(tmp_path):
    runner = CheckRunner()
    task = counter_task(6, tmp_path)
    runner.run(task)
    store_path = tmp_path / FILENAME
    records = [json.loads(line) for line in store_path.read_text().splitlines()]
    for record in records:
        record["v"] = 999
    store_path.write_text(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    outcome = CheckRunner().run(task)
    assert outcome.cache == "miss"
    assert outcome.result.status == "proved"


def test_unwritable_cache_does_not_cost_the_verdict(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the cache dir should be")
    outcome = CheckRunner().run(counter_task(6, target))
    # consult fails open, write-back is swallowed; the verdict survives
    assert outcome.result.status == "proved"
    assert outcome.result.bound == 6
