"""Claim-file host identity: pid liveness is a same-host/same-boot test.

A pid is a host-local name. A claim written on another host (shared NFS
cache dir) or in a previous boot of this host must never be probed with
``kill(pid, 0)`` — the number may belong to an unrelated live process —
so for foreign claims the age TTL is the only breaker.
"""

import json
import os

from repro.cache.claims import (
    HOST_IDENTITY,
    ClaimRegistry,
    host_identity,
)


def plant_claim(cache_dir, digest, pid, ts, host):
    claims = cache_dir / "claims"
    claims.mkdir(parents=True, exist_ok=True)
    record = {"pid": pid, "ts": ts}
    if host is not None:
        record["host"] = host
    (claims / (digest + ".claim")).write_text(json.dumps(record))


class TestHostIdentity:
    def test_identity_is_hostname_slash_boot_nonce(self):
        identity = host_identity()
        assert "/" in identity
        assert identity == HOST_IDENTITY  # stable within one process

    def test_own_claims_record_the_identity(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        assert registry.acquire("d" * 16)
        record = registry.holder("d" * 16)
        assert record["host"] == HOST_IDENTITY
        assert record["pid"] == os.getpid()
        registry.release_all()


class TestForeignClaims:
    def test_foreign_host_claim_ignores_pid_liveness(self, tmp_path):
        """A fresh claim from another host carries *our* live pid — but
        that pid means nothing there, so the claim holds until TTL."""
        import time

        plant_claim(tmp_path, "a" * 16, pid=os.getpid(), ts=time.time(),
                    host="otherhost/beef-1234")
        registry = ClaimRegistry(tmp_path, ttl=3600.0)
        assert not registry.acquire("a" * 16)  # busy: cannot probe pid

    def test_foreign_host_claim_breaks_by_ttl(self, tmp_path):
        plant_claim(tmp_path, "b" * 16, pid=os.getpid(), ts=0.0,
                    host="otherhost/beef-1234")
        registry = ClaimRegistry(tmp_path, ttl=60.0)  # ts=0 is ancient
        assert registry.acquire("b" * 16)
        registry.release_all()

    def test_prior_boot_claim_is_foreign_even_on_this_host(self, tmp_path):
        """Same hostname, different boot nonce: pids restarted from
        scratch, so liveness must not be probed."""
        import time

        hostname = HOST_IDENTITY.split("/", 1)[0]
        plant_claim(tmp_path, "c" * 16, pid=os.getpid(), ts=time.time(),
                    host="{}/previous-boot-nonce".format(hostname))
        registry = ClaimRegistry(tmp_path, ttl=3600.0)
        assert not registry.acquire("c" * 16)


class TestSameHostClaims:
    def test_same_host_dead_pid_is_broken_immediately(self, tmp_path):
        """Our own host, our own boot, a pid that is certainly dead:
        liveness breaks the claim without waiting for the TTL."""
        import subprocess
        import time

        child = subprocess.Popen(["true"])
        child.wait()  # now certainly dead (and reaped)
        plant_claim(tmp_path, "e" * 16, pid=child.pid, ts=time.time(),
                    host=HOST_IDENTITY)
        registry = ClaimRegistry(tmp_path, ttl=3600.0)
        assert registry.acquire("e" * 16)
        registry.release_all()

    def test_same_host_live_pid_holds(self, tmp_path):
        import time

        plant_claim(tmp_path, "f" * 16, pid=os.getpid(), ts=time.time(),
                    host=HOST_IDENTITY)
        registry = ClaimRegistry(tmp_path, ttl=3600.0)
        assert not registry.acquire("f" * 16)

    def test_legacy_claim_without_host_keeps_pid_semantics(self, tmp_path):
        """Claims written before the host field existed fall back to
        the old behaviour: pid liveness decides."""
        import subprocess
        import time

        child = subprocess.Popen(["true"])
        child.wait()
        plant_claim(tmp_path, "9" * 16, pid=child.pid, ts=time.time(),
                    host=None)
        registry = ClaimRegistry(tmp_path, ttl=3600.0)
        assert registry.acquire("9" * 16)
        registry.release_all()
