"""Claim acquisition is atomic: contenders never break a live claim.

Regression for a torn-claim race: the claim file used to be created
O_EXCL with the record body written afterwards, so a contender reading
in that window saw an empty record, judged the claim
unreadable-therefore-stale, broke it, and both pools solved the same
fingerprint.
"""

import json
import multiprocessing
import os

from repro.cache.claims import ClaimRegistry

KEY = "f" * 64


def _contend(cache_dir, barrier, rounds, wins):
    registry = ClaimRegistry(cache_dir)
    for round_index in range(rounds):
        barrier.wait()
        if registry.acquire("{}{:04d}".format(KEY[:-4], round_index)):
            wins.put(round_index)
        barrier.wait()


def test_exactly_one_winner_per_contended_key(tmp_path):
    cache_dir = str(tmp_path / "cache")
    rounds = 25
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(6)
    wins = ctx.Queue()
    procs = [
        ctx.Process(target=_contend, args=(cache_dir, barrier, rounds, wins))
        for _ in range(6)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0
    winners = []
    while not wins.empty():
        winners.append(wins.get())
    assert sorted(winners) == list(range(rounds)), (
        "every round must have exactly one claim winner"
    )


def test_visible_claim_always_carries_a_complete_record(tmp_path):
    registry = ClaimRegistry(str(tmp_path / "cache"))
    assert registry.acquire(KEY)
    record = registry.holder(KEY)
    assert record is not None
    assert record["pid"] == os.getpid()
    assert "ts" in record and "host" in record
    # and no temp droppings survive the acquire
    names = os.listdir(registry.dir)
    assert all(not name.endswith(".tmp") for name in names)


def test_contender_defers_to_a_live_claim(tmp_path):
    cache_dir = str(tmp_path / "cache")
    holder = ClaimRegistry(cache_dir)
    contender = ClaimRegistry(cache_dir)
    assert holder.acquire(KEY)
    assert not contender.acquire(KEY)
    assert contender.counters["busy"] == 1
    assert contender.counters["broken"] == 0
    holder.release(KEY)
    assert contender.acquire(KEY)


def test_empty_stray_claim_file_is_still_breakable(tmp_path):
    # an empty file can no longer be produced by acquire itself, but a
    # crashed legacy writer's stray must not wedge the key forever
    registry = ClaimRegistry(str(tmp_path / "cache"))
    registry.dir.mkdir(parents=True)
    path, _digest = registry._path(KEY)
    path.write_text("")
    assert registry.holder(KEY) is None
    assert registry.acquire(KEY)
    assert json.loads(path.read_text())["pid"] == os.getpid()
