"""Two scheduler pools, one cache dir: no corrupt lines, no double-solve."""

import json
import multiprocessing
import os

from repro.cache import OutcomeCache

from tests.conftest import build_secret_design, secret_spec


def _audit_into_cache(cache_dir, result_path):
    """One full parallel audit writing into the shared cache dir."""
    from repro.core import AuditConfig, TrojanDetector
    from repro.properties import DesignSpec
    from repro.runner import CheckRunner

    nl = build_secret_design(trojan=True, pseudo=True)
    spec = DesignSpec(name=nl.name, critical={"secret": secret_spec()})
    config = AuditConfig(
        max_cycles=10, time_budget=60, check_pseudo_critical=True,
        stop_on_first=False, cache_dir=cache_dir, jobs=2,
    )
    detector = TrojanDetector(
        nl, spec, config=config, runner=CheckRunner.configure(check_timeout=120)
    )
    report = detector.run()
    with open(result_path, "w") as handle:
        json.dump({"trojan_found": report.trojan_found}, handle)


def test_two_pools_one_cache_dir(tmp_path):
    cache_dir = str(tmp_path / "shared-cache")
    ctx = multiprocessing.get_context("fork")
    procs = []
    results = []
    for index in range(2):
        result_path = str(tmp_path / "report{}.json".format(index))
        results.append(result_path)
        procs.append(ctx.Process(
            target=_audit_into_cache, args=(cache_dir, result_path)
        ))
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(300)
        assert proc.exitcode == 0

    # both audits reached the same verdict
    for result_path in results:
        with open(result_path) as handle:
            assert json.load(handle)["trojan_found"] is True

    # every cache line parses (no torn/interleaved writes) and every
    # digest was solved exactly once (claims prevented double-solves,
    # so gc finds nothing superseded and nothing unreadable)
    cache = OutcomeCache(cache_dir)
    stats = cache.stats()
    assert stats["entries"] > 0
    before, after, skipped = cache.gc()
    assert skipped == 0, "corrupt cache lines survived concurrent writers"
    assert before == after, "same fingerprint was solved more than once"

    # no claim files left behind: both pools released on completion
    claims_dir = os.path.join(cache_dir, "claims")
    if os.path.isdir(claims_dir):
        assert os.listdir(claims_dir) == []


def test_second_pool_rides_the_first_pools_cache(tmp_path):
    cache_dir = str(tmp_path / "warm-cache")
    first = str(tmp_path / "first.json")
    second = str(tmp_path / "second.json")
    _audit_into_cache(cache_dir, first)
    entries_after_first = OutcomeCache(cache_dir).stats()["entries"]
    _audit_into_cache(cache_dir, second)
    # the warm run adds nothing: every check was a cache hit
    assert OutcomeCache(cache_dir).stats()["entries"] == entries_after_first
    with open(second) as handle:
        assert json.load(handle)["trojan_found"] is True
