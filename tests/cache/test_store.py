"""The JSON-lines outcome store: merging, corruption tolerance, lifecycle."""

from __future__ import annotations

import json

from repro.bmc import BmcResult, Witness
from repro.cache import FILENAME, SCHEMA_VERSION, OutcomeCache

KEY = "k" * 64
OTHER = "q" * 64


def test_empty_dir_is_all_misses(tmp_path):
    cache = OutcomeCache(tmp_path)
    assert cache.lookup(KEY) is None
    assert len(cache) == 0


def test_record_and_lookup(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, engine="bmc", proved_bound=8, elapsed=1.5)
    entry = cache.lookup(KEY)
    assert entry.proved_bound == 8
    assert entry.engine == "bmc"
    assert not entry.has_violation
    # and a fresh reader sees the same thing
    assert OutcomeCache(tmp_path).lookup(KEY).proved_bound == 8


def test_records_merge_to_deepest_proof(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, proved_bound=4)
    cache.record(KEY, proved_bound=16)
    cache.record(KEY, proved_bound=9)
    entry = OutcomeCache(tmp_path).lookup(KEY)
    assert entry.proved_bound == 16
    assert entry.records == 3


def test_earliest_violation_wins(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, violation_bound=12, witness={"w": 12})
    cache.record(KEY, violation_bound=7, witness={"w": 7})
    cache.record(KEY, violation_bound=30, witness={"w": 30})
    entry = OutcomeCache(tmp_path).lookup(KEY)
    assert entry.violation_bound == 7
    assert entry.witness == {"w": 7}


def test_reader_refreshes_after_foreign_append(tmp_path):
    # a worker process appends behind the supervisor's back; the next
    # lookup must see it without any explicit invalidation
    reader = OutcomeCache(tmp_path)
    assert reader.lookup(KEY) is None
    OutcomeCache(tmp_path).record(KEY, proved_bound=5)
    assert reader.lookup(KEY).proved_bound == 5


def test_corrupted_lines_degrade_to_miss(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, proved_bound=8)
    path = tmp_path / FILENAME
    with open(path, "a") as handle:
        handle.write("{torn json\n")
        handle.write('"not a dict"\n')
        handle.write(json.dumps({"v": SCHEMA_VERSION, "key": 42}) + "\n")
    fresh = OutcomeCache(tmp_path)
    assert fresh.lookup(KEY).proved_bound == 8  # good record survives
    assert fresh.stats()["skipped_records"] == 3


def test_version_mismatch_is_skipped_not_fatal(tmp_path):
    path = tmp_path / FILENAME
    tmp_path.mkdir(exist_ok=True)
    with open(path, "w") as handle:
        handle.write(json.dumps({
            "v": SCHEMA_VERSION + 1, "key": KEY, "proved": 99,
        }) + "\n")
    cache = OutcomeCache(tmp_path)
    assert cache.lookup(KEY) is None
    assert cache.stats()["skipped_records"] == 1


def test_gc_compacts_and_preserves_verdicts(tmp_path):
    cache = OutcomeCache(tmp_path)
    for bound in (2, 4, 8):
        cache.record(KEY, proved_bound=bound)
    cache.record(OTHER, violation_bound=3, witness={"w": 3})
    with open(tmp_path / FILENAME, "a") as handle:
        handle.write("garbage\n")
    before, after, skipped = OutcomeCache(tmp_path).gc()
    assert (before, after, skipped) == (4, 2, 1)
    fresh = OutcomeCache(tmp_path)
    assert fresh.lookup(KEY).proved_bound == 8
    assert fresh.lookup(OTHER).violation_bound == 3
    assert fresh.stats()["skipped_records"] == 0


def test_clear(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, proved_bound=8)
    assert cache.clear() == 1
    assert OutcomeCache(tmp_path).lookup(KEY) is None
    assert cache.clear() == 0  # idempotent


def test_stats_shape(tmp_path):
    cache = OutcomeCache(tmp_path)
    cache.record(KEY, engine="bmc", proved_bound=8, elapsed=2.0)
    cache.record(OTHER, engine="bmc", violation_bound=3, witness={"w": 3},
                 elapsed=1.0)
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["violation_entries"] == 1
    assert stats["deepest_proved"] == 8
    assert stats["engines"] == {"bmc": 2}
    assert stats["solve_seconds_recorded"] == 3.0
    assert stats["file_bytes"] > 0


def test_record_result_proved_and_violated(tmp_path):
    cache = OutcomeCache(tmp_path)
    assert cache.record_result(
        KEY, BmcResult(status="proved", bound=6, elapsed=0.5), engine="bmc"
    )
    witness = Witness(inputs=[{"en": 1}], violation_cycle=0)
    assert cache.record_result(
        KEY, BmcResult(status="violated", bound=9, witness=witness),
        engine="bmc",
    )
    entry = OutcomeCache(tmp_path).lookup(KEY)
    assert entry.proved_bound == 6
    assert entry.violation_bound == 9
    restored = Witness.from_dict(entry.witness)
    assert restored.inputs == [{"en": 1}]


def test_record_result_resume_extends_absolute_bound(tmp_path):
    cache = OutcomeCache(tmp_path)
    # a resumed run proved frames 7..10 on top of a certified prefix of 6
    cache.record_result(
        KEY, BmcResult(status="proved", bound=10), engine="bmc",
        certified_base=6,
    )
    assert OutcomeCache(tmp_path).lookup(KEY).proved_bound == 10


def test_record_result_violation_never_claims_a_proof(tmp_path):
    cache = OutcomeCache(tmp_path)
    # a portfolio engine may find a violation at frame 9 without having
    # proved any shallower bound
    cache.record_result(
        KEY, BmcResult(status="violated", bound=9,
                       witness=Witness(inputs=[], violation_cycle=8)),
        engine="atpg",
    )
    entry = OutcomeCache(tmp_path).lookup(KEY)
    assert entry.violation_bound == 9
    assert entry.proved_bound == 0


def test_record_result_unknown_stores_partial_prefix_only(tmp_path):
    cache = OutcomeCache(tmp_path)
    assert cache.record_result(
        KEY, BmcResult(status="unknown", bound=5), engine="bmc"
    )
    assert not cache.record_result(
        OTHER, BmcResult(status="unknown", bound=0), engine="bmc"
    )
    assert OutcomeCache(tmp_path).lookup(KEY).proved_bound == 5
    assert OutcomeCache(tmp_path).lookup(OTHER) is None
