"""Outcome-store torn-write tolerance.

The store's concurrency story rests on two facts: sub-``PIPE_BUF``
``O_APPEND`` lines never interleave, and anything that *does* go wrong
on disk degrades to a cache miss rather than an error. These tests
attack the second fact directly: a partial final line (torn by a killed
writer) and an interleaved over-``PIPE_BUF`` write must both leave every
intact record readable.
"""

import json

from repro.cache import OutcomeCache

PIPE_BUF = 4096  # POSIX minimum; linux uses exactly this


def record_line(key, proved=8):
    return json.dumps({
        "v": 1, "key": key, "engine": "bmc", "proved": proved,
        "vbound": None, "witness": None, "elapsed": 0.1, "ts": 0.0,
    }, separators=(",", ":")) + "\n"


class TestPartialFinalLine:
    def test_torn_tail_degrades_to_a_miss(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        cache.record("a" * 16, engine="bmc", proved_bound=12)
        # a writer died mid-append: the final line has no closing brace
        with open(cache.path, "a") as handle:
            handle.write(record_line("b" * 16)[: 40])

        fresh = OutcomeCache(tmp_path)
        assert fresh.lookup("a" * 16).proved_bound == 12  # intact entry
        assert fresh.lookup("b" * 16) is None             # miss, not error
        assert fresh.stats()["skipped_records"] == 1

    def test_torn_tail_mid_multibyte_utf8(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        cache.record("a" * 16, proved_bound=5)
        line = json.dumps({
            "v": 1, "key": "c" * 16, "engine": "bmcé", "proved": 3,
            "vbound": None, "witness": None, "elapsed": 0.0, "ts": 0.0,
        }, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
        cut = line.rindex("é".encode("utf-8")) + 1  # inside é
        with open(cache.path, "ab") as handle:
            handle.write(line[:cut])

        fresh = OutcomeCache(tmp_path)
        assert fresh.lookup("a" * 16).proved_bound == 5

    def test_writes_after_a_torn_line_still_load(self, tmp_path):
        """Unlike the service journal (append-only by one owner), the
        store has many writers: records *after* a bad line are real and
        must load — skip the line, not the rest of the file."""
        cache = OutcomeCache(tmp_path)
        cache.record("a" * 16, proved_bound=4)
        with open(cache.path, "a") as handle:
            handle.write("{torn garbage\n")          # bad, has newline
        cache2 = OutcomeCache(tmp_path)
        cache2.record("d" * 16, proved_bound=9)      # a later writer

        fresh = OutcomeCache(tmp_path)
        assert fresh.lookup("a" * 16).proved_bound == 4
        assert fresh.lookup("d" * 16).proved_bound == 9
        assert fresh.stats()["skipped_records"] == 1


class TestInterleavedOversizeWrite:
    def test_interleave_larger_than_pipe_buf(self, tmp_path):
        """Two writers, one of them writing a record bigger than
        PIPE_BUF (a huge witness): the kernel may interleave the big
        write around the small one. The debris — the glued first half
        and the dangling second half — is skipped and both victims
        degrade to misses; every record already on disk survives. (The
        small record is collateral damage of the oversize writer: this
        is exactly why ``record()`` keeps its own lines small.)"""
        cache = OutcomeCache(tmp_path)
        cache.record("a" * 16, proved_bound=7)

        big = record_line("e" * 16, proved=2)
        # inflate past PIPE_BUF with a fat witness payload
        fat = json.loads(big)
        fat["witness"] = {"inputs": [{"key_in": 165}] * 600}
        big = json.dumps(fat, separators=(",", ":")) + "\n"
        assert len(big.encode()) > PIPE_BUF
        small = record_line("f" * 16, proved=11)
        # simulate the interleave: first half of big, the small line,
        # second half of big
        half = len(big) // 2
        with open(cache.path, "a") as handle:
            handle.write(big[:half])
            handle.write(small)
            handle.write(big[half:])

        fresh = OutcomeCache(tmp_path)
        assert fresh.lookup("a" * 16).proved_bound == 7  # prior entry
        assert fresh.lookup("e" * 16) is None  # torn victim: a miss
        assert fresh.lookup("f" * 16) is None  # collateral: also a miss
        assert fresh.stats()["skipped_records"] == 2

    def test_gc_drops_the_debris(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        cache.record("a" * 16, proved_bound=7)
        with open(cache.path, "a") as handle:
            handle.write("{half a record")
        fresh = OutcomeCache(tmp_path)
        _before, after, skipped = fresh.gc()
        assert after == 1 and skipped == 1
        assert fresh.stats()["skipped_records"] == 0
        assert fresh.lookup("a" * 16).proved_bound == 7
