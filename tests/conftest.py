"""Shared fixtures: small designs exercised across the suite."""

from __future__ import annotations

import pytest

from repro.netlist import Circuit
from repro.properties.valid_ways import RegisterSpec, ValidWay


def build_secret_design(trojan=True, trigger_value=0xA5, trigger_count=5,
                        pseudo=False, invert_pseudo=True, bypass=False):
    """A miniature 3PIP: an 8-bit secret register with a load interface.

    Optional Trojan: after ``trigger_count`` loads of ``trigger_value``,
    the secret's LSB is flipped. Optional pseudo-critical copy and bypass
    register reproduce the Section 4 attacks in miniature.
    """
    c = Circuit("secret_core")
    reset = c.input("reset", 1)
    load = c.input("load", 1)
    key_in = c.input("key_in", 8)
    secret = c.reg("secret", 8)
    nxt = c.select(
        secret.q, (reset, c.const(0, 8)), (load, key_in)
    )
    if trojan:
        counter = c.reg("troj_counter", 3)
        seen = key_in.eq_const(trigger_value) & load
        counter.hold_unless(
            (reset, c.const(0, 3)),
            (seen & ~counter.q.eq_const(trigger_count), counter.q + 1),
        )
        fired = counter.q.eq_const(trigger_count)
        nxt = c.mux(fired, nxt, nxt ^ c.const(0x01, 8))
    secret.drive(nxt)
    out_value = secret.q
    if pseudo:
        shadow = c.reg("pseudo_secret", 8)
        shadow.drive(~secret.q if invert_pseudo else secret.q)
        c.output("shadow_out", shadow.q)
    if bypass:
        rogue = c.reg("bypass_secret", 8)
        rogue.drive(rogue.q + 1)
        armed = c.reg("bypass_armed", 1)
        armed.drive(armed.q | (key_in.eq_const(0x3C) & load))
        out_value = c.mux(armed.q, secret.q, rogue.q)
    c.output("out", out_value ^ c.const(0x55, 8))
    return c.finalize()


def secret_spec():
    """Valid ways for the miniature secret register."""
    return RegisterSpec(
        register="secret",
        ways=[
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, 8),
                expression="reset",
            ),
            ValidWay(
                "load",
                lambda m: m.input("load"),
                value=lambda m: m.input("key_in"),
                expression="load",
            ),
        ],
        observe_latency=1,
    )


@pytest.fixture
def trojan_design():
    return build_secret_design(trojan=True)


@pytest.fixture
def clean_design():
    return build_secret_design(trojan=False)


@pytest.fixture
def spec():
    return secret_spec()


def register_spec_for(register, width=4):
    """Reset/load valid ways for one register of the dual-register core."""
    return RegisterSpec(
        register=register,
        ways=[
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, width),
                expression="reset",
            ),
            ValidWay(
                "load",
                lambda m: m.input("load"),
                value=lambda m: m.input("din"),
                expression="load",
            ),
        ],
        observe_latency=1,
    )


def build_dual_register_design(width=4):
    """Two independent clean critical registers — the minimal multi-register
    audit, used by the checkpoint/resume and fault-isolation tests."""
    c = Circuit("dual")
    reset = c.input("reset", 1)
    load = c.input("load", 1)
    din = c.input("din", width)
    rega = c.reg("rega", width)
    rega.drive(c.select(rega.q, (reset, c.const(0, width)), (load, din)))
    regb = c.reg("regb", width)
    regb.drive(c.select(regb.q, (reset, c.const(0, width)), (load, din)))
    c.output("out", rega.q ^ regb.q)
    return c.finalize()


def build_counter(width=4, with_output=True):
    """An enabled counter, the suite's minimal sequential design."""
    c = Circuit("counter")
    enable = c.input("en", 1)
    count = c.reg("count", width)
    count.hold_unless((enable, count.q + 1))
    if with_output:
        c.output("value", count.q)
    return c.finalize()
