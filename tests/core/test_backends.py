"""Backend dispatch tests."""

import pytest

from repro.core import ENGINES, make_engine, run_objective
from repro.errors import EngineArgumentError, ReproError
from repro.netlist import Circuit

from tests.conftest import build_counter


def objective():
    nl = build_counter(3)
    c = Circuit.attach(nl)
    return nl, c.bv(nl.register_q_nets("count")).eq_const(3).nets[0]


@pytest.mark.parametrize("engine", ENGINES)
def test_all_engines_agree(engine):
    nl, obj = objective()
    result = run_objective(engine, nl, obj, 8, time_budget=30)
    assert result.status == "violated"
    assert result.bound == 4


def test_unknown_engine_rejected():
    nl, obj = objective()
    with pytest.raises(ReproError):
        make_engine("z3", nl, obj)


class TestCheckKwargValidation:
    def test_unknown_kwarg_named_in_error(self):
        nl, obj = objective()
        with pytest.raises(EngineArgumentError, match="conflict_budgett"):
            run_objective("bmc", nl, obj, 4, conflict_budgett=10)

    def test_engine_specific_kwarg_rejected_for_wrong_engine(self):
        nl, obj = objective()
        # backtrack_budget is an ATPG knob; BMC must reject it by name
        with pytest.raises(EngineArgumentError, match="backtrack_budget"):
            run_objective("bmc", nl, obj, 4, backtrack_budget=10)
        # and conflict_budget is BMC-only
        with pytest.raises(EngineArgumentError, match="conflict_budget"):
            run_objective("atpg", nl, obj, 4, conflict_budget=10)

    def test_error_names_the_engine_and_accepted_args(self):
        nl, obj = objective()
        with pytest.raises(EngineArgumentError, match="'bmc'") as info:
            run_objective("bmc", nl, obj, 4, nonsense=1)
        assert "time_budget" in str(info.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_valid_kwargs_still_pass(self, engine):
        nl, obj = objective()
        result = run_objective(
            engine, nl, obj, 8, time_budget=30, measure_memory=False
        )
        assert result.status == "violated"

    def test_engine_argument_error_is_a_repro_error(self):
        nl, obj = objective()
        with pytest.raises(ReproError):
            run_objective("bmc", nl, obj, 4, nonsense=1)


def test_pinned_inputs_threaded_through():
    nl, obj = objective()
    result = run_objective(
        "bmc", nl, obj, 8, pinned_inputs={"en": 0}, time_budget=30
    )
    assert result.status == "proved"
