"""Backend dispatch tests."""

import pytest

from repro.core import ENGINES, make_engine, run_objective
from repro.errors import ReproError
from repro.netlist import Circuit

from tests.conftest import build_counter


def objective():
    nl = build_counter(3)
    c = Circuit.attach(nl)
    return nl, c.bv(nl.register_q_nets("count")).eq_const(3).nets[0]


@pytest.mark.parametrize("engine", ENGINES)
def test_all_engines_agree(engine):
    nl, obj = objective()
    result = run_objective(engine, nl, obj, 8, time_budget=30)
    assert result.status == "violated"
    assert result.bound == 4


def test_unknown_engine_rejected():
    nl, obj = objective()
    with pytest.raises(ReproError):
        make_engine("z3", nl, obj)


def test_pinned_inputs_threaded_through():
    nl, obj = objective()
    result = run_objective(
        "bmc", nl, obj, 8, pinned_inputs={"en": 0}, time_budget=30
    )
    assert result.status == "proved"
