"""AuditConfig and the legacy-kwarg deprecation shims."""

import warnings

import pytest

from repro.core import AuditConfig, TrojanDetector
from repro.errors import ReproError
from repro.properties import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def design():
    nl = build_secret_design(trojan=True)
    spec = DesignSpec(name=nl.name, critical={"secret": secret_spec()})
    return nl, spec


class TestAuditConfig:
    def test_defaults_match_historical_kwargs(self):
        config = AuditConfig()
        assert config.max_cycles == 40
        assert config.engine == "bmc"
        assert config.functional is True
        assert config.stop_on_first is True
        assert config.jobs is None

    def test_rejects_bad_jobs(self):
        with pytest.raises(ReproError):
            AuditConfig(jobs=0)
        with pytest.raises(ReproError):
            AuditConfig(jobs=-2)

    def test_config_object_drives_the_detector(self):
        nl, spec = design()
        config = AuditConfig(max_cycles=10, time_budget=60)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            detector = TrojanDetector(nl, spec, config=config)
        assert detector.max_cycles == 10
        assert detector.config is config
        assert detector.run().trojan_found


class TestDeprecationShims:
    def test_legacy_kwargs_warn_and_still_work(self):
        nl, spec = design()
        with pytest.warns(DeprecationWarning, match="max_cycles"):
            legacy = TrojanDetector(nl, spec, max_cycles=10, time_budget=60)
        modern = TrojanDetector(
            nl, spec, config=AuditConfig(max_cycles=10, time_budget=60)
        )
        assert legacy.max_cycles == modern.max_cycles == 10
        assert legacy.config == modern.config
        assert legacy.run().trojan_found == modern.run().trojan_found

    def test_positional_max_cycles_still_works(self):
        # the oldest call shape: TrojanDetector(nl, spec, 12)
        nl, spec = design()
        with pytest.warns(DeprecationWarning):
            detector = TrojanDetector(nl, spec, 12)
        assert detector.max_cycles == 12
        assert detector.config.max_cycles == 12

    def test_legacy_kwargs_override_config(self):
        nl, spec = design()
        with pytest.warns(DeprecationWarning):
            detector = TrojanDetector(
                nl, spec, config=AuditConfig(max_cycles=30), engine="atpg"
            )
        assert detector.config.max_cycles == 30
        assert detector.config.engine == "atpg"

    def test_unknown_kwarg_is_a_type_error(self):
        nl, spec = design()
        with pytest.raises(TypeError, match="definitely_not_a_flag"):
            TrojanDetector(nl, spec, definitely_not_a_flag=1)

    def test_every_config_field_is_accepted_as_legacy_kwarg(self):
        from repro.core.detector import _CONFIG_FIELDS

        nl, spec = design()
        for name in _CONFIG_FIELDS:
            value = AuditConfig().__dict__.get(name, None)
            with pytest.warns(DeprecationWarning):
                detector = TrojanDetector(nl, spec, **{name: value})
            assert getattr(detector.config, name) == value
