"""Algorithm 1 end-to-end tests on the miniature secret core."""

import pytest

from repro.core import TrojanDetector
from repro.properties import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def design_spec_for(netlist_kind="trojan", **kwargs):
    mapping = {
        "trojan": dict(trojan=True),
        "clean": dict(trojan=False),
        "pseudo": dict(trojan=False, pseudo=True),
        "bypass": dict(trojan=False, bypass=True),
    }
    nl = build_secret_design(**mapping[netlist_kind], **kwargs)
    spec = DesignSpec(name=nl.name, critical={"secret": secret_spec()})
    return nl, spec


class TestCorruptionPath:
    @pytest.mark.parametrize("engine", ["bmc", "atpg"])
    def test_trojan_detected(self, engine):
        nl, spec = design_spec_for("trojan")
        report = TrojanDetector(
            nl, spec, max_cycles=15, engine=engine, time_budget=60
        ).run()
        assert report.trojan_found
        finding = report.findings["secret"]
        assert finding.corrupted
        assert finding.witness_confirmed
        assert "CORRUPTED" in report.summary()

    @pytest.mark.parametrize("engine", ["bmc", "atpg"])
    def test_clean_design_certified(self, engine):
        nl, spec = design_spec_for("clean")
        report = TrojanDetector(
            nl, spec, max_cycles=10, engine=engine, time_budget=60
        ).run()
        assert not report.trojan_found
        assert report.trusted_for() == 10
        assert "no data-corruption Trojan found for 10" in report.summary()


class TestPseudoCriticalPath:
    def test_pseudo_critical_promoted_and_checked(self):
        nl, spec = design_spec_for("pseudo")
        detector = TrojanDetector(
            nl, spec, max_cycles=10, check_pseudo_critical=True,
            time_budget=60,
        )
        report = detector.run()
        finding = report.findings["secret"]
        names = [name for name, _dir in finding.pseudo_criticals]
        assert "pseudo_secret" in names
        # the faithful copy is not itself corruptible
        assert not report.trojan_found

    def test_corrupted_pseudo_critical_found(self):
        # pseudo copy + a Trojan that corrupts the *copy* via the secret
        from repro.netlist import Circuit

        c = Circuit("attack1")
        reset = c.input("reset", 1)
        load = c.input("load", 1)
        key_in = c.input("key_in", 8)
        secret = c.reg("secret", 8)
        secret.drive(
            c.select(secret.q, (reset, c.const(0, 8)), (load, key_in))
        )
        shadow = c.reg("pseudo_secret", 8)
        fired = c.reg("fired", 1)
        fired.drive(fired.q | (key_in.eq_const(0x77) & load))
        shadow.drive(c.mux(fired.q, secret.q, secret.q ^ c.const(0xFF, 8)))
        c.output("out", shadow.q)
        nl = c.finalize()
        spec = DesignSpec(name="attack1", critical={"secret": secret_spec()})
        report = TrojanDetector(
            nl, spec, max_cycles=10, check_pseudo_critical=True,
            time_budget=60,
        ).run()
        finding = report.findings["secret"]
        # Eq. 3 rejects the tracking claim OR Eq. 2 on the promoted copy
        # fires; either way the attack is exposed
        corrupted_copy = any(
            r.detected for r in finding.pseudo_corruptions.values()
        )
        rejected = ("pseudo_secret", "after") not in finding.pseudo_criticals
        assert corrupted_copy or rejected


class TestBypassPath:
    def test_bypass_register_found(self):
        nl, spec = design_spec_for("bypass")
        report = TrojanDetector(
            nl, spec, max_cycles=6, check_bypass=True, time_budget=60
        ).run()
        finding = report.findings["secret"]
        assert finding.bypassed
        assert report.trojan_found
        assert "BYPASSED" in report.summary()

    def test_no_bypass_in_clean_design(self):
        nl, spec = design_spec_for("clean")
        report = TrojanDetector(
            nl, spec, max_cycles=4, check_bypass=True, time_budget=60
        ).run()
        assert not report.findings["secret"].bypassed


class TestReportShape:
    def test_ground_truth_included(self):
        from repro.properties import TrojanInfo

        nl, spec = design_spec_for("trojan")
        spec.trojan = TrojanInfo(
            name="TOY-T1", trigger="5x load 0xA5", payload="flip LSB",
            target_register="secret",
        )
        report = TrojanDetector(nl, spec, max_cycles=15).run()
        assert "TOY-T1" in report.summary()

    def test_elapsed_recorded(self):
        nl, spec = design_spec_for("clean")
        report = TrojanDetector(nl, spec, max_cycles=5).run()
        assert report.elapsed > 0
        assert report.findings["secret"].elapsed > 0
