"""Additional Algorithm 1 behaviours: engine variants, stop_on_first,
direct tracking checks, pseudo-critical audit timing windows."""

from repro.core import TrojanDetector
from repro.properties import DesignSpec, RegisterSpec

from tests.conftest import build_secret_design, secret_spec


def make(kind="trojan", **kwargs):
    mapping = {
        "trojan": dict(trojan=True),
        "clean": dict(trojan=False),
        "pseudo": dict(trojan=False, pseudo=True),
    }
    netlist = build_secret_design(**mapping[kind], **kwargs)
    spec = DesignSpec(name=netlist.name, critical={"secret": secret_spec()})
    return netlist, spec


def test_backward_engine_detects():
    netlist, spec = make("trojan")
    report = TrojanDetector(
        netlist, spec, max_cycles=15, engine="atpg-backward", time_budget=60
    ).run()
    assert report.trojan_found


def test_podem_engine_never_wrong():
    """Direct PODEM is the arithmetic-property specialist: on this
    counter-trigger toy it may abort, but must not mis-certify."""
    netlist, spec = make("trojan")
    report = TrojanDetector(
        netlist, spec, max_cycles=15, engine="atpg-podem", time_budget=10
    ).run()
    finding = report.findings["secret"]
    assert finding.corruption.status in ("violated", "unknown")
    if finding.corrupted:
        assert finding.witness_confirmed


def test_stop_on_first_false_audits_everything():
    netlist, spec = make("pseudo")
    spec.critical["pseudo_secret"] = RegisterSpec(
        register="pseudo_secret",
        ways=secret_spec().ways,
    )
    detector = TrojanDetector(
        netlist, spec, max_cycles=8, stop_on_first=False, time_budget=60,
        functional=False,
    )
    report = detector.run()
    assert set(report.findings) == {"secret", "pseudo_secret"}


def test_check_tracking_direct():
    netlist, spec = make("pseudo", invert_pseudo=False)
    detector = TrojanDetector(netlist, spec, max_cycles=10, time_budget=60)
    tracked = detector.check_tracking(
        spec.critical["secret"], "pseudo_secret", "after"
    )
    assert tracked.status == "proved"
    diverged = detector.check_tracking(
        spec.critical["secret"], "troj_counter", "after"
    ) if "troj_counter" in netlist.registers else None
    assert diverged is None  # clean design has no counter


def test_pseudo_critical_cycles_default():
    netlist, spec = make("clean")
    detector = TrojanDetector(netlist, spec, max_cycles=30)
    assert detector.pseudo_critical_cycles == 15
    detector = TrojanDetector(
        netlist, spec, max_cycles=30, pseudo_critical_cycles=5
    )
    assert detector.pseudo_critical_cycles == 5


def test_functional_flag_controls_detection():
    # a value-corrupting design: wrong value on a valid way
    from repro.netlist import Circuit

    c = Circuit("valbug")
    reset = c.input("reset", 1)
    load = c.input("load", 1)
    key_in = c.input("key_in", 8)
    secret = c.reg("secret", 8)
    secret.drive(
        c.select(secret.q, (reset, c.const(0, 8)),
                 (load, key_in ^ c.const(0x80, 8)))
    )
    c.output("out", secret.q)
    netlist = c.finalize()
    spec = DesignSpec(name="valbug", critical={"secret": secret_spec()})
    strict = TrojanDetector(
        netlist, spec, max_cycles=8, functional=True, time_budget=60
    ).run()
    assert strict.trojan_found
    lax = TrojanDetector(
        netlist, spec, max_cycles=8, functional=False, time_budget=60
    ).run()
    assert not lax.trojan_found
