"""Register discovery tests."""

from repro.core import all_registers, pseudo_critical_candidates
from repro.properties import DesignSpec
from repro.properties.monitors import build_corruption_monitor

from tests.conftest import build_secret_design, secret_spec


def test_all_registers_excludes_monitors():
    nl = build_secret_design(trojan=True)
    monitor = build_corruption_monitor(nl, secret_spec())
    names = all_registers(monitor.netlist)
    assert "secret" in names
    assert not any(n.startswith("__mon") for n in names)


def test_candidates_same_width_only():
    nl = build_secret_design(trojan=True, pseudo=True)
    spec = DesignSpec(name="d", critical={"secret": secret_spec()})
    candidates = pseudo_critical_candidates(nl, spec, "secret")
    assert "pseudo_secret" in candidates
    assert "troj_counter" not in candidates  # 3-bit vs 8-bit
    assert "secret" not in candidates


def test_whitelist_and_blacklist():
    nl = build_secret_design(trojan=False, pseudo=True)
    spec = DesignSpec(
        name="d",
        critical={"secret": secret_spec()},
        exclude_registers=["pseudo_secret"],
    )
    assert pseudo_critical_candidates(nl, spec, "secret") == []
    spec2 = DesignSpec(
        name="d",
        critical={"secret": secret_spec()},
        candidate_registers=["pseudo_secret"],
    )
    assert pseudo_critical_candidates(nl, spec2, "secret") == [
        "pseudo_secret"
    ]
