"""Report object tests."""

from repro.bmc.engine import BmcResult
from repro.core.report import DetectionReport, RegisterFinding
from repro.properties import TrojanInfo
from repro.properties.bypass import BypassResult


def make_result(status, bound):
    return BmcResult(status=status, bound=bound)


def test_trusted_for_minimum_over_checks():
    report = DetectionReport(design="d", engine="bmc", max_cycles=10)
    f1 = RegisterFinding("r1", corruption=make_result("proved", 10))
    f2 = RegisterFinding("r2", corruption=make_result("proved", 7))
    report.findings = {"r1": f1, "r2": f2}
    assert not report.trojan_found
    assert report.trusted_for() == 7


def test_trojan_found_zeroes_trust():
    report = DetectionReport(design="d", engine="bmc", max_cycles=10)
    finding = RegisterFinding("r", corruption=make_result("violated", 4))
    finding.witness_confirmed = True
    report.findings = {"r": finding}
    assert report.trojan_found
    assert report.trusted_for() == 0
    assert "TROJAN FOUND" in report.summary()


def test_bypass_in_summary():
    report = DetectionReport(design="d", engine="bmc", max_cycles=10)
    finding = RegisterFinding("r", corruption=make_result("proved", 10))
    finding.bypass = BypassResult(
        status="violated", bound=3, p_value=1, q_value=2
    )
    report.findings = {"r": finding}
    assert finding.bypassed
    assert "BYPASSED" in report.summary()
    assert "p=0x1" in report.summary()


def test_pseudo_corruption_counts_as_trojan():
    report = DetectionReport(design="d", engine="bmc", max_cycles=10)
    finding = RegisterFinding("r", corruption=make_result("proved", 10))
    finding.pseudo_criticals = [("copy", "after")]
    finding.pseudo_corruptions = {"copy": make_result("violated", 5)}
    report.findings = {"r": finding}
    assert finding.pseudo_corrupted
    assert report.trojan_found
    assert "copy CORRUPTED" in report.summary()


def test_ground_truth_line():
    info = TrojanInfo(name="X-1", trigger="t", payload="does bad things",
                      target_register="r")
    report = DetectionReport(
        design="d", engine="atpg", max_cycles=5, trojan_info=info
    )
    report.findings = {"r": RegisterFinding(
        "r", corruption=make_result("proved", 5))}
    assert "X-1" in report.summary()
    assert "does bad things" in report.summary()


def test_degraded_checks_surface_in_summary():
    from repro.runner import CheckOutcome

    report = DetectionReport(design="d", engine="bmc", max_cycles=10)
    finding = RegisterFinding("r", corruption=make_result("unknown", 3))
    finding.check_outcomes["corruption(r)"] = CheckOutcome(
        name="corruption(r)", status="timeout", bound_reached=3,
        error="hard timeout: worker killed after 5.0s",
    )
    report.findings = {"r": finding}
    assert finding.status == "degraded"
    assert report.degraded
    text = report.summary()
    assert "degraded" in text
    assert "hard timeout" in text
    # the trust statement honors the partial bound, not max_cycles
    assert report.trusted_for() == 3


def test_ok_finding_reports_ok_status():
    finding = RegisterFinding("r", corruption=make_result("proved", 10))
    assert finding.status == "ok"
    assert finding.degraded_checks == {}
    assert finding.bound_reached == 10
