"""The shared-cone detector path must be a pure optimization.

``share_cones=True`` batches each register's Eq. (3) tracking checks
onto one unrolling; promotions, findings and outcome records must match
the sequential path exactly.
"""

from __future__ import annotations

from repro.core import TrojanDetector
from repro.properties.valid_ways import DesignSpec
from tests.conftest import build_secret_design, secret_spec


def detector(netlist, **kwargs):
    spec = DesignSpec(name="t", critical={"secret": secret_spec()})
    return TrojanDetector(
        netlist, spec, max_cycles=8, check_pseudo_critical=True,
        stop_on_first=False, **kwargs,
    )


def test_grouped_promotions_match_sequential():
    netlist = build_secret_design(trojan=False, pseudo=True)
    sequential = detector(netlist).run()
    grouped = detector(netlist, share_cones=True).run()
    assert (
        grouped.findings["secret"].pseudo_criticals
        == sequential.findings["secret"].pseudo_criticals
        == [("pseudo_secret", "after")]
    )
    assert grouped.trojan_found == sequential.trojan_found


def test_grouped_inverted_copy_still_promotes():
    # polarity learning must survive the grouped encoding
    netlist = build_secret_design(trojan=False, pseudo=True,
                                  invert_pseudo=True)
    grouped = detector(netlist, share_cones=True).run()
    assert grouped.findings["secret"].pseudo_criticals == [
        ("pseudo_secret", "after")
    ]


def test_grouped_records_both_direction_outcomes():
    netlist = build_secret_design(trojan=False, pseudo=True)
    finding = detector(netlist, share_cones=True).run().findings["secret"]
    names = [n for n in finding.check_outcomes if n.startswith("tracking(")]
    assert sorted(names) == [
        "tracking(secret->pseudo_secret,after)",
        "tracking(secret->pseudo_secret,before)",
    ]
    outcome = finding.check_outcomes["tracking(secret->pseudo_secret,after)"]
    assert outcome.status == "ok"
    assert outcome.result.status == "proved"
    assert outcome.result.bound == 4  # pseudo_critical_cycles = max(4, 8//2)


def test_share_cones_is_ignored_for_atpg_engines():
    netlist = build_secret_design(trojan=False, pseudo=True)
    report = detector(
        netlist, engine="atpg", share_cones=True, time_budget=30.0
    ).run()
    assert report.findings["secret"].pseudo_criticals == [
        ("pseudo_secret", "after")
    ]
