"""Bundle format: bit-exact round-trips and structured failures."""

import json

import pytest

from repro.corpus import (
    bundle_to_design,
    design_to_bundle,
    dumps_bundle,
    load_bundle,
    save_bundle,
)
from repro.errors import CorpusError
from repro.frontend import build_builtin
from repro.netlist.fingerprint import netlist_fingerprint

ROUND_TRIP = ["router", "router-redirect", "mc8051-t800", "risc-t100"]


@pytest.mark.parametrize("name", ROUND_TRIP)
def test_round_trip_is_fingerprint_identical(tmp_path, name):
    netlist, spec = build_builtin(name)
    path = tmp_path / "{}.design.json".format(name)
    save_bundle(str(path), netlist, spec, provenance={"origin": "test"})
    bundle = load_bundle(str(path))
    assert netlist_fingerprint(bundle.netlist) == netlist_fingerprint(
        netlist
    )
    assert sorted(bundle.spec.critical) == sorted(spec.critical)
    assert bundle.provenance == {"origin": "test"}
    assert (bundle.spec.trojan is None) == (spec.trojan is None)
    if spec.trojan is not None:
        assert bundle.spec.trojan.target_register == (
            spec.trojan.target_register
        )
        assert bundle.spec.trojan.trojan_nets == spec.trojan.trojan_nets


@pytest.mark.parametrize("name", ROUND_TRIP)
def test_reserialization_is_byte_identical(name):
    netlist, spec = build_builtin(name)
    first = dumps_bundle(design_to_bundle(netlist, spec))
    loaded = bundle_to_design(json.loads(first))
    second = dumps_bundle(
        design_to_bundle(loaded.netlist, loaded.spec)
    )
    assert first == second


def test_monitor_circuits_survive_the_round_trip():
    from repro.properties.monitors import build_corruption_monitor

    netlist, spec = build_builtin("router-redirect")
    loaded = bundle_to_design(design_to_bundle(netlist, spec))
    for register in spec.critical:
        original = build_corruption_monitor(
            netlist.clone(), spec.critical[register]
        )
        twin = build_corruption_monitor(
            loaded.netlist.clone(), loaded.spec.critical[register]
        )
        assert netlist_fingerprint(original.netlist) == (
            netlist_fingerprint(twin.netlist)
        )


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.design.json"
    path.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(CorpusError):
        load_bundle(str(path))


def test_wrong_version_rejected(tmp_path):
    netlist, spec = build_builtin("router")
    payload = design_to_bundle(netlist, spec)
    payload["version"] = 999
    path = tmp_path / "v999.design.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(CorpusError):
        load_bundle(str(path))


def test_unreadable_json_rejected(tmp_path):
    path = tmp_path / "torn.design.json"
    path.write_text('{"format": "repro-design-bundle", "vers')
    with pytest.raises(CorpusError):
        load_bundle(str(path))


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CorpusError):
        load_bundle(str(tmp_path / "nope.design.json"))
