"""Mutation-engine determinism and ground-truth plumbing."""

import hashlib
import json
import os

import pytest

from repro.corpus import (
    CorpusConfig,
    MUTATORS,
    build_mutant,
    generate_corpus,
    mutant_plans,
)
from repro.errors import CorpusError
from repro.frontend import build_builtin
from repro.netlist import validate


def _dir_digest(path):
    digest = hashlib.sha256()
    for name in sorted(os.listdir(path)):
        digest.update(name.encode("ascii"))
        with open(os.path.join(path, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def test_same_seed_regenerates_byte_identical_corpora(tmp_path):
    config = CorpusConfig(seed=7, count=9, bases=("router",))
    first = tmp_path / "a"
    second = tmp_path / "b"
    generate_corpus(config, str(first))
    generate_corpus(config, str(second))
    assert _dir_digest(str(first)) == _dir_digest(str(second))


def test_different_seeds_give_disjoint_fingerprints(tmp_path):
    fingerprints = {}
    for seed in (1, 2):
        manifest = generate_corpus(
            CorpusConfig(seed=seed, count=8, bases=("router",)),
            str(tmp_path / str(seed)),
        )
        fingerprints[seed] = {
            entry["fingerprint"] for entry in manifest["mutants"]
        }
    assert not (fingerprints[1] & fingerprints[2])


def test_plans_round_robin_mutators_and_bases():
    config = CorpusConfig(
        seed=0, count=12, bases=("router", "risc"),
        mutators=("comb-trigger", "output-tap"),
    )
    plans = mutant_plans(config)
    assert [p.mutator for p in plans[:4]] == [
        "comb-trigger", "output-tap", "comb-trigger", "output-tap",
    ]
    assert plans[0].base == "router"
    assert plans[2].base == "risc"
    # balanced: every (base, mutator) pair appears count/4 times
    pairs = {}
    for plan in plans:
        pairs[(plan.base, plan.mutator)] = (
            pairs.get((plan.base, plan.mutator), 0) + 1
        )
    assert set(pairs.values()) == {3}


def test_unknown_mutator_rejected():
    with pytest.raises(CorpusError):
        mutant_plans(CorpusConfig(mutators=("no-such-mutator",)))


@pytest.mark.parametrize("mutator", sorted(MUTATORS))
def test_every_mutator_builds_a_valid_mutant(mutator):
    netlist, spec = build_builtin("router")
    config = CorpusConfig(
        seed=3, count=1, bases=("router",), mutators=(mutator,)
    )
    plan = mutant_plans(config)[0]
    mutant = build_mutant(plan, netlist, spec, corpus_seed=3)
    validate(mutant.netlist)
    assert "corpus_tag" in mutant.netlist.registers
    assert mutant.provenance["mutator"] == mutator
    trojaned = MUTATORS[mutator].trojaned
    assert mutant.provenance["trojaned"] is trojaned
    if trojaned:
        assert mutant.spec.trojan is not None
        assert mutant.spec.trojan.target_register in (
            mutant.netlist.registers
        )
        assert mutant.spec.trojan.trojan_nets
    else:
        assert mutant.spec.trojan is None
        assert mutant.provenance["target_register"] is None


def test_base_netlist_is_never_mutated():
    from repro.netlist.fingerprint import netlist_fingerprint

    netlist, spec = build_builtin("router")
    before = netlist_fingerprint(netlist)
    config = CorpusConfig(seed=5, count=6, bases=("router",))
    for plan in mutant_plans(config):
        build_mutant(plan, netlist, spec, corpus_seed=5)
    assert netlist_fingerprint(netlist) == before


def test_manifest_records_ground_truth(tmp_path):
    config = CorpusConfig(seed=11, count=6, bases=("router",))
    manifest = generate_corpus(config, str(tmp_path))
    assert manifest["format"] == "repro-corpus"
    assert manifest["config"]["seed"] == 11
    on_disk = json.loads((tmp_path / "corpus.json").read_text())
    assert on_disk == manifest
    for entry in manifest["mutants"]:
        assert (tmp_path / entry["file"]).exists()
        assert entry["trojaned"] == (
            MUTATORS[entry["mutator"]].trojaned
        )
