"""Corpus runner: recall scoring, gating and report determinism."""

import pytest

from repro.corpus import (
    CorpusConfig,
    RunConfig,
    detection_gate,
    dumps_report,
    generate_corpus,
    run_corpus,
    score_results,
)
from repro.errors import CorpusError


@pytest.fixture(scope="module")
def small_corpus(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    generate_corpus(
        CorpusConfig(seed=13, count=6, bases=("router",)), str(out)
    )
    return str(out)


def test_default_mutators_are_fully_detected(small_corpus):
    rows = run_corpus(small_corpus, RunConfig())
    report = score_results(rows, RunConfig())
    assert report["totals"]["recall"] == 1.0
    assert report["totals"]["fp_rate"] == 0.0
    assert report["missed"] == []
    assert report["false_positives"] == []
    assert detection_gate(report) == 0


def test_report_is_byte_identical_across_reruns(small_corpus):
    config = RunConfig()
    first = dumps_report(
        score_results(run_corpus(small_corpus, config), config)
    )
    second = dumps_report(
        score_results(run_corpus(small_corpus, config), config)
    )
    assert first == second


def test_parallel_rows_match_serial(small_corpus):
    serial = run_corpus(small_corpus, RunConfig(jobs=1))
    parallel = run_corpus(small_corpus, RunConfig(jobs=4))
    assert serial == parallel


def test_missed_trojan_trips_the_gate(small_corpus):
    # lint alone cannot see every restructured trigger, so a weaker
    # portfolio has misses — and the gate must say so
    rows = run_corpus(small_corpus, RunConfig(modalities=("lint",)))
    report = score_results(rows, RunConfig(modalities=("lint",)))
    trojaned = [r for r in rows if r["trojaned"]]
    undetected = [r for r in trojaned if not r["detected"]]
    assert detection_gate(report) == (1 if undetected else 0)
    assert sorted(r["name"] for r in undetected) == report["missed"]


def test_per_mutator_table_sums_to_totals(small_corpus):
    report = score_results(run_corpus(small_corpus, RunConfig()))
    totals = report["totals"]
    assert totals["mutants"] == sum(
        s["mutants"] for s in report["per_mutator"].values()
    )
    assert totals["trojaned"] == sum(
        s["trojaned"] for s in report["per_mutator"].values()
    )
    assert totals["clean"] == totals["mutants"] - totals["trojaned"]


def test_missing_corpus_dir_rejected(tmp_path):
    with pytest.raises(CorpusError):
        run_corpus(str(tmp_path / "empty"))
