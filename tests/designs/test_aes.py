"""Gate-level AES tests against the FIPS-197 reference."""

import random

import pytest

from repro.designs import aes_ref
from repro.designs.aes import build_aes
from repro.netlist import validate
from repro.sim import SequentialSimulator


@pytest.fixture(scope="module")
def aes():
    netlist, spec = build_aes()
    validate(netlist)
    return netlist, spec


def encrypt_on_core(netlist, plaintext, key, max_wait=14):
    sim = SequentialSimulator(netlist)
    sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0, "pt_in": 0})
    sim.step({"reset": 0, "load_key": 1, "key_in": key})
    sim.step({"load_key": 0, "start": 1, "pt_in": plaintext})
    sim.set_input("start", 0)
    for _ in range(max_wait):
        if sim.register_value("done"):
            break
        sim.step()
    assert sim.register_value("done") == 1
    return sim.output_value("ct_out")


class TestReferenceModel:
    def test_fips_vector(self):
        assert (
            aes_ref.encrypt(aes_ref.FIPS_PLAINTEXT, aes_ref.FIPS_KEY)
            == aes_ref.FIPS_CIPHERTEXT
        )

    def test_round_keys_count(self):
        keys = aes_ref.round_keys(aes_ref.FIPS_KEY)
        assert len(keys) == 11
        assert keys[0] == aes_ref.block_to_bytes(aes_ref.FIPS_KEY)

    def test_xtime(self):
        assert aes_ref.xtime(0x57) == 0xAE
        assert aes_ref.xtime(0xAE) == 0x47  # reduction kicks in

    def test_shift_rows_is_permutation(self):
        state = list(range(16))
        shifted = aes_ref.shift_rows(state)
        assert sorted(shifted) == state
        assert shifted != state


class TestGateLevel:
    def test_fips_vector_gate_level(self, aes):
        nl, _ = aes
        ct = encrypt_on_core(nl, aes_ref.FIPS_PLAINTEXT, aes_ref.FIPS_KEY)
        assert ct == aes_ref.FIPS_CIPHERTEXT

    def test_random_vectors(self, aes):
        nl, _ = aes
        rng = random.Random(17)
        for _ in range(2):
            pt = rng.getrandbits(128)
            key = rng.getrandbits(128)
            assert encrypt_on_core(nl, pt, key) == aes_ref.encrypt(pt, key)

    def test_key_register_holds_between_loads(self, aes):
        nl, _ = aes
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0xDEADBEEF})
        sim.step({"load_key": 0})
        for _ in range(5):
            sim.step()
        assert sim.register_value("key_register") == 0xDEADBEEF

    def test_busy_done_protocol(self, aes):
        nl, _ = aes
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "start": 1, "pt_in": 1})
        sim.set_input("start", 0)
        cycles = 0
        while not sim.register_value("done"):
            assert sim.register_value("busy") == 1
            sim.step()
            cycles += 1
            assert cycles < 15
        assert cycles == 10  # ten rounds

    def test_key_cone_excludes_round_datapath(self, aes):
        """The paper's COI argument: the key register's cone is a tiny
        slice of the 12k-cell core."""
        from repro.netlist import cone_of_influence

        nl, _ = aes
        _nets, cells, _flops = cone_of_influence(
            nl, nl.register_q_nets("key_register")
        )
        assert len(cells) < len(nl.cells) / 10


def test_spec(aes):
    _nl, spec = aes
    assert "key_register" in spec.critical
    assert spec.critical["key_register"].observe_latency >= 10
