"""Section 4 attack transformation tests (Figures 2/3 + the OWF limit)."""

import pytest

from repro.bmc import BmcEngine, confirms_violation
from repro.designs.trojans import (
    add_bypass,
    add_owf_trigger,
    add_pseudo_critical,
)
from repro.netlist import validate
from repro.properties.bypass import BypassChecker, validate_bypass
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)

from tests.conftest import build_secret_design


@pytest.fixture
def base():
    return build_secret_design(trojan=False)


class TestAttack1:
    def test_faithful_copy_is_pseudo_critical(self, base, spec):
        attacked, info = add_pseudo_critical(base, "secret", invert=True)
        validate(attacked)
        assert info.trigger_cycles == 0
        monitor = build_tracking_monitor(attacked, spec, "pseudo_secret")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"

    def test_corrupting_copy_evades_eq2(self, base, spec):
        attacked, _info = add_pseudo_critical(
            base, "secret", corrupt=True, trigger_input="key_in"
        )
        monitor = build_corruption_monitor(attacked, spec, functional=False)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"  # original register untouched

    def test_corrupting_copy_caught_by_eq3(self, base, spec):
        attacked, _info = add_pseudo_critical(
            base, "secret", invert=True, corrupt=True, trigger_input="key_in"
        )
        monitor = build_tracking_monitor(attacked, spec, "pseudo_secret")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.detected
        assert confirms_violation(
            monitor.netlist, result.witness, monitor.violation_net
        )

    def test_fanout_actually_rerouted(self, base):
        attacked, _info = add_pseudo_critical(base, "secret")
        from repro.netlist.traversal import transitive_fanout_outputs

        copy_q = attacked.register_q_nets("pseudo_secret")
        assert "out" in transitive_fanout_outputs(attacked, copy_q)


class TestAttack2:
    def test_bypass_evades_eq2(self, base, spec):
        attacked, _info = add_bypass(base, "secret", trigger_input="key_in")
        validate(attacked)
        monitor = build_corruption_monitor(attacked, spec, functional=False)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(8)
        assert result.status == "proved"

    def test_bypass_caught_by_eq4(self, base, spec):
        attacked, _info = add_bypass(base, "secret", trigger_input="key_in")
        result = BypassChecker(attacked, spec).check(6, time_budget=60)
        assert result.detected
        assert validate_bypass(attacked, result, "secret")

    def test_register_still_updates_itself(self, base):
        from repro.sim import SequentialSimulator

        attacked, _info = add_bypass(base, "secret", trigger_input="key_in")
        sim = SequentialSimulator(attacked)
        sim.step({"reset": 0, "load": 1, "key_in": 0x5D})
        assert sim.register_value("secret") == 0x5D


class TestOwf:
    def test_engines_give_up(self, base, spec):
        attacked, info = add_owf_trigger(base, "secret", rounds=12)
        validate(attacked)
        assert "ARX" in info.trigger
        monitor = build_corruption_monitor(attacked, spec, functional=False)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(
            40, time_budget=3
        )
        assert result.status == "unknown"

    def test_mixer_state_advances(self, base):
        from repro.sim import SequentialSimulator

        attacked, _info = add_owf_trigger(base, "secret", rounds=4)
        sim = SequentialSimulator(attacked)
        seen = set()
        for k in range(10):
            sim.step({"reset": 0, "load": 0, "key_in": k * 37 % 256})
            seen.add(sim.register_value("owf_state"))
        assert len(seen) > 5  # the mixer genuinely evolves
