"""MC8051 core tests with a cycle-level golden model."""

import random

import pytest

from repro.designs.mc8051 import (
    ADD_A_DATA,
    INT_VECTOR,
    LCALL,
    MOV_A_DATA,
    MOV_B_DATA,
    MOV_IE_DATA,
    MOVX_A_DPTR,
    MOVX_A_R1,
    MOVX_R1_A,
    NOP,
    POP,
    PUSH,
    RET,
    RETI,
    SJMP,
    SP_RESET,
    build_mc8051,
    instruction,
)
from repro.netlist import validate
from repro.sim import SequentialSimulator


class Mc8051Golden:
    def __init__(self):
        self.acc = 0
        self.b = 0
        self.sp = SP_RESET
        self.ie = 0
        self.pc = 0
        self.uart = 0
        self.carry = 0

    def step(self, word, xdata=0, ext_int=0, uart_rx=0, uart_valid=0):
        op = (word >> 8) & 0xFF
        operand = word & 0xFF
        taken = bool(self.ie & 0x80) and bool(self.ie & 0x01) and ext_int
        if taken:
            self.sp = (self.sp + 2) & 0xFF
            self.pc = INT_VECTOR
        else:
            if op == MOV_A_DATA:
                self.acc = operand
            elif op in (MOVX_A_R1, MOVX_A_DPTR):
                self.acc = xdata
            elif op == ADD_A_DATA:
                total = self.acc + operand
                self.acc = total & 0xFF
                self.carry = int(total > 0xFF)
            elif op == MOV_B_DATA:
                self.b = operand
            elif op == MOV_IE_DATA:
                self.ie = operand
            if op == PUSH:
                self.sp = (self.sp + 1) & 0xFF
            elif op == POP:
                self.sp = (self.sp - 1) & 0xFF
            elif op == LCALL:
                self.sp = (self.sp + 2) & 0xFF
            elif op in (RET, RETI):
                self.sp = (self.sp - 2) & 0xFF
            if op in (LCALL, SJMP):
                self.pc = operand
            else:
                self.pc = (self.pc + 1) & 0xFF
        if uart_valid:
            self.uart = uart_rx

    def state(self):
        return dict(
            acc=self.acc,
            b_reg=self.b,
            stack_pointer=self.sp,
            interrupt_enable=self.ie,
            program_counter=self.pc,
            uart_data=self.uart,
            carry=self.carry,
        )


@pytest.fixture(scope="module")
def mc8051():
    netlist, spec = build_mc8051()
    validate(netlist)
    return netlist, spec


def run(netlist, sequence):
    sim = SequentialSimulator(netlist)
    golden = Mc8051Golden()
    for word, xdata, ext, urx, uv in sequence:
        sim.step(
            {
                "reset": 0,
                "instr": word,
                "xdata_in": xdata,
                "ext_interrupt": ext,
                "uart_rx": urx,
                "uart_valid": uv,
            }
        )
        golden.step(word, xdata, ext, urx, uv)
        for name, expected in golden.state().items():
            assert sim.register_value(name) == expected, (name, hex(word))
    return sim, golden


def I(op, operand=0, xdata=0, ext=0, urx=0, uv=0):  # noqa: E743
    return (instruction(op, operand), xdata, ext, urx, uv)


class TestDirected:
    def test_accumulator_ops(self, mc8051):
        nl, _ = mc8051
        run(nl, [
            I(MOV_A_DATA, 0x42),
            I(ADD_A_DATA, 0xC0),  # overflow sets carry
            I(MOVX_A_R1, xdata=0x99),
            I(MOV_B_DATA, 0x13),
        ])

    def test_stack_discipline(self, mc8051):
        nl, _ = mc8051
        _sim, golden = run(nl, [
            I(PUSH), I(PUSH), I(LCALL, 0x30), I(RET), I(POP),
        ])
        assert golden.sp == SP_RESET + 2 + 2 - 2 - 1

    def test_interrupt_entry(self, mc8051):
        nl, _ = mc8051
        _sim, golden = run(nl, [
            I(MOV_IE_DATA, 0x81),
            I(NOP, ext=1),
        ])
        assert golden.pc == INT_VECTOR
        assert golden.sp == SP_RESET + 2

    def test_interrupt_masked(self, mc8051):
        nl, _ = mc8051
        _sim, golden = run(nl, [
            I(MOV_IE_DATA, 0x80),  # EA set but EX0 clear
            I(NOP, ext=1),
        ])
        assert golden.pc != INT_VECTOR

    def test_uart_latch(self, mc8051):
        nl, _ = mc8051
        sim, _g = run(nl, [
            I(NOP, urx=0xAB, uv=1),
            I(NOP, urx=0xCD, uv=0),
        ])
        assert sim.register_value("uart_data") == 0xAB


def test_random_streams_match_golden(mc8051):
    nl, _ = mc8051
    rng = random.Random(99)
    ops = [NOP, MOV_A_DATA, MOVX_A_R1, MOVX_A_DPTR, MOVX_R1_A, ADD_A_DATA,
           PUSH, POP, LCALL, RET, SJMP, MOV_IE_DATA, MOV_B_DATA, RETI]
    sequence = []
    for _ in range(150):
        sequence.append(
            (
                instruction(rng.choice(ops), rng.getrandbits(8)),
                rng.getrandbits(8),
                int(rng.random() < 0.1),
                rng.getrandbits(8),
                rng.getrandbits(1),
            )
        )
    run(nl, sequence)


def test_spec_registers(mc8051):
    _nl, spec = mc8051
    for name in ("acc", "stack_pointer", "interrupt_enable", "uart_data",
                 "program_counter"):
        assert name in spec.critical
    assert spec.pinned_inputs == {"reset": 0}
