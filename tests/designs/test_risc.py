"""RISC core tests: an instruction-level golden model is simulated against
the gate-level netlist over directed and random programs."""

import random

import pytest

from repro.designs.risc import (
    ADDLW,
    ANDLW,
    CALL,
    EEREAD,
    EEWRITE,
    GOTO,
    IORLW,
    MOVF,
    MOVLW,
    MOVWF,
    NOP,
    RETURN,
    SLEEP,
    SUBLW,
    XORLW,
    build_risc,
    instruction,
)
from repro.netlist import validate
from repro.sim import SequentialSimulator


class RiscGolden:
    """Instruction-level golden model mirroring the 4-cycle core.

    One call to :meth:`window` models a full 4-clock instruction window:
    the currently-latched instruction executes, then the next instruction
    is fetched. Stalled/sleeping windows execute as NOP.
    """

    def __init__(self):
        self.pc = 0
        self.sp = 0
        self.stack = [0] * 8
        self.w = 0
        self.ram = [0] * 16
        self.ee_data = 0
        self.ee_addr = 0
        self.sleep = 0
        self.ie = 0
        self.stall = 0
        self.ir = 0

    def window(self, instr_in, eeprom_in=0, ext_int=0):
        if ext_int:
            self.ie = 1
            if self.sleep:
                self.sleep = 0
        suppressed = self.stall or self.sleep
        op = (self.ir >> 10) & 0xF if not suppressed else NOP
        operand = self.ir & 0xFF if not suppressed else 0
        f = operand & 0xF
        # the EEPROM address register and RAM[9] update on the same clock
        # edge: the address always sees the pre-write RAM value
        ram9_old = self.ram[0x09]
        interrupt = self.ie and not self.stall and not self.sleep
        branch = False
        overflow = False
        # phase 2: RETURN pops
        if op == RETURN:
            self.sp = (self.sp - 1) & 7
        # phase 3: CALL pushes
        if op == CALL:
            self.stack[self.sp] = (self.pc + 1) & 0xFF
        # phase 4 updates
        if op == ADDLW:
            total = self.w + operand
            overflow = total > 0xFF
            self.w = total & 0xFF
        elif op == MOVLW:
            self.w = operand
        elif op == ANDLW:
            self.w &= operand
        elif op == IORLW:
            self.w |= operand
        elif op == XORLW:
            self.w ^= operand
        elif op == SUBLW:
            self.w = (operand - self.w) & 0xFF
        elif op == MOVF:
            self.w = self.ram[f]
        elif op == MOVWF and f != 0x02:
            self.ram[f] = self.w
        # interrupt-enable update, matching the design's priority order:
        # set events (ext/overflow/write-complete) beat the taken/retfie
        # clears; events at phase 4 affect the *next* window's decision
        set_events = ext_int or overflow or (op == EEWRITE)
        if set_events:
            new_ie = 1
        elif interrupt or op == 0xF:  # taken or RETFIE
            new_ie = 0
        else:
            new_ie = self.ie
        # interrupt beats instruction PC updates
        movwf_pcl = op == MOVWF and f == 0x02
        if interrupt:
            self.pc = 0x04
            branch = True
        elif op == RETURN:
            self.pc = self.stack[self.sp]
            branch = True
        elif op in (GOTO, CALL):
            self.pc = operand
            branch = True
        elif movwf_pcl:
            self.pc = self.w
            branch = True
        elif not self.stall and not self.sleep:
            self.pc = (self.pc + 1) & 0xFF
        if op == CALL:
            self.sp = (self.sp + 1) & 7
        self.ie = new_ie
        if op == EEREAD and not self.stall:
            self.ee_data = eeprom_in
        if not self.stall and not self.sleep:
            self.ee_addr = ram9_old
        if op == SLEEP:
            self.sleep = 1
        self.stall = 1 if branch else 0
        self.ir = instr_in

    def state(self):
        return dict(
            program_counter=self.pc,
            stack_pointer=self.sp,
            w_register=self.w,
            eeprom_data=self.ee_data,
            eeprom_address=self.ee_addr,
            sleep_flag=self.sleep,
            interrupt_enable=self.ie,
            stall=self.stall,
        )


@pytest.fixture(scope="module")
def risc():
    netlist, spec = build_risc()
    validate(netlist)
    return netlist, spec


def run_program(netlist, program, eeprom=None, ext=None):
    """Run instruction windows; returns the simulator afterwards."""
    sim = SequentialSimulator(netlist)
    golden = RiscGolden()
    eeprom = eeprom or [0] * len(program)
    ext = ext or [0] * len(program)
    for word, ee, xi in zip(program, eeprom, ext):
        for _ in range(4):
            sim.step(
                {
                    "reset": 0,
                    "instr_in": word,
                    "eeprom_in": ee,
                    "ext_interrupt": xi,
                }
            )
        golden.window(word, ee, xi)
        for name, expected in golden.state().items():
            assert sim.register_value(name) == expected, (
                name,
                hex(word),
                expected,
                sim.register_value(name),
            )
    return sim, golden


class TestDirectedPrograms:
    def test_alu_program(self, risc):
        nl, _spec = risc
        run_program(
            nl,
            [
                instruction(MOVLW, 0x21),
                instruction(ADDLW, 0x11),
                instruction(ANDLW, 0x0F),
                instruction(IORLW, 0xF0),
                instruction(XORLW, 0xFF),
                instruction(SUBLW, 0x10),
                instruction(NOP),
            ],
        )

    def test_memory_and_eeprom(self, risc):
        nl, _spec = risc
        sim, golden = run_program(
            nl,
            [
                instruction(MOVLW, 0x5A),
                instruction(MOVWF, 0x9),
                instruction(NOP),
                instruction(EEREAD),
                instruction(NOP),
                instruction(NOP),
            ],
            eeprom=[0, 0, 0, 0, 0xCD, 0],
        )
        assert golden.ee_addr == 0x5A
        assert sim.register_value("eeprom_data") == 0xCD

    def test_call_return(self, risc):
        nl, _spec = risc
        sim, golden = run_program(
            nl,
            [
                instruction(NOP),
                instruction(CALL, 0x40),
                instruction(NOP),  # flushed slot
                instruction(NOP),
                instruction(RETURN),
                instruction(NOP),
                instruction(NOP),
            ],
        )
        assert golden.sp == 0

    def test_sleep_freezes(self, risc):
        nl, _spec = risc
        sim, golden = run_program(
            nl,
            [
                instruction(MOVLW, 5),
                instruction(SLEEP),
                instruction(NOP),
                instruction(MOVLW, 9),  # must not execute: asleep
                instruction(NOP),
            ],
        )
        assert golden.sleep == 1
        assert sim.register_value("w_register") == 5

    def test_wake_on_interrupt(self, risc):
        nl, _spec = risc
        sim, golden = run_program(
            nl,
            [
                instruction(SLEEP),
                instruction(NOP),
                instruction(NOP),
                instruction(NOP),
                instruction(NOP),
            ],
            ext=[0, 0, 1, 0, 0],
        )
        assert golden.sleep == 0


def test_random_programs_match_golden_model(risc):
    nl, _spec = risc
    rng = random.Random(2026)
    program = []
    ext = []
    for _ in range(60):
        op = rng.choice(
            [NOP, GOTO, CALL, RETURN, MOVLW, ADDLW, MOVWF, MOVF,
             EEREAD, EEWRITE, ANDLW, IORLW, XORLW, SUBLW]
        )
        program.append(instruction(op, rng.getrandbits(8)))
        ext.append(int(rng.random() < 0.05))
    eeprom = [rng.getrandbits(8) for _ in program]
    run_program(nl, program, eeprom=eeprom, ext=ext)


def test_spec_covers_table2_registers(risc):
    _nl, spec = risc
    for name in (
        "program_counter",
        "stack_pointer",
        "interrupt_enable",
        "eeprom_data",
        "eeprom_address",
        "instruction_register",
        "sleep_flag",
    ):
        assert name in spec.critical


def test_reset_pinned_in_spec(risc):
    _nl, spec = risc
    assert spec.pinned_inputs == {"reset": 0}
