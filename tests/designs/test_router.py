"""Router design + redirection-Trojan tests."""

import pytest

from repro.core import TrojanDetector
from repro.designs.router import (
    body_flit,
    build_router,
    header_flit,
    router_redirect_trojan,
)
from repro.netlist import validate
from repro.sim import SequentialSimulator


def send(sim, flit, valid=1):
    sim.step({"reset": 0, "in_valid": valid, "in_flit": flit})


class TestCleanRouter:
    def test_packet_streams_to_destination(self):
        nl, _spec = build_router()
        validate(nl)
        sim = SequentialSimulator(nl)
        send(sim, header_flit(dest=2))
        assert sim.register_value("dest_register") == 2
        send(sim, body_flit(0xABC))
        sim.propagate()
        assert sim.output_value("port_valid") == 1 << 2
        assert sim.output_value("port_data") == 0xABC
        assert sim.register_value("busy") == 1
        send(sim, body_flit(0x123, tail=True))
        assert sim.register_value("busy") == 0  # tail closes the packet

    def test_header_ignored_while_busy(self):
        nl, _spec = build_router()
        sim = SequentialSimulator(nl)
        send(sim, header_flit(dest=1))
        send(sim, header_flit(dest=3))  # mid-packet header: must not latch
        assert sim.register_value("dest_register") == 1

    def test_clean_router_certified(self):
        nl, spec = build_router()
        report = TrojanDetector(
            nl, spec, max_cycles=10, engine="bmc", time_budget=60
        ).run()
        assert not report.trojan_found

    def test_clean_router_unbounded_certification(self):
        from repro.bmc import prove_by_induction
        from repro.properties.monitors import build_corruption_monitor

        nl, spec = build_router()
        monitor = build_corruption_monitor(
            nl, spec.critical["dest_register"], functional=False
        )
        result = prove_by_induction(
            monitor.netlist, monitor.violation_net, max_k=3,
            pinned_inputs=spec.pinned_inputs,
        )
        assert result.proved_forever


class TestRedirectTrojan:
    def test_redirection_behaviour(self):
        nl, spec = router_redirect_trojan(attacker_port=3, magic=0xBAD)
        sim = SequentialSimulator(nl)
        send(sim, header_flit(dest=0))
        send(sim, body_flit(0xBAD))
        send(sim, body_flit(0xBAD))
        send(sim, body_flit(0x111))
        assert sim.register_value("dest_register") == 3  # stolen
        sim.propagate()

    def test_dormant_without_magic(self):
        nl, _spec = router_redirect_trojan()
        sim = SequentialSimulator(nl)
        send(sim, header_flit(dest=1))
        for payload in (0xBAD, 0x001, 0xBAD, 0x002):
            send(sim, body_flit(payload))  # never twice in a row
        assert sim.register_value("dest_register") == 1

    @pytest.mark.parametrize("engine", ["bmc", "atpg"])
    def test_detected_by_algorithm1(self, engine):
        nl, spec = router_redirect_trojan()
        report = TrojanDetector(
            nl, spec, max_cycles=10, engine=engine, time_budget=90
        ).run(registers=["dest_register"])
        finding = report.findings["dest_register"]
        assert finding.corrupted
        assert finding.witness_confirmed
        # the witness must carry the magic payload twice in a row
        payloads = [
            words["in_flit"] & 0xFFF
            for words in finding.corruption.witness.inputs
            if words["in_valid"]
        ]
        assert any(
            a == 0xBAD and b == 0xBAD
            for a, b in zip(payloads, payloads[1:])
        )
