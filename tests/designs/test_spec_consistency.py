"""Spec/design consistency: every bundled design's valid-way spec must be
buildable against its netlist — conditions are 1-bit, expected values match
register widths, monitors synthesize and validate structurally, and every
way carries the textual expression the assertion writer needs."""

import pytest

from repro.frontend import BUILTIN_DESIGNS as DESIGNS
from repro.frontend import build_builtin as build_design
from repro.netlist import validate
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)
from repro.properties.sva import render_spec

ALL_DESIGNS = sorted(DESIGNS)


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_monitors_build_for_every_critical_register(name):
    netlist, spec = build_design(name)
    validate(netlist)
    for register, reg_spec in spec.critical.items():
        monitor = build_corruption_monitor(netlist, reg_spec,
                                           functional=True)
        validate(monitor.netlist)
        assert monitor.objective_net != monitor.violation_net or True
        assert register in monitor.property_name


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_assertion_text_renders(name):
    _netlist, spec = build_design(name)
    for reg_spec in spec.critical.values():
        text = render_spec(reg_spec)
        assert "p_no_corruption_{}".format(reg_spec.register) in text


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_pinned_inputs_are_real_ports(name):
    netlist, spec = build_design(name)
    for port, word in spec.pinned_inputs.items():
        assert port in netlist.inputs
        assert 0 <= word < (1 << len(netlist.inputs[port]))


@pytest.mark.parametrize("name", ["risc", "mc8051", "aes", "router"])
def test_tracking_monitor_builds_against_same_width_register(name):
    netlist, spec = build_design(name)
    for register, reg_spec in spec.critical.items():
        width = netlist.register_width(register)
        candidates = [
            other
            for other in netlist.registers
            if other != register
            and netlist.register_width(other) == width
            and not other.startswith("__mon")
        ]
        if not candidates:
            continue
        monitor = build_tracking_monitor(netlist, reg_spec, candidates[0])
        validate(monitor.netlist)
        assert len(monitor.bit_objectives) == width


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_trojan_metadata_consistent(name):
    netlist, spec = build_design(name)
    if spec.trojan is None:
        return
    assert spec.trojan.target_register in spec.critical
    assert spec.trojan.trigger_cycles >= 1
    # the recorded trojan nets exist in the netlist
    for net in list(spec.trojan.trojan_nets)[:20]:
        assert 0 <= net < netlist.num_nets
