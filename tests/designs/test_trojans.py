"""Trojan behavioural tests: each Trojan's trigger/payload verified by
direct simulation (no formal engines involved), plus dormancy checks —
an untriggered Trojan must leave the design functionally identical to the
clean core (the Trust-Hub property that functional verification passes)."""

import random

from repro.designs.mc8051 import (
    MOV_A_DATA,
    MOV_IE_DATA,
    MOVX_A_DPTR,
    MOVX_A_R1,
    MOVX_R1_A,
    NOP as M_NOP,
    instruction as m_instr,
)
from repro.designs.risc import (
    ADDLW,
    MOVLW,
    NOP,
    build_risc,
    instruction as r_instr,
)
from repro.designs.trojans import (
    aes_t700,
    aes_t800,
    aes_t1200,
    mc8051_t400,
    mc8051_t700,
    mc8051_t800,
    risc_figure1,
    risc_t100,
    risc_t300,
    risc_t400,
)
from repro.designs.trojans.aes_trojans import T700_PLAINTEXT, T800_SEQUENCE
from repro.netlist import validate
from repro.sim import SequentialSimulator


def risc_window(sim, word, ee=0, ext=0):
    for _ in range(4):
        sim.step({"reset": 0, "instr_in": word, "eeprom_in": ee,
                  "ext_interrupt": ext})


class TestRiscTrojans:
    def test_t100_pc_skips(self):
        nl, spec = risc_t100(trigger_count=2)
        validate(nl)
        sim = SequentialSimulator(nl)
        risc_window(sim, r_instr(NOP))  # fetch pipeline fill
        for _ in range(2):
            risc_window(sim, r_instr(MOVLW, 1))
        risc_window(sim, r_instr(NOP))  # second MOVLW executes here
        pc_before = sim.register_value("program_counter")
        risc_window(sim, r_instr(NOP))
        # triggered: PC advances by 2 instead of 1
        assert sim.register_value("program_counter") == (pc_before + 2) & 0xFF
        assert spec.trojan.target_register == "program_counter"

    def test_t300_eeprom_data_loads_without_read(self):
        nl, _spec = risc_t300(trigger_count=2)
        sim = SequentialSimulator(nl)
        risc_window(sim, r_instr(NOP), ee=0x11)
        for _ in range(2):
            risc_window(sim, r_instr(ADDLW, 1), ee=0x22)
        risc_window(sim, r_instr(NOP), ee=0x77)
        risc_window(sim, r_instr(NOP), ee=0x78)
        # EEPROM read never asserted, yet the register changed
        assert sim.register_value("eeprom_data") == 0x78

    def test_t400_address_zeroed_during_stall(self):
        from repro.designs.risc import GOTO, MOVWF

        nl, _spec = risc_t400(trigger_count=2)
        sim = SequentialSimulator(nl)
        risc_window(sim, r_instr(MOVLW, 0x5A))
        risc_window(sim, r_instr(MOVWF, 0x9))
        risc_window(sim, r_instr(GOTO, 0x10))
        risc_window(sim, r_instr(NOP))  # GOTO executes; address loaded
        assert sim.register_value("eeprom_address") == 0x5A
        assert sim.register_value("stall") == 1
        risc_window(sim, r_instr(NOP))  # stalled slot: payload strikes
        assert sim.register_value("eeprom_address") == 0x00

    def test_figure1_sp_decrements_by_two(self):
        nl, _spec = risc_figure1(trigger_count=2)
        sim = SequentialSimulator(nl)
        risc_window(sim, r_instr(NOP))
        for _ in range(2):
            risc_window(sim, r_instr(MOVLW, 0))
        risc_window(sim, r_instr(NOP))  # second MOVLW executes here
        sp_before = sim.register_value("stack_pointer")
        risc_window(sim, r_instr(NOP))
        assert sim.register_value("stack_pointer") == (sp_before - 2) % 8

    def test_dormant_matches_clean(self):
        clean, _ = build_risc()
        infected, _ = risc_t100(trigger_count=50)  # never triggers here
        s1, s2 = SequentialSimulator(clean), SequentialSimulator(infected)
        rng = random.Random(5)
        for _ in range(80):
            word = r_instr(rng.choice([NOP, MOVLW, ADDLW]), rng.getrandbits(8))
            ins = {"reset": 0, "instr_in": word,
                   "eeprom_in": rng.getrandbits(8), "ext_interrupt": 0}
            s1.step(ins)
            s2.step(ins)
            for reg in clean.registers:
                assert s1.register_value(reg) == s2.register_value(reg)


class TestMc8051Trojans:
    def mstep(self, sim, word, **kw):
        ins = {"reset": 0, "instr": word, "ext_interrupt": 0,
               "xdata_in": 0, "uart_rx": 0, "uart_valid": 0}
        ins.update(kw)
        sim.step(ins)

    def test_t400_sequence_kills_interrupts(self):
        nl, spec = mc8051_t400()
        sim = SequentialSimulator(nl)
        self.mstep(sim, m_instr(MOV_IE_DATA, 0x81))
        assert sim.register_value("interrupt_enable") == 0x81
        for op in (MOV_A_DATA, MOVX_A_R1, MOVX_A_DPTR, MOVX_R1_A):
            self.mstep(sim, m_instr(op))
        self.mstep(sim, m_instr(M_NOP))
        assert sim.register_value("interrupt_enable") == 0x00
        # and MOV IE can no longer set it
        self.mstep(sim, m_instr(MOV_IE_DATA, 0xFF))
        assert sim.register_value("interrupt_enable") == 0x00
        assert spec.trojan.trigger_cycles == 4

    def test_t400_broken_sequence_harmless(self):
        nl, _ = mc8051_t400()
        sim = SequentialSimulator(nl)
        self.mstep(sim, m_instr(MOV_IE_DATA, 0x81))
        for op in (MOV_A_DATA, MOVX_A_R1, M_NOP, MOVX_A_DPTR, MOVX_R1_A):
            self.mstep(sim, m_instr(op))  # NOP breaks the sequence
        assert sim.register_value("interrupt_enable") == 0x81

    def test_t700_zeroes_moved_data(self):
        nl, _ = mc8051_t700()
        sim = SequentialSimulator(nl)
        self.mstep(sim, m_instr(MOV_A_DATA, 0x55))  # arming value
        self.mstep(sim, m_instr(MOV_A_DATA, 0x77))
        assert sim.register_value("acc") == 0x00  # corrupted to zero

    def test_t700_dormant_without_arming(self):
        nl, _ = mc8051_t700()
        sim = SequentialSimulator(nl)
        self.mstep(sim, m_instr(MOV_A_DATA, 0x11))
        self.mstep(sim, m_instr(MOV_A_DATA, 0x77))
        assert sim.register_value("acc") == 0x77

    def test_t800_uart_ff_decrements_sp(self):
        nl, _ = mc8051_t800()
        sim = SequentialSimulator(nl)
        sp0 = sim.register_value("stack_pointer")
        self.mstep(sim, m_instr(M_NOP), uart_rx=0x0F, uart_valid=1)
        self.mstep(sim, m_instr(M_NOP), uart_rx=0xF0, uart_valid=1)
        self.mstep(sim, m_instr(M_NOP))
        self.mstep(sim, m_instr(M_NOP))
        assert sim.register_value("stack_pointer") == (sp0 - 4) & 0xFF


class TestAesTrojans:
    def start_encrypt(self, sim, pt):
        sim.step({"reset": 0, "load_key": 0, "start": 1, "pt_in": pt})
        sim.set_input("start", 0)

    def test_t700_magic_plaintext_corrupts_key(self):
        nl, spec = aes_t700(chunk_bits=8)
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0x1234})
        sim.set_input("load_key", 0)
        self.start_encrypt(sim, T700_PLAINTEXT)
        # the payload XORs the key's LSB byte every armed cycle, so the
        # register toggles between the two values once triggered
        seen = set()
        for _ in range(20):  # 16-cycle chunk scan + payload
            sim.step()
            seen.add(sim.register_value("key_register"))
        assert (0x1234 ^ 0xFF) in seen

    def test_t700_wrong_plaintext_harmless(self):
        nl, _ = aes_t700(chunk_bits=8)
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0x1234})
        sim.set_input("load_key", 0)
        self.start_encrypt(sim, T700_PLAINTEXT ^ 1)
        for _ in range(20):
            sim.step()
        assert sim.register_value("key_register") == 0x1234

    def test_t800_sequence_corrupts_key(self):
        nl, _ = aes_t800()
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0xAA})
        sim.set_input("load_key", 0)
        for pt in T800_SEQUENCE:
            self.start_encrypt(sim, pt)
        # the pipelined match tree lags two cycles; the payload then
        # toggles the key every armed cycle
        seen = set()
        for _ in range(6):
            sim.step()
            seen.add(sim.register_value("key_register"))
        assert (0xAA ^ ((1 << 128) - 1)) in seen

    def test_t800_out_of_order_harmless(self):
        nl, _ = aes_t800()
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0xAA})
        sim.set_input("load_key", 0)
        for pt in reversed(T800_SEQUENCE):
            self.start_encrypt(sim, pt)
        for _ in range(6):
            sim.step()
            assert sim.register_value("key_register") == 0xAA

    def test_t1200_small_counter_fires(self):
        nl, _ = aes_t1200(counter_width=4)
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0x77})
        sim.set_input("load_key", 0)
        seen = set()
        for _ in range(20):
            sim.step()
            seen.add(sim.register_value("key_register"))
        assert len(seen) > 1  # counter fired and corrupted the key

    def test_t1200_full_width_dormant(self):
        nl, spec = aes_t1200()  # 128-bit counter: effectively never
        sim = SequentialSimulator(nl)
        sim.step({"reset": 1, "load_key": 0, "start": 0, "key_in": 0,
                  "pt_in": 0})
        sim.step({"reset": 0, "load_key": 1, "key_in": 0x77})
        sim.set_input("load_key", 0)
        for _ in range(50):
            sim.step()
        assert sim.register_value("key_register") == 0x77
        assert spec.trojan.trigger_cycles == (1 << 128) - 1


def test_all_trojans_record_their_nets():
    for factory in (risc_t100, risc_t300, risc_t400, risc_figure1,
                    mc8051_t400, mc8051_t700, mc8051_t800,
                    aes_t700, aes_t800):
        _nl, spec = factory()
        assert spec.trojan is not None
        assert len(spec.trojan.trojan_nets) > 0
