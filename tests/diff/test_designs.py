"""Differential-screen acceptance on the bundled benchmark designs.

The ISSUE's bar: with zero solver calls, the screen flags the Trojaned
register in every Trojaned design and produces zero findings of any
severity on the clean designs. Solver-freeness is enforced, not
assumed: the SAT entry point is booby-trapped for the whole module.
Reports are cached per design — the AES family costs seconds per
screen, and several tests read the same report.
"""

import functools

import pytest

import repro.sat.solver as sat_solver
from repro.frontend import BUILTIN_DESIGNS as DESIGNS
from repro.frontend import build_builtin as build_design
from repro.diff import analyze_design
from repro.lint import SUSPICIOUS

TROJANED = sorted(
    name
    for name in DESIGNS
    if build_design(name)[1].trojan is not None
)
CLEAN = sorted(name for name in DESIGNS if name not in TROJANED)


@pytest.fixture(autouse=True)
def no_solver_calls(monkeypatch):
    def boom(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("the diff screen must never call the solver")

    monkeypatch.setattr(sat_solver.Solver, "solve", boom)
    monkeypatch.setattr(sat_solver.Solver, "add_clause", boom)


@functools.lru_cache(maxsize=None)
def run_diff(name):
    netlist, spec = build_design(name)
    return spec, analyze_design(netlist, spec, design=name)


def test_the_design_split_is_what_the_suite_expects():
    assert len(CLEAN) == 4
    assert len(TROJANED) == len(DESIGNS) - 4


@pytest.mark.parametrize("name", TROJANED)
def test_trojaned_design_flags_the_target_register(name):
    spec, report = run_diff(name)
    target = spec.trojan.target_register
    assert target in report.divergent_registers
    suspicious = [
        f
        for f in report.findings_for(target)
        if f.severity == SUSPICIOUS
    ]
    assert suspicious, "diff missed the Trojan in {}".format(name)
    # the excitation tier fires on every Trojaned design: each carries
    # undocumented write-port state, and forcing it steers the register
    assert any(
        f.rule == "diff-undocumented-state" for f in suspicious
    )
    finding = suspicious[0]
    assert finding.evidence["divergent_cycles"] >= 1
    assert finding.evidence["seed"] == report.seed


@pytest.mark.parametrize("name", CLEAN)
def test_clean_design_has_zero_findings_of_any_severity(name):
    _spec, report = run_diff(name)
    assert report.findings == [], "diff noise on clean {}: {}".format(
        name, [str(f) for f in report.findings]
    )
    # silence comes from empty source sets and spec-conforming update
    # logic, not from skipped registers: every critical register was
    # actually driven through the full input-only stimulus
    for stats in report.register_stats.values():
        assert stats.num_sources == 0
        assert stats.cycles > 0
        assert stats.divergent_cycles == 0


@pytest.mark.parametrize("name", TROJANED)
def test_witnesses_replay_deterministically(name):
    _spec, report = run_diff(name)
    for finding in report.findings:
        assert finding.evidence["witness_reproduced"], (
            "single-lane replay failed to reproduce {} on {}".format(
                finding.rule, name
            )
        )
        assert finding.evidence["witness_vcd"].startswith("$date")
        assert (
            finding.evidence["witness_cycles"]
            == finding.evidence["cycle"] + 1
        )


def test_reports_are_deterministic():
    netlist, spec = build_design("risc-t100")
    first = analyze_design(netlist, spec, design="risc-t100")
    second = analyze_design(netlist, spec, design="risc-t100")
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]
    assert first.register_scores() == second.register_scores()
