"""Portfolio fusion: differential evidence inside the audit report.

Covers the detector and scheduler attachment paths, the fused
``differential_suspect`` verdict and its place in the status ladder,
checkpoint round-trips, three-modality prioritization, and the jobs=1
== jobs=4 byte-identity the ISSUE pins for fused reports.
"""

import pytest

from repro.core import AuditConfig, TrojanDetector
from repro.core.detector import fused_register_scores, prioritize_registers
from repro.diff import analyze_design
from repro.properties import DesignSpec
from repro.runner import CheckRunner
from repro.runner.checkpoint import finding_from_dict, finding_to_dict

from tests.conftest import build_secret_design, secret_spec


def secret_setup(trojan=True):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )
    return netlist, spec, analyze_design(netlist, spec, design=netlist.name)


def run_audit(netlist, spec, diff_report, jobs=1, **kwargs):
    kwargs.setdefault("max_cycles", 10)
    kwargs.setdefault("time_budget", 60)
    detector = TrojanDetector(
        netlist,
        spec,
        config=AuditConfig(jobs=jobs, diff_report=diff_report, **kwargs),
        runner=CheckRunner.configure(check_timeout=120),
    )
    return detector.run()


class TestEvidenceAttachment:
    def test_serial_audit_attaches_diff_evidence(self):
        netlist, spec, diff_report = secret_setup()
        report = run_audit(netlist, spec, diff_report)
        finding = report.findings["secret"]
        assert finding.diff_flagged
        rules = {entry["rule"] for entry in finding.diff_evidence}
        assert "diff-divergence" in rules
        assert finding.diff_evidence == [
            f.to_dict() for f in diff_report.findings_for("secret")
        ]

    def test_scheduler_audit_attaches_identical_evidence(self):
        netlist, spec, diff_report = secret_setup()
        serial = run_audit(netlist, spec, diff_report, jobs=1)
        parallel = run_audit(netlist, spec, diff_report, jobs=4)
        assert (
            serial.findings["secret"].diff_evidence
            == parallel.findings["secret"].diff_evidence
        )

    def test_no_diff_report_leaves_evidence_empty(self):
        netlist, spec, _diff = secret_setup()
        report = run_audit(netlist, spec, None)
        finding = report.findings["secret"]
        assert finding.diff_evidence == []
        assert not finding.diff_flagged
        assert finding.status != "differential_suspect"


class TestDifferentialSuspect:
    def test_divergence_without_corruption_is_a_suspect(self):
        # bound 2 is far below the trigger count, so every bounded check
        # passes — only the simulated divergence evidence disagrees
        netlist, spec, diff_report = secret_setup()
        report = run_audit(netlist, spec, diff_report, max_cycles=2)
        finding = report.findings["secret"]
        assert not report.trojan_found
        assert finding.status == "differential_suspect"
        assert report.differential_suspects == ["secret"]
        assert "DIFFERENTIAL SUSPECT" in report.summary()
        assert "differential suspect" in report.summary()
        assert report.to_dict()["differential_suspects"] == ["secret"]

    def test_confirmed_trojan_outranks_the_suspect_status(self):
        netlist, spec, diff_report = secret_setup()
        report = run_audit(netlist, spec, diff_report, max_cycles=10)
        finding = report.findings["secret"]
        assert report.trojan_found
        assert finding.diff_flagged
        assert not finding.differential_suspect  # confirmed, not suspect
        assert report.differential_suspects == []

    def test_diff_outranks_leakage_in_the_status_ladder(self):
        from repro.ift import analyze_design as ift_analyze

        netlist, spec, diff_report = secret_setup()
        ift_report = ift_analyze(netlist, spec, design=netlist.name)
        assert ift_report.findings, "IFT must also flag the Trojan"
        detector = TrojanDetector(
            netlist,
            spec,
            config=AuditConfig(
                max_cycles=2,
                time_budget=60,
                ift_report=ift_report,
                diff_report=diff_report,
            ),
            runner=CheckRunner.configure(check_timeout=120),
        )
        report = detector.run()
        finding = report.findings["secret"]
        assert finding.ift_flagged and finding.diff_flagged
        # a concrete simulated divergence outranks structural taint
        assert finding.status == "differential_suspect"

    def test_clean_design_stays_ok(self):
        netlist, spec, diff_report = secret_setup(trojan=False)
        assert diff_report.findings == []
        report = run_audit(netlist, spec, diff_report, max_cycles=4)
        assert report.findings["secret"].status == "ok"
        assert report.differential_suspects == []


class TestCheckpointRoundTrip:
    def test_diff_evidence_survives_serialization(self):
        netlist, spec, diff_report = secret_setup()
        report = run_audit(netlist, spec, diff_report, max_cycles=2)
        finding = report.findings["secret"]
        restored = finding_from_dict(finding_to_dict(finding))
        assert restored.diff_evidence == finding.diff_evidence
        assert restored.diff_flagged
        assert restored.status == "differential_suspect"

    def test_legacy_checkpoint_without_diff_defaults_empty(self):
        netlist, spec, _diff = secret_setup()
        report = run_audit(netlist, spec, None, max_cycles=2)
        data = finding_to_dict(report.findings["secret"])
        del data["diff_evidence"]
        restored = finding_from_dict(data)
        assert restored.diff_evidence == []


class TestFusedPrioritization:
    def test_diff_scores_pull_flagged_registers_forward(self):
        _netlist, _spec, diff_report = secret_setup()
        order = prioritize_registers(
            ["alpha", "secret", "zulu"], None, None, diff_report
        )
        assert order[0] == "secret"
        assert order[1:] == ["alpha", "zulu"]  # ties keep input order

    def test_scores_sum_across_all_three_modalities(self):
        _netlist, _spec, diff_report = secret_setup()
        diff_only = fused_register_scores(diff_report=diff_report)
        assert diff_only["secret"] > 0
        all_three = fused_register_scores(
            diff_report, diff_report, diff_report
        )
        assert all_three["secret"] == 3 * diff_only["secret"]


@pytest.mark.parametrize("trojan", [True, False], ids=["trojan", "clean"])
def test_fused_report_is_byte_identical_across_jobs(trojan):
    netlist, spec, diff_report = secret_setup(trojan=trojan)
    one = run_audit(netlist, spec, diff_report, jobs=1)
    four = run_audit(netlist, spec, diff_report, jobs=4)
    assert one.to_json(scrub=True) == four.to_json(scrub=True)
