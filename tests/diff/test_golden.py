"""Golden-model compilation: ValidWays specs as executable references."""

from repro.diff import build_golden_models
from repro.properties import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def secret_setup(trojan=True):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )
    return netlist, spec


def test_one_model_per_critical_register():
    netlist, spec = secret_setup()
    augmented, models = build_golden_models(netlist, spec)
    assert set(models) == {"secret"}
    model = models["secret"]
    assert model.width == 8
    assert len(model.q_nets) == 8


def test_ways_compile_in_spec_order_with_values():
    netlist, spec = secret_setup()
    _augmented, models = build_golden_models(netlist, spec)
    ways = models["secret"].ways
    assert [w.name for w in ways] == ["reset", "load"]
    for way in ways:
        assert way.value_nets is not None
        assert len(way.value_nets) == 8


def test_input_anchors_record_what_each_way_reads():
    netlist, spec = secret_setup()
    _augmented, models = build_golden_models(netlist, spec)
    by_name = {w.name: w for w in models["secret"].ways}
    assert by_name["reset"].input_anchors == ["reset"]
    # the load way reads both its firing condition and the value port
    assert by_name["load"].input_anchors == ["key_in", "load"]


def test_monitor_nets_live_in_the_clone_not_the_original():
    # the RISC spec's ways build real expressions (pc + 1, sp - 1), so
    # compiling them must add monitor gates — to the clone only
    from repro.frontend import build_builtin as build_design

    netlist, spec = build_design("risc")
    before = netlist.num_nets
    augmented, models = build_golden_models(netlist, spec)
    assert netlist.num_nets == before  # original untouched
    assert augmented.num_nets > before  # monitors added to the clone
    # original net ids stay valid in the clone: the register's Q nets
    # resolve to the same names in both netlists
    for net in models["program_counter"].q_nets:
        assert augmented.net_name(net) == netlist.net_name(net)


def test_trojan_write_port_state_becomes_sources():
    netlist, spec = secret_setup(trojan=True)
    _augmented, models = build_golden_models(netlist, spec)
    names = {
        netlist.net_name(net) for net in models["secret"].source_nets
    }
    assert names, "the Trojan counter must surface as undocumented state"
    assert any("troj_counter" in name for name in names)


def test_clean_design_has_no_sources():
    netlist, spec = secret_setup(trojan=False)
    _augmented, models = build_golden_models(netlist, spec)
    assert models["secret"].source_nets == []
