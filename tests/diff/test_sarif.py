"""Merged lint+IFT+diff SARIF export: one three-modality document."""

import json

import pytest

from repro.frontend import build_builtin as build_design
from repro.diff import analyze_design, merged_sarif, to_sarif, write_sarif
from repro.ift import analyze_design as ift_analyze
from repro.lint import lint_design

from tests.lint.test_sarif import SARIF_21_SUBSET


def reports_for(names):
    diff_reports, ift_reports, lint_reports = [], [], []
    for name in names:
        netlist, spec = build_design(name)
        diff_reports.append(analyze_design(netlist, spec, design=name))
        ift_reports.append(ift_analyze(netlist, spec, design=name))
        lint_reports.append(lint_design(netlist, spec, design=name))
    return diff_reports, ift_reports, lint_reports


def test_diff_only_log_structure():
    diff_reports, _ift, _lint = reports_for(["risc-t100"])
    log = to_sarif(diff_reports)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-diff"
    assert len(run["results"]) == len(diff_reports[0].findings)
    rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "diff-divergence" in rules
    assert "diff-undocumented-state" in rules
    for result in run["results"]:
        assert rules[result["ruleIndex"]] == result["ruleId"]


def test_merged_log_orders_all_three_modalities():
    names = ["risc", "risc-t100"]
    diff_reports, ift_reports, lint_reports = reports_for(names)
    log = merged_sarif(diff_reports, ift_reports, lint_reports)
    drivers = [run["tool"]["driver"]["name"] for run in log["runs"]]
    assert drivers == [
        "repro-lint", "repro-lint",
        "repro-ift", "repro-ift",
        "repro-diff", "repro-diff",
    ]
    designs = [run["properties"]["design"] for run in log["runs"]]
    assert designs == names * 3


def test_merged_log_validates_against_embedded_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    diff_reports, ift_reports, lint_reports = reports_for(
        ["risc", "risc-t100"]
    )
    jsonschema.validate(
        merged_sarif(diff_reports, ift_reports, lint_reports),
        SARIF_21_SUBSET,
    )


def test_suspicious_findings_map_to_error_level():
    diff_reports, _ift, _lint = reports_for(["risc-t100"])
    log = to_sarif(diff_reports)
    by_rule = {
        r["ruleId"]: r["level"] for r in log["runs"][0]["results"]
    }
    assert by_rule["diff-divergence"] == "error"
    assert by_rule["diff-undocumented-state"] == "error"


def test_vcd_witness_stays_out_of_sarif_but_coordinates_stay():
    diff_reports, _ift, _lint = reports_for(["risc-t100"])
    assert any(
        "witness_vcd" in f.evidence for f in diff_reports[0].findings
    )
    log = to_sarif(diff_reports)
    for result in log["runs"][0]["results"]:
        evidence = result["properties"]["evidence"]
        assert "witness_vcd" not in evidence
        assert evidence["witness_cycles"] >= 1
        assert "seed" in evidence and "lane" in evidence


def test_run_properties_carry_screen_accounting():
    diff_reports, _ift, _lint = reports_for(["risc-t100"])
    log = to_sarif(diff_reports)
    props = log["runs"][0]["properties"]
    assert set(props["ruleHits"]) == {
        "diff-divergence",
        "diff-undocumented-state",
    }
    assert props["lanes"] > 0 and props["cycles"] > 0
    stats = props["registerStats"]
    assert any(entry["num_sources"] for entry in stats.values())


def test_write_sarif_emits_stable_bytes(tmp_path):
    diff_reports, ift_reports, lint_reports = reports_for(["risc-t100"])
    first = tmp_path / "a.sarif"
    second = tmp_path / "b.sarif"
    write_sarif(first, diff_reports, ift_reports, lint_reports)
    write_sarif(second, diff_reports, ift_reports, lint_reports)
    assert first.read_bytes() == second.read_bytes()
    log = json.loads(first.read_text())
    assert len(log["runs"]) == 3
