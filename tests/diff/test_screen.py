"""The divergence engine on the miniature secret core.

The bundled-corpus acceptance lives in test_designs; this module pins
the *mechanics* on a design small enough to reason about: both finding
tiers, witness replay, hold semantics, and report accounting.
"""

from repro.diff import DiffConfig, analyze_design
from repro.properties import DesignSpec
from repro.sim.vcd import VcdWriter

from tests.conftest import build_counter, build_secret_design, secret_spec


def secret_setup(trojan=True):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )
    return netlist, spec


def run_diff(trojan=True, **overrides):
    netlist, spec = secret_setup(trojan=trojan)
    config = DiffConfig(**overrides) if overrides else None
    return analyze_design(
        netlist, spec, design=netlist.name, config=config
    )


def test_trojan_surfaces_on_both_evidence_tiers():
    report = run_diff(trojan=True)
    rules = {f.rule for f in report.findings}
    # the LSB flip after 5 identical loads is reachable by held inputs
    # (diff-divergence) and immediate once the counter is forced
    # (diff-undocumented-state)
    assert rules == {"diff-divergence", "diff-undocumented-state"}
    assert report.divergent_registers == ["secret"]
    assert report.register_stats["secret"].divergent_cycles >= 2


def test_clean_core_is_silent():
    report = run_diff(trojan=False)
    assert report.findings == []
    stats = report.register_stats["secret"]
    assert stats.num_ways == 2
    assert stats.num_sources == 0
    assert stats.cycles == report.cycles  # screened in every phase


def test_one_finding_per_register_and_rule_with_a_hit_count():
    report = run_diff(trojan=True)
    keys = [(f.register, f.rule) for f in report.findings]
    assert len(keys) == len(set(keys))
    for finding in report.findings:
        assert finding.evidence["divergent_cycles"] >= 1


def test_excite_evidence_names_the_forced_trojan_state():
    report = run_diff(trojan=True)
    excite = next(
        f for f in report.findings
        if f.rule == "diff-undocumented-state"
    )
    assert excite.evidence["num_sources"] == len(
        excite.evidence["forced_nets"]
    )
    assert any(
        "troj_counter" in name for name in excite.evidence["forced_nets"]
    )


def test_witness_is_replayable_vcd_up_to_the_divergence():
    report = run_diff(trojan=True)
    for finding in report.findings:
        vcd = finding.evidence["witness_vcd"]
        assert finding.evidence["witness_reproduced"]
        assert finding.evidence["witness_cycles"] == (
            finding.evidence["cycle"] + 1
        )
        # the witness carries the stimulus ports, every way's firing
        # bit, and the register itself
        for name in ("reset", "load", "key_in", "way_reset",
                     "way_load", "secret"):
            assert "$var wire" in vcd and " {} $end".format(name) in vcd
        assert "$dumpvars" in vcd


def test_witness_can_be_disabled():
    report = run_diff(trojan=True, witness=False)
    assert report.findings
    for finding in report.findings:
        assert "witness_vcd" not in finding.evidence


def test_held_registers_never_diverge():
    # an enabled counter holds whenever en=0; holding is always allowed,
    # and counting up is the documented increment way
    from repro.properties.valid_ways import RegisterSpec, ValidWay

    netlist = build_counter(width=4)
    spec = DesignSpec(
        name="counter",
        critical={
            "count": RegisterSpec(
                register="count",
                ways=[
                    ValidWay(
                        "increment",
                        lambda m: m.input("en"),
                        value=lambda m: m.reg("count") + 1,
                        expression="en",
                    ),
                ],
                observe_latency=1,
            )
        },
    )
    report = analyze_design(netlist, spec, design="counter")
    assert report.findings == []


def test_report_serialization_is_stable_and_scrubbable():
    report = run_diff(trojan=True)
    data = report.to_dict()
    assert data["design"] == "secret_core"
    assert set(data["register_stats"]) == {"secret"}
    assert report.to_json() == report.to_json()
    assert report.register_scores()["secret"] > 0


def test_vcd_writer_round_trips_the_witness_signals():
    # the witness path leans on the writer's width validation: a replay
    # producing an out-of-range word must raise, not silently truncate
    writer = VcdWriter(design_name="probe")
    writer.add_signal("ok", 4, [0, 15, 7])
    text = writer.dumps()
    assert text.count("$var wire 4") == 1
    assert "b1111" in text
