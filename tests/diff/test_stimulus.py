"""The seeded stimulus portfolio: structure and determinism."""

from repro.frontend import build_builtin as build_design
from repro.diff import DiffConfig, build_golden_models, build_phases
from repro.properties import DesignSpec

from tests.conftest import build_secret_design, secret_spec

CONFIG = DiffConfig(lanes=8, random_cycles=6, hold_rounds=2,
                    hold_window=5, directed_cycles=3, excite_cycles=4)


def phases_for(trojan=True, config=CONFIG):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )
    _augmented, models = build_golden_models(netlist, spec)
    return netlist, build_phases(netlist, spec, models, config)


def test_portfolio_order_and_rules():
    _netlist, phases = phases_for()
    names = [p.name for p in phases]
    assert names == [
        "random",
        "hold",
        "way:secret:reset",
        "way:secret:load",
        "excite:secret",
    ]
    by_name = {p.name: p for p in phases}
    assert by_name["random"].rule == "diff-divergence"
    assert by_name["hold"].rule == "diff-divergence"
    assert by_name["excite:secret"].rule == "diff-undocumented-state"


def test_cycle_budgets_follow_the_config():
    _netlist, phases = phases_for()
    by_name = {p.name: p for p in phases}
    assert len(by_name["random"].cycles) == CONFIG.random_cycles
    assert len(by_name["hold"].cycles) == (
        CONFIG.hold_rounds * CONFIG.hold_window
    )
    assert len(by_name["way:secret:load"].cycles) == CONFIG.directed_cycles
    assert len(by_name["excite:secret"].cycles) == CONFIG.excite_cycles


def test_every_cycle_drives_every_input_with_one_word_per_lane():
    netlist, phases = phases_for()
    for phase in phases:
        for cycle in phase.cycles:
            assert set(cycle) == set(netlist.inputs)
            for name, words in cycle.items():
                width = len(netlist.inputs[name])
                assert len(words) == CONFIG.lanes
                assert all(0 <= w < (1 << width) for w in words)


def test_hold_phase_repeats_each_round_verbatim():
    _netlist, phases = phases_for()
    hold = next(p for p in phases if p.name == "hold")
    window = CONFIG.hold_window
    for round_start in range(0, len(hold.cycles), window):
        block = hold.cycles[round_start:round_start + window]
        assert all(cycle == block[0] for cycle in block)


def test_directed_phase_holds_the_ways_anchor_ports():
    _netlist, phases = phases_for()
    directed = next(p for p in phases if p.name == "way:secret:load")
    first = directed.cycles[0]
    for cycle in directed.cycles:
        # anchors held constant; the 1-bit firing port driven active
        assert cycle["load"] == [1] * CONFIG.lanes
        assert cycle["key_in"] == first["key_in"]


def test_excite_phase_only_exists_with_undocumented_sources():
    _netlist, trojaned = phases_for(trojan=True)
    assert any(p.name.startswith("excite:") for p in trojaned)
    _netlist, clean = phases_for(trojan=False)
    assert not any(p.name.startswith("excite:") for p in clean)


def test_excite_forces_are_adversarial_per_lane():
    netlist, phases = phases_for()
    excite = next(p for p in phases if p.name == "excite:secret")
    assert excite.registers == ("secret",)
    assert excite.forces, "sources must be forced"
    for pattern in excite.forces.values():
        assert pattern & 1 == 1  # lane 0 forced high
        assert (pattern >> 1) & 1 == 0  # lane 1 forced low
    # every non-forced flop gets a randomized initial state pattern
    forced = set(excite.forces)
    expected_q = {
        q for flop in netlist.flops for q in [flop.q] if q not in forced
    }
    assert set(excite.init_state) == expected_q


def test_pinned_inputs_stay_pinned_outside_directed_phases():
    netlist, spec = build_design("risc")
    _augmented, models = build_golden_models(netlist, spec)
    phases = build_phases(netlist, spec, models, CONFIG)
    assert spec.pinned_inputs, "risc pins its reset port"
    for phase in phases:
        if phase.name.startswith("way:"):
            continue  # a way may legitimately drive its pinned anchor
        for cycle in phase.cycles:
            for name, value in spec.pinned_inputs.items():
                assert cycle[name] == [value] * CONFIG.lanes


def test_same_seed_same_stimulus_different_seed_different():
    _netlist, first = phases_for()
    _netlist, second = phases_for()
    assert [p.cycles for p in first] == [p.cycles for p in second]
    _netlist, reseeded = phases_for(
        config=DiffConfig(seed=7, lanes=8, random_cycles=6,
                          hold_rounds=2, hold_window=5,
                          directed_cycles=3, excite_cycles=4)
    )
    assert first[0].cycles != reseeded[0].cycles
