"""Ingestion frontend: one load_design for names, bundles and Verilog."""

import pytest

from repro.corpus import save_bundle
from repro.errors import FrontendError
from repro.frontend import (
    LoadedDesign,
    build_builtin,
    design_names,
    list_designs,
    load_design,
    save_spec_sidecar,
    spec_sidecar_path,
)
from repro.hdl import write_verilog
from repro.netlist.fingerprint import netlist_fingerprint


def test_builtin_names_resolve():
    loaded = load_design("router-redirect")
    assert isinstance(loaded, LoadedDesign)
    assert loaded.origin == "builtin"
    netlist, spec = loaded  # historical unpacking keeps working
    assert spec.trojan is not None
    assert "router-redirect" in design_names()


def test_loaded_design_passes_through():
    loaded = load_design("router")
    assert load_design(loaded) is loaded


def test_unknown_name_reports_candidates():
    with pytest.raises(FrontendError) as exc:
        load_design("rsic")
    assert "risc" in str(exc.value)


def test_unsupported_file_rejected(tmp_path):
    path = tmp_path / "design.vhdl"
    path.write_text("entity e is end;")
    with pytest.raises(FrontendError):
        load_design(str(path))


def test_bundle_file_loads_with_provenance(tmp_path):
    netlist, spec = build_builtin("mc8051-t800")
    path = tmp_path / "m.design.json"
    save_bundle(str(path), netlist, spec, provenance={"base": "mc8051"})
    loaded = load_design(str(path))
    assert loaded.origin == "bundle"
    assert loaded.provenance == {"base": "mc8051"}
    assert netlist_fingerprint(loaded.netlist) == (
        netlist_fingerprint(netlist)
    )


def test_verilog_with_sidecar_restores_the_full_design(tmp_path):
    netlist, spec = build_builtin("router-redirect")
    path = tmp_path / "router.v"
    path.write_text(write_verilog(netlist))
    save_spec_sidecar(spec_sidecar_path(str(path)), spec)
    loaded = load_design(str(path))
    assert loaded.origin == "verilog"
    assert netlist_fingerprint(loaded.netlist) == (
        netlist_fingerprint(netlist)
    )
    assert sorted(loaded.spec.critical) == sorted(spec.critical)
    assert loaded.spec.trojan is not None


def test_verilog_without_sidecar_gets_permissive_spec(tmp_path):
    netlist, _spec = build_builtin("router")
    path = tmp_path / "bare.v"
    path.write_text(write_verilog(netlist))
    loaded = load_design(str(path))
    assert loaded.spec.critical == {}
    assert "no spec sidecar" in loaded.spec.notes


def test_sidecar_naming_unknown_register_rejected(tmp_path):
    netlist, spec = build_builtin("router")
    other_netlist, other_spec = build_builtin("mc8051")
    path = tmp_path / "router.v"
    path.write_text(write_verilog(netlist))
    save_spec_sidecar(spec_sidecar_path(str(path)), other_spec)
    with pytest.raises(FrontendError):
        load_design(str(path))


def test_list_designs_has_provenance_rows():
    rows = list_designs()
    assert len(rows) == len(design_names())
    names = [name for name, _origin, _info in rows]
    assert names == sorted(names)
    assert all(origin == "builtin" for _n, origin, _i in rows)
