"""Lexer tests."""

import pytest

from repro.errors import HdlSyntaxError
from repro.hdl.lexer import parse_sized_literal, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop eof


def test_keywords_vs_identifiers():
    assert kinds("module foo") == ["module", "id"]
    assert kinds("wire wires") == ["wire", "id"]


def test_punctuation():
    assert kinds("a <= b;") == ["id", "<=", "id", ";"]
    assert kinds("x = s ? a : b;") == ["id", "=", "id", "?", "id", ":",
                                       "id", ";"]


def test_comments_skipped():
    assert kinds("a // comment\nb") == ["id", "id"]
    assert kinds("a /* multi\nline */ b") == ["id", "id"]


def test_unterminated_block_comment():
    with pytest.raises(HdlSyntaxError):
        tokenize("/* oops")


def test_line_numbers():
    tokens = tokenize("a\nbb\n  c")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[2].line == 3
    assert tokens[2].column == 3


def test_sized_literals():
    assert parse_sized_literal("4'b1010") == (4, 10)
    assert parse_sized_literal("8'hFF") == (8, 255)
    assert parse_sized_literal("3'd5") == (3, 5)
    assert parse_sized_literal("16'hAB_CD") == (16, 0xABCD)


def test_bad_character():
    with pytest.raises(HdlSyntaxError):
        tokenize("a $ b")
