"""Parser tests for the structural Verilog subset."""

import pytest

from repro.errors import HdlSyntaxError
from repro.hdl import parser as ast
from repro.hdl.parser import parse

EXAMPLE = """
module top(clk, a, y);
  input clk;
  input [3:0] a;
  output y;
  wire n2, n3;
  reg q;
  and g0(n2, a[0], a[1]);
  not g1(n3, n2);
  assign y = q ? n2 : n3;
  always @(posedge clk) q <= n3;
  initial begin
    q = 1'b1;
  end
endmodule
"""


def test_parses_example():
    module = parse(EXAMPLE)
    assert module.name == "top"
    assert module.ports == ["clk", "a", "y"]
    decls = [i for i in module.items if isinstance(i, ast.Decl)]
    assert any(d.width == 4 for d in decls)
    instances = [i for i in module.items if isinstance(i, ast.Instance)]
    assert [i.gate for i in instances] == ["and", "not"]
    assert instances[0].operands[1].bit == 0
    assigns = [i for i in module.items if isinstance(i, ast.Assign)]
    assert isinstance(assigns[0].expr, ast.Ternary)
    ffs = [i for i in module.items if isinstance(i, ast.AlwaysFf)]
    assert ffs[0].clock == "clk"
    inits = [i for i in module.items if isinstance(i, ast.InitialAssign)]
    assert inits[0].value.value == 1


def test_binary_expression():
    module = parse(
        "module m(a, b, y);\ninput a, b;\noutput y;\n"
        "assign y = a & b;\nendmodule"
    )
    assign = [i for i in module.items if isinstance(i, ast.Assign)][0]
    assert isinstance(assign.expr, ast.Binary)
    assert assign.expr.op == "&"


def test_unary_expression():
    module = parse(
        "module m(a, y);\ninput a;\noutput y;\nassign y = ~a;\nendmodule"
    )
    assign = [i for i in module.items if isinstance(i, ast.Assign)][0]
    assert isinstance(assign.expr, ast.Unary)


def test_single_initial_without_begin():
    module = parse(
        "module m(clk, y);\ninput clk;\noutput y;\nreg q;\n"
        "assign y = q;\nalways @(posedge clk) q <= q;\n"
        "initial q = 1'b0;\nendmodule"
    )
    inits = [i for i in module.items if isinstance(i, ast.InitialAssign)]
    assert len(inits) == 1


def test_errors_carry_location():
    with pytest.raises(HdlSyntaxError) as info:
        parse("module m(a);\ninput a\nendmodule")
    assert "line" in str(info.value)


def test_nonzero_lsb_rejected():
    with pytest.raises(HdlSyntaxError):
        parse("module m(a);\ninput [3:1] a;\nendmodule")


def test_garbage_item_rejected():
    with pytest.raises(HdlSyntaxError):
        parse("module m(a);\nbanana;\nendmodule")
