"""Writer/parser round-trip: behavioural equivalence under random stimulus,
including a hypothesis sweep over randomly generated circuits."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import parse_verilog, write_verilog
from repro.netlist import Circuit, validate
from repro.sim import SequentialSimulator, StimulusGenerator

from tests.conftest import build_secret_design


def assert_equivalent(netlist, cycles=60, seed=0):
    text = write_verilog(netlist)
    twin = parse_verilog(text)
    validate(twin)
    assert len(twin.flops) == len(netlist.flops)
    s1 = SequentialSimulator(netlist)
    s2 = SequentialSimulator(twin)
    gen = StimulusGenerator(netlist, seed=seed)
    for words in gen.random_sequence(cycles):
        s1.step(words)
        s2.step(words)
        s1.propagate()
        s2.propagate()
        for name in netlist.outputs:
            assert s1.output_value(name) == s2.output_value(name), name


def test_secret_design_roundtrip():
    assert_equivalent(build_secret_design(trojan=True, pseudo=True))


def test_register_groups_restorable():
    nl = build_secret_design(trojan=False)
    text = write_verilog(nl)
    groups = {
        "secret": ["n{}".format(q) for q in nl.register_q_nets("secret")]
    }
    twin = parse_verilog(text, register_groups=groups)
    assert twin.register_width("secret") == 8


def test_writer_sanitizes_names():
    c = Circuit("weird design!")
    a = c.input("a", 1)
    c.output("y", a)
    text = write_verilog(c.finalize())
    assert "module weird_design_" in text


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 99999))
def test_random_circuits_roundtrip(seed):
    rng = random.Random(seed)
    c = Circuit("fuzz")
    width = rng.randint(1, 5)
    a = c.input("a", width)
    b = c.input("b", width)
    regs = []
    for i in range(rng.randint(1, 3)):
        reg = c.reg("r{}".format(i), width, init=rng.getrandbits(width))
        regs.append(reg)
    exprs = [a, b] + [r.q for r in regs]
    for _ in range(rng.randint(2, 6)):
        x, y = rng.choice(exprs), rng.choice(exprs)
        op = rng.randrange(5)
        if op == 0:
            exprs.append(x & y)
        elif op == 1:
            exprs.append(x | y)
        elif op == 2:
            exprs.append(x ^ y)
        elif op == 3:
            exprs.append(~x)
        else:
            exprs.append(c.mux(x[0], y, rng.choice(exprs)))
    for reg in regs:
        reg.drive(rng.choice(exprs))
    c.output("y", exprs[-1])
    nl = c.finalize()
    assert_equivalent(nl, cycles=25, seed=seed)


# ------------------------------------------------- structural identity

import pytest

from repro.frontend import BUILTIN_DESIGNS, build_builtin
from repro.netlist.fingerprint import netlist_fingerprint


@pytest.mark.parametrize("name", sorted(BUILTIN_DESIGNS))
def test_builtin_round_trip_is_fingerprint_identical(name):
    """The `// repro:` pragmas make re-import structurally exact —
    same net ids, ports, flop inits, register groups and probes — not
    merely behaviorally equivalent."""
    netlist, _spec = build_builtin(name)
    twin = parse_verilog(write_verilog(netlist))
    assert netlist_fingerprint(twin) == netlist_fingerprint(netlist)
    assert twin.registers == netlist.registers
    assert twin.probes == netlist.probes


def test_pragma_free_output_still_roundtrips_behaviorally():
    nl = build_secret_design(trojan=True)
    text = write_verilog(nl, pragmas=False)
    twin = parse_verilog(text)
    assert len(twin.flops) == len(nl.flops)
