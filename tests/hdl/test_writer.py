"""Writer-specific unit tests (beyond the round-trip suite)."""

from repro.hdl import write_verilog
from repro.netlist import Circuit

from tests.conftest import build_counter, build_secret_design


def test_module_header_and_ports():
    text = write_verilog(build_counter(4), module_name="cnt")
    assert text.startswith("module cnt(clk, en, value);")
    assert "input clk;" in text
    assert "output [3:0] value;" in text
    assert text.rstrip().endswith("endmodule")


def test_flops_get_always_blocks_and_inits():
    c = Circuit("ff")
    a = c.input("a", 1)
    r = c.reg("r", 2, init=0b10)
    r.drive(r.q ^ a.cat(a))
    c.output("y", r.q)
    text = write_verilog(c.finalize())
    assert text.count("always @(posedge clk)") == 2
    assert "= 1'b1;" in text and "= 1'b0;" in text


def test_register_groups_as_pragmas():
    text = write_verilog(build_secret_design(trojan=False))
    assert "// repro:register secret =" in text
    assert "// repro:nets " in text


def test_register_groups_commented_without_pragmas():
    text = write_verilog(build_secret_design(trojan=False), pragmas=False)
    assert "// register secret:" in text
    assert "// repro:" not in text


def test_mux_as_ternary():
    c = Circuit("m")
    s = c.input("s", 1)
    a = c.input("a", 1)
    b = c.input("b", 1)
    c.output("y", c.mux(s, a, b))
    text = write_verilog(c.finalize())
    assert " ? " in text and " : " in text


def test_constant_outputs():
    c = Circuit("k")
    a = c.input("a", 1)
    _ = a  # port must exist, but output is constant
    c.output("y", c.const(1, 1))
    text = write_verilog(c.finalize())
    assert "assign y = 1'b1;" in text


def test_custom_clock_name():
    text = write_verilog(build_counter(2), clock="sysclk")
    assert "posedge sysclk" in text
    assert "input sysclk;" in text
