"""IFT acceptance on the bundled benchmark designs.

The ISSUE's bar: with zero solver calls, the screen flags the Trojaned
register in every Trojaned design and produces zero findings of any
severity on the clean designs. Solver-freeness is enforced, not
assumed: the SAT entry point is booby-trapped for the whole module.
"""

import pytest

import repro.sat.solver as sat_solver
from repro.frontend import BUILTIN_DESIGNS as DESIGNS
from repro.frontend import build_builtin as build_design
from repro.ift import analyze_design
from repro.lint import SUSPICIOUS

TROJANED = sorted(
    name
    for name in DESIGNS
    if build_design(name)[1].trojan is not None
)
CLEAN = sorted(name for name in DESIGNS if name not in TROJANED)


@pytest.fixture(autouse=True)
def no_solver_calls(monkeypatch):
    def boom(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("the IFT screen must never call the solver")

    monkeypatch.setattr(sat_solver.Solver, "solve", boom)
    monkeypatch.setattr(sat_solver.Solver, "add_clause", boom)


def run_ift(name):
    netlist, spec = build_design(name)
    return spec, analyze_design(netlist, spec, design=name)


def test_the_design_split_is_what_the_suite_expects():
    assert len(CLEAN) == 4
    assert len(TROJANED) == len(DESIGNS) - 4


@pytest.mark.parametrize("name", TROJANED)
def test_trojaned_design_flags_the_target_register(name):
    spec, report = run_ift(name)
    target = spec.trojan.target_register
    assert target in report.tainted_registers
    suspicious = [
        f
        for f in report.findings_for(target)
        if f.severity == SUSPICIOUS
    ]
    assert suspicious, "IFT missed the Trojan in {}".format(name)
    assert any(f.rule == "taint-reaches-critical" for f in suspicious)
    # evidence carries a non-empty source-to-sink taint path
    finding = suspicious[0]
    assert finding.evidence["taint_path"]
    assert finding.evidence["num_sources"] >= 1


@pytest.mark.parametrize("name", CLEAN)
def test_clean_design_has_zero_findings_of_any_severity(name):
    _spec, report = run_ift(name)
    assert report.findings == [], "IFT noise on clean {}: {}".format(
        name, [str(f) for f in report.findings]
    )
    # silence comes from empty source sets, not from thresholds
    for stats in report.register_stats.values():
        assert stats.num_sources == 0


@pytest.mark.parametrize("name", TROJANED)
def test_fixpoint_stays_within_its_round_bound(name):
    _spec, report = run_ift(name)
    ran = [st for st in report.register_stats.values() if st.num_sources]
    assert ran, "no register produced sources on {}".format(name)
    for stats in ran:
        assert 0 < stats.rounds <= stats.round_limit


def test_reports_are_deterministic():
    _spec, first = run_ift("mc8051-t800")
    _spec, second = run_ift("mc8051-t800")
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]
    assert first.register_scores() == second.register_scores()
