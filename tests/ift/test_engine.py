"""Fixpoint engine tests on adversarial graph shapes.

Each test builds a miniature netlist whose structure stresses one part
of the engine: select weakening, multi-fan-out enables, register-only
cycles, cones shared between registers, and the round bound that makes
non-termination impossible by construction.
"""

import pytest

from repro.errors import IftError
from repro.ift import (
    MAYBE,
    TAINTED,
    UNTAINTED,
    propagate,
    shortest_taint_path,
)
from repro.netlist import Circuit


def test_empty_sources_is_a_noop():
    c = Circuit("tiny")
    a = c.input("a", 1)
    c.output("y", ~a)
    result = propagate(c.finalize(), [])
    assert result.taint == {}
    assert result.rounds == 0
    assert result.reach == frozenset()


def test_taint_flows_through_plain_gates_at_full_strength():
    c = Circuit("comb")
    a = c.input("a", 1)
    b = c.input("b", 1)
    c.output("y", (a & b) ^ a)
    netlist = c.finalize()
    result = propagate(netlist, a.nets)
    (y,) = netlist.outputs["y"]
    assert result.level(y) == TAINTED
    assert result.max_level(b.nets) == UNTAINTED  # no backward flow


def test_mux_select_taint_weakens_to_maybe():
    c = Circuit("muxsel")
    sel = c.input("sel", 1)
    d0 = c.input("d0", 1)
    d1 = c.input("d1", 1)
    c.output("y", c.mux(sel, d0, d1))
    netlist = c.finalize()
    (y,) = netlist.outputs["y"]
    weak = propagate(netlist, sel.nets)
    assert weak.level(y) == MAYBE  # control-only influence
    strong = propagate(netlist, sel.nets, weak_selects=False)
    assert strong.level(y) == TAINTED  # conservative two-level reading


def test_mux_data_arm_taint_keeps_full_strength():
    c = Circuit("muxdata")
    sel = c.input("sel", 1)
    d0 = c.input("d0", 1)
    d1 = c.input("d1", 1)
    c.output("y", c.mux(sel, d0, d1))
    netlist = c.finalize()
    (y,) = netlist.outputs["y"]
    assert propagate(netlist, d1.nets).level(y) == TAINTED


def test_multi_fanout_enable_taints_every_gated_register():
    # one trigger net fans out into the write selects of two registers
    c = Circuit("fanout")
    trig = c.input("trig", 1)
    din = c.input("din", 4)
    rega = c.reg("rega", 4)
    rega.hold_unless((trig, din))
    regb = c.reg("regb", 4)
    regb.hold_unless((trig, din + rega.q))
    c.output("ya", rega.q)
    c.output("yb", regb.q)
    netlist = c.finalize()
    result = propagate(netlist, trig.nets)
    for name in ("rega", "regb"):
        level = result.max_level(netlist.register_d_nets(name))
        assert level == MAYBE, name  # select-only influence on both
        # taint crosses the flop boundary into the outputs
        assert result.max_level(netlist.register_q_nets(name)) == MAYBE


def test_register_only_cycle_reaches_fixpoint():
    # a ring of flops: taint must travel the whole cycle and stop
    c = Circuit("ring")
    seed = c.input("seed", 1)
    a = c.reg("a", 1)
    b = c.reg("b", 1)
    d = c.reg("d", 1)
    a.drive(d.q ^ seed)
    b.drive(a.q)
    d.drive(b.q)
    c.output("y", d.q)
    netlist = c.finalize()
    result = propagate(netlist, seed.nets)
    for name in ("a", "b", "d"):
        assert result.max_level(netlist.register_q_nets(name)) == TAINTED
    assert result.rounds <= result.round_limit


def test_shared_cone_taints_both_consumers():
    # two registers read one shared combinational cone; a source inside
    # it must implicate both, not just the first one swept
    c = Circuit("shared")
    x = c.input("x", 4)
    y = c.input("y", 4)
    shared = x ^ y
    rega = c.reg("rega", 4)
    rega.drive(shared)
    regb = c.reg("regb", 4)
    regb.drive(~shared)
    c.output("out", rega.q & regb.q)
    netlist = c.finalize()
    result = propagate(netlist, x.nets)
    assert result.max_level(netlist.register_d_nets("rega")) == TAINTED
    assert result.max_level(netlist.register_d_nets("regb")) == TAINTED


def test_pipeline_round_count_is_bounded_and_linear():
    # a chain of N flops needs ~N rounds; the bound 2N+4 must hold with
    # room to spare and the engine must report the actual count
    depth = 12
    c = Circuit("chain")
    src = c.input("src", 1)
    prev = src
    for i in range(depth):
        stage = c.reg("s{}".format(i), 1)
        stage.drive(prev)
        prev = stage.q
    c.output("y", prev)
    netlist = c.finalize()
    result = propagate(netlist, src.nets)
    (y,) = netlist.outputs["y"]
    assert result.level(y) == TAINTED
    assert result.round_limit == 2 * depth + 4
    assert result.rounds <= result.round_limit
    assert result.rounds >= depth  # taint really crossed every stage


def test_reach_restriction_keeps_taint_sparse():
    c = Circuit("split")
    a = c.input("a", 1)
    b = c.input("b", 1)
    c.output("ya", ~a)
    c.output("yb", ~b)
    netlist = c.finalize()
    result = propagate(netlist, a.nets)
    (yb,) = netlist.outputs["yb"]
    assert yb not in result.taint  # disconnected logic never touched
    assert yb not in result.reach


def test_round_limit_breach_raises_ift_error(monkeypatch):
    # sabotage monotonicity: a transfer function that undoes the flop's
    # sequential progress every sweep can never settle, and the engine
    # must refuse to spin forever
    c = Circuit("guard")
    a = c.input("a", 1)
    b = c.input("b", 1)
    r = c.reg("r", 1)
    r.drive(c.mux(a, b, ~b))
    c.output("y", r.q)
    netlist = c.finalize()
    (q,) = netlist.register_q_nets("r")

    from repro.ift import engine

    real = engine._cell_taint

    def non_monotone(cell, taint, weak_selects):
        taint.pop(q, None)
        return real(cell, taint, weak_selects)

    monkeypatch.setattr(engine, "_cell_taint", non_monotone)
    with pytest.raises(IftError):
        propagate(netlist, a.nets)


class TestShortestTaintPath:
    def build(self):
        c = Circuit("path")
        trig = c.input("trig", 1)
        din = c.input("din", 1)
        stage = c.reg("stage", 1)
        stage.drive(trig)
        target = c.reg("target", 1)
        target.drive(stage.q ^ din)
        c.output("y", target.q)
        return c.finalize(), trig, din

    def test_path_runs_source_to_sink_through_tainted_nets(self):
        netlist, trig, _din = self.build()
        result = propagate(netlist, trig.nets)
        d_nets = netlist.register_d_nets("target")
        path = shortest_taint_path(netlist, trig.nets, d_nets, result)
        assert path[0] in trig.nets
        assert path[-1] in d_nets
        for net in path:
            assert result.level(net) >= MAYBE

    def test_path_is_deterministic(self):
        netlist, trig, _din = self.build()
        result = propagate(netlist, trig.nets)
        d_nets = netlist.register_d_nets("target")
        first = shortest_taint_path(netlist, trig.nets, d_nets, result)
        second = shortest_taint_path(netlist, trig.nets, d_nets, result)
        assert first == second

    def test_untainted_target_yields_empty_path(self):
        netlist, trig, din = self.build()
        result = propagate(netlist, trig.nets)
        path = shortest_taint_path(netlist, trig.nets, din.nets, result)
        assert path == []
