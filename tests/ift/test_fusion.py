"""Portfolio fusion: IFT evidence inside the audit report.

Covers the detector and scheduler attachment paths, the fused
``leakage_suspect`` verdict, checkpoint round-trips, and the jobs=1 ==
jobs=4 byte-identity that the ISSUE pins for fused reports.
"""

import pytest

from repro.core import AuditConfig, TrojanDetector
from repro.core.detector import fused_register_scores, prioritize_registers
from repro.ift import analyze_design
from repro.properties import DesignSpec
from repro.runner import CheckRunner
from repro.runner.checkpoint import finding_from_dict, finding_to_dict

from tests.conftest import build_secret_design, secret_spec


def secret_setup(trojan=True):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(
        name=netlist.name, critical={"secret": secret_spec()}
    )
    return netlist, spec, analyze_design(netlist, spec, design=netlist.name)


def run_audit(netlist, spec, ift_report, jobs=1, **kwargs):
    kwargs.setdefault("max_cycles", 10)
    kwargs.setdefault("time_budget", 60)
    detector = TrojanDetector(
        netlist,
        spec,
        config=AuditConfig(jobs=jobs, ift_report=ift_report, **kwargs),
        runner=CheckRunner.configure(check_timeout=120),
    )
    return detector.run()


class TestEvidenceAttachment:
    def test_serial_audit_attaches_ift_evidence(self):
        netlist, spec, ift_report = secret_setup()
        report = run_audit(netlist, spec, ift_report)
        finding = report.findings["secret"]
        assert finding.ift_flagged
        rules = {entry["rule"] for entry in finding.ift_evidence}
        assert "taint-reaches-critical" in rules
        assert finding.ift_evidence == [
            f.to_dict() for f in ift_report.findings_for("secret")
        ]

    def test_scheduler_audit_attaches_identical_evidence(self):
        netlist, spec, ift_report = secret_setup()
        serial = run_audit(netlist, spec, ift_report, jobs=1)
        parallel = run_audit(netlist, spec, ift_report, jobs=4)
        assert (
            serial.findings["secret"].ift_evidence
            == parallel.findings["secret"].ift_evidence
        )

    def test_no_ift_report_leaves_evidence_empty(self):
        netlist, spec, _ift = secret_setup()
        report = run_audit(netlist, spec, None)
        finding = report.findings["secret"]
        assert finding.ift_evidence == []
        assert not finding.ift_flagged
        assert finding.status != "leakage_suspect"


class TestLeakageSuspect:
    def test_taint_without_corruption_is_a_leakage_suspect(self):
        # bound 2 is far below the trigger count, so every bounded check
        # passes — only the static taint evidence disagrees
        netlist, spec, ift_report = secret_setup()
        report = run_audit(netlist, spec, ift_report, max_cycles=2)
        finding = report.findings["secret"]
        assert not report.trojan_found
        assert finding.status == "leakage_suspect"
        assert report.leakage_suspects == ["secret"]
        assert "LEAKAGE SUSPECT" in report.summary()
        assert report.to_dict()["leakage_suspects"] == ["secret"]

    def test_confirmed_trojan_outranks_the_suspect_status(self):
        netlist, spec, ift_report = secret_setup()
        report = run_audit(netlist, spec, ift_report, max_cycles=10)
        finding = report.findings["secret"]
        assert report.trojan_found
        assert finding.ift_flagged
        assert not finding.leakage_suspect  # confirmed, not a suspect
        assert report.leakage_suspects == []

    def test_clean_design_stays_ok(self):
        netlist, spec, ift_report = secret_setup(trojan=False)
        assert ift_report.findings == []
        report = run_audit(netlist, spec, ift_report, max_cycles=4)
        assert report.findings["secret"].status == "ok"
        assert report.leakage_suspects == []


class TestCheckpointRoundTrip:
    def test_ift_evidence_survives_serialization(self):
        netlist, spec, ift_report = secret_setup()
        report = run_audit(netlist, spec, ift_report, max_cycles=2)
        finding = report.findings["secret"]
        restored = finding_from_dict(finding_to_dict(finding))
        assert restored.ift_evidence == finding.ift_evidence
        assert restored.ift_flagged
        assert restored.status == "leakage_suspect"

    def test_legacy_checkpoint_without_ift_defaults_empty(self):
        netlist, spec, _ift = secret_setup()
        report = run_audit(netlist, spec, None, max_cycles=2)
        data = finding_to_dict(report.findings["secret"])
        del data["ift_evidence"]
        restored = finding_from_dict(data)
        assert restored.ift_evidence == []


class TestFusedPrioritization:
    def test_without_any_report_order_is_preserved(self):
        names = ["c", "a", "b"]
        assert prioritize_registers(names) == names

    def test_ift_scores_pull_flagged_registers_forward(self):
        _netlist, _spec, ift_report = secret_setup()
        order = prioritize_registers(
            ["alpha", "secret", "zulu"], None, ift_report
        )
        assert order[0] == "secret"
        assert order[1:] == ["alpha", "zulu"]  # ties keep input order

    def test_scores_sum_across_modalities(self):
        _netlist, _spec, ift_report = secret_setup()
        ift_only = fused_register_scores(None, ift_report)
        assert ift_only["secret"] > 0
        both = fused_register_scores(ift_report, ift_report)
        assert both["secret"] == 2 * ift_only["secret"]


@pytest.mark.parametrize("trojan", [True, False], ids=["trojan", "clean"])
def test_fused_report_is_byte_identical_across_jobs(trojan):
    netlist, spec, ift_report = secret_setup(trojan=trojan)
    one = run_audit(netlist, spec, ift_report, jobs=1)
    four = run_audit(netlist, spec, ift_report, jobs=4)
    assert one.to_json(scrub=True) == four.to_json(scrub=True)
