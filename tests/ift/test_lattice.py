"""Lattice algebra: join/weaken must form a monotone semilattice.

The fixpoint engine's termination proof rests on these identities, so
they are pinned exactly rather than spot-checked.
"""

import itertools

from repro.ift import MAYBE, TAINTED, UNTAINTED, join, weaken
from repro.ift.lattice import LEVEL_NAMES, join_all, level_name

LEVELS = [UNTAINTED, MAYBE, TAINTED]


def test_levels_are_ordered():
    assert UNTAINTED < MAYBE < TAINTED


def test_join_is_max():
    for a, b in itertools.product(LEVELS, repeat=2):
        assert join(a, b) == max(a, b)


def test_join_laws():
    for a, b, c in itertools.product(LEVELS, repeat=3):
        assert join(a, b) == join(b, a)  # commutative
        assert join(a, join(b, c)) == join(join(a, b), c)  # associative
        assert join(a, a) == a  # idempotent
    for a in LEVELS:
        assert join(a, UNTAINTED) == a  # bottom is neutral
        assert join(a, TAINTED) == TAINTED  # top absorbs


def test_join_all_folds():
    assert join_all([]) == UNTAINTED
    assert join_all([UNTAINTED, MAYBE]) == MAYBE
    assert join_all([MAYBE, TAINTED, UNTAINTED]) == TAINTED


def test_weaken_caps_at_maybe():
    assert weaken(UNTAINTED) == UNTAINTED
    assert weaken(MAYBE) == MAYBE
    assert weaken(TAINTED) == MAYBE


def test_weaken_is_monotone_and_decreasing():
    for a, b in itertools.product(LEVELS, repeat=2):
        if a <= b:
            assert weaken(a) <= weaken(b)
    for a in LEVELS:
        assert weaken(a) <= a
        assert weaken(weaken(a)) == weaken(a)  # idempotent


def test_level_names():
    assert [level_name(lvl) for lvl in LEVELS] == [
        "untainted",
        "maybe",
        "tainted",
    ]
    assert len(LEVEL_NAMES) == 3
