"""Merged lint+IFT SARIF export: one multi-run 2.1.0 document."""

import json

import pytest

from repro.frontend import build_builtin as build_design
from repro.ift import analyze_design, merged_sarif, to_sarif, write_sarif
from repro.lint import lint_design

from tests.lint.test_sarif import SARIF_21_SUBSET


def reports_for(names):
    ift_reports, lint_reports = [], []
    for name in names:
        netlist, spec = build_design(name)
        ift_reports.append(analyze_design(netlist, spec, design=name))
        lint_reports.append(lint_design(netlist, spec, design=name))
    return ift_reports, lint_reports


def test_ift_only_log_structure():
    ift_reports, _lint = reports_for(["mc8051-t800"])
    log = to_sarif(ift_reports)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-ift"
    assert len(run["results"]) == len(ift_reports[0].findings)
    rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "taint-reaches-critical" in rules
    for result in run["results"]:
        assert rules[result["ruleIndex"]] == result["ruleId"]


def test_merged_log_interleaves_both_modalities():
    names = ["router", "mc8051-t800"]
    ift_reports, lint_reports = reports_for(names)
    log = merged_sarif(ift_reports, lint_reports)
    drivers = [run["tool"]["driver"]["name"] for run in log["runs"]]
    assert drivers == ["repro-lint", "repro-lint", "repro-ift", "repro-ift"]
    designs = [run["properties"]["design"] for run in log["runs"]]
    assert designs == names + names


def test_merged_log_validates_against_embedded_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    ift_reports, lint_reports = reports_for(["risc", "risc-t100"])
    jsonschema.validate(
        merged_sarif(ift_reports, lint_reports), SARIF_21_SUBSET
    )


def test_suspicious_findings_map_to_error_level():
    ift_reports, _lint = reports_for(["aes-t800"])
    log = to_sarif(ift_reports)
    by_rule = {
        r["ruleId"]: r["level"] for r in log["runs"][0]["results"]
    }
    assert by_rule["taint-reaches-critical"] == "error"


def test_run_properties_carry_engine_accounting():
    ift_reports, _lint = reports_for(["risc-t100"])
    log = to_sarif(ift_reports)
    props = log["runs"][0]["properties"]
    assert set(props["ruleHits"]) == {
        "taint-reaches-critical",
        "taint-reaches-output",
        "taint-reaches-enable",
    }
    stats = props["registerStats"]
    assert any(entry["num_sources"] for entry in stats.values())


def test_write_sarif_emits_stable_bytes(tmp_path):
    ift_reports, lint_reports = reports_for(["mc8051", "mc8051-t800"])
    first = tmp_path / "a.sarif"
    second = tmp_path / "b.sarif"
    write_sarif(first, ift_reports, lint_reports)
    write_sarif(second, ift_reports, lint_reports)
    assert first.read_bytes() == second.read_bytes()
    log = json.loads(first.read_text())
    assert len(log["runs"]) == 4
