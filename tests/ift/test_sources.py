"""Taint-source derivation: the documented cone vs the write-port cone."""

from repro.ift import derive_sources
from repro.ift.sources import documented_support
from repro.lint import DesignAnalysis
from repro.properties.valid_ways import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def derive(trojan):
    netlist = build_secret_design(trojan=trojan)
    spec = DesignSpec(name=netlist.name, critical={"secret": secret_spec()})
    analysis = DesignAnalysis(netlist, spec)
    return netlist, spec, analysis, derive_sources(
        netlist, spec, "secret", analysis
    )


def test_clean_design_has_no_sources():
    _netlist, _spec, _analysis, sources = derive(trojan=False)
    assert sources.is_clean
    assert sources.sources == []


def test_trojan_trigger_state_becomes_a_source():
    netlist, _spec, _analysis, sources = derive(trojan=True)
    assert not sources.is_clean
    counter_q = set(netlist.register_q_nets("troj_counter"))
    # the spliced counter is undocumented write-port support
    assert counter_q <= set(sources.sources)
    # everything the spec reads is NOT a source
    assert not set(sources.sources) & sources.documented


def test_documented_cone_covers_spec_reads_and_own_q():
    netlist, spec, analysis, _sources = derive(trojan=True)
    documented, anchors = documented_support(
        netlist, spec, "secret", analysis
    )
    for name in ("input:reset", "input:load", "input:key_in"):
        assert name in anchors
    own_q = set(netlist.register_q_nets("secret"))
    assert own_q <= documented
    load_nets = set(netlist.inputs["load"])
    assert load_nets <= documented


def test_recording_does_not_pollute_the_netlist():
    netlist = build_secret_design(trojan=True)
    spec = DesignSpec(name=netlist.name, critical={"secret": secret_spec()})
    analysis = DesignAnalysis(netlist, spec)
    cells_before = len(netlist.cells)
    nets_before = netlist.num_nets
    derive_sources(netlist, spec, "secret", analysis)
    assert len(netlist.cells) == cells_before
    assert netlist.num_nets == nets_before


def test_sources_are_sorted_and_stable():
    _netlist, _spec, _analysis, first = derive(trojan=True)
    _netlist, _spec, _analysis, second = derive(trojan=True)
    assert first.sources == sorted(first.sources)
    assert first.sources == second.sources
    assert first.anchor_names == second.anchor_names
