"""Cross-engine soundness: explicit-state reachability as the oracle.

For small random sequential circuits we can enumerate the exact set of
reachable states per time frame by breadth-first search over all input
combinations. Every formal engine must agree with that oracle on "can this
predicate net be 1 within T cycles?" — both the verdict and, for BMC-style
minimality, the exact earliest frame.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import PodemJustifier, SequentialJustifier
from repro.bmc import BmcEngine
from repro.netlist import Circuit
from repro.sim import CombEvaluator

MAX_FRAMES = 6


def random_fsm(rng):
    """A random 2-input, <=5-flop circuit with a 1-bit predicate output."""
    c = Circuit("fsm")
    a = c.input("a", 1)
    b = c.input("b", 1)
    n_flops = rng.randint(2, 5)
    regs = [
        c.reg("r{}".format(i), 1, init=rng.getrandbits(1))
        for i in range(n_flops)
    ]
    signals = [a.nets[0], b.nets[0]] + [r.q.nets[0] for r in regs]
    for _ in range(rng.randint(3, 10)):
        kind = rng.choice(["and", "or", "xor", "not", "mux"])
        if kind == "not":
            out = c.gate("not", rng.choice(signals))
        elif kind == "mux":
            out = c.gate(
                "mux",
                rng.choice(signals),
                rng.choice(signals),
                rng.choice(signals),
            )
        else:
            out = c.gate(kind, rng.choice(signals), rng.choice(signals))
        signals.append(out)
    for reg in regs:
        reg.drive(c.bv([rng.choice(signals)]))
    predicate = c.gate(
        "and", rng.choice(signals), rng.choice(signals)
    )
    predicate = c.gate("xor", predicate, rng.choice(signals))
    c.output("p", c.bv([predicate]))
    return c.finalize(), predicate


def oracle_earliest_frame(netlist, predicate, max_frames):
    """BFS over (frame, state): earliest frame at which the predicate can
    be 1, or None. Frame f evaluates the predicate with the state reached
    after f full cycles (matching the engines' frame indexing)."""
    evaluator = CombEvaluator(netlist)
    flops = netlist.flops

    def comb(state, a, b):
        values = evaluator.fresh_values()
        for flop, bit in zip(flops, state):
            values[flop.q] = bit
        values[netlist.inputs["a"][0]] = a
        values[netlist.inputs["b"][0]] = b
        evaluator.propagate(values)
        next_state = tuple(values[f.d] for f in flops)
        return values[predicate], next_state

    states = {tuple(f.init for f in flops)}
    for frame in range(max_frames):
        next_states = set()
        for state in states:
            for a in (0, 1):
                for b in (0, 1):
                    hit, nxt = comb(state, a, b)
                    if hit:
                        return frame
                    next_states.add(nxt)
        states = next_states
    return None


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10 ** 6))
def test_engines_match_explicit_state_oracle(seed):
    rng = random.Random(seed)
    netlist, predicate = random_fsm(rng)
    earliest = oracle_earliest_frame(netlist, predicate, MAX_FRAMES)

    bmc = BmcEngine(netlist, predicate).check(MAX_FRAMES)
    backward = SequentialJustifier(netlist, predicate).check(MAX_FRAMES)
    podem = PodemJustifier(netlist, predicate).check(MAX_FRAMES)

    if earliest is None:
        for result in (bmc, backward, podem):
            assert result.status == "proved", (seed, result.status)
    else:
        expected_bound = earliest + 1
        for result in (bmc, backward, podem):
            assert result.status == "violated", (seed, result.status)
            assert result.bound == expected_bound, (seed, result.bound)
            # and the witness must actually work
            from repro.bmc.witness import confirms_violation

            assert confirms_violation(netlist, result.witness, predicate)
