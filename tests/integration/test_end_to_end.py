"""Cross-module integration: the full paper pipeline on real designs.

These run the complete flow — design construction, monitor synthesis,
formal checking with both engines, witness replay — on the three benchmark
families. Kept to the fastest Trojan of each family so the suite stays
minutes-scale; the benchmarks cover all nine.
"""

import pytest

from repro.core import TrojanDetector
from repro.designs.trojans import mc8051_t700, mc8051_t800, risc_t400
from repro.designs import build_mc8051


@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_mc8051_t700_full_pipeline(engine):
    netlist, spec = mc8051_t700()
    report = TrojanDetector(
        netlist, spec, max_cycles=10, engine=engine, time_budget=90
    ).run(registers=["acc"])
    finding = report.findings["acc"]
    assert finding.corrupted
    assert finding.witness_confirmed
    # the witness must contain the arming MOV A,#0x55
    armed = any(
        (words["instr"] >> 8) == 0x74 and (words["instr"] & 0xFF) == 0x55
        for words in finding.corruption.witness.inputs
    )
    assert armed


@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_mc8051_t800_full_pipeline(engine):
    netlist, spec = mc8051_t800()
    report = TrojanDetector(
        netlist, spec, max_cycles=10, engine=engine, time_budget=90
    ).run(registers=["stack_pointer"])
    finding = report.findings["stack_pointer"]
    assert finding.corrupted and finding.witness_confirmed
    # the 0xFF UART byte must arrive nibble-wise in the witness
    saw_low = any(
        words["uart_valid"] and (words["uart_rx"] & 0x0F) == 0x0F
        for words in finding.corruption.witness.inputs
    )
    assert saw_low


def test_risc_t400_full_pipeline_bmc():
    netlist, spec = risc_t400(trigger_count=2)
    report = TrojanDetector(
        netlist, spec, max_cycles=28, engine="bmc", time_budget=120
    ).run(registers=["eeprom_address"])
    finding = report.findings["eeprom_address"]
    assert finding.corrupted and finding.witness_confirmed


def test_clean_mc8051_all_registers_certified():
    netlist, spec = build_mc8051()
    report = TrojanDetector(
        netlist, spec, max_cycles=8, engine="bmc", time_budget=120,
        stop_on_first=False,
    ).run()
    assert not report.trojan_found
    assert report.trusted_for() == 8
    assert len(report.findings) == len(spec.critical)


def test_detector_audits_only_requested_registers():
    netlist, spec = mc8051_t700()
    report = TrojanDetector(
        netlist, spec, max_cycles=6, engine="bmc", time_budget=60
    ).run(registers=["uart_data"])
    # the Trojan targets acc; auditing only uart_data finds nothing
    assert not report.trojan_found
    assert list(report.findings) == ["uart_data"]
