"""Analysis-core tests: mux trees, register graph, counters, dominators."""

from repro.lint import DesignAnalysis
from repro.netlist import Circuit, Netlist
from repro.properties.valid_ways import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def secret_design_spec():
    return DesignSpec(name="secret", critical={"secret": secret_spec()})


class TestMuxTree:
    def test_clean_secret_has_two_update_arms_and_hold_default(self):
        analysis = DesignAnalysis(build_secret_design(trojan=False))
        tree = analysis.mux_tree("secret")
        assert len(tree.update_arms) == 2  # reset, load
        assert tree.default_holds
        assert tree.num_write_ports == 2

    def test_trojan_splice_adds_an_outermost_arm(self):
        netlist = build_secret_design(trojan=True)
        analysis = DesignAnalysis(netlist)
        tree = analysis.mux_tree("secret")
        assert tree.num_write_ports == 3
        # the spliced payload mux is outermost: its select reads the
        # trigger counter, not a primary input
        outer = tree.arms[0]
        cone = analysis.comb_cone([outer.select])
        counter_q = set(netlist.register_q_nets("troj_counter"))
        assert cone & counter_q

    def test_hold_arms_are_not_write_ports(self):
        c = Circuit("hold")
        load = c.input("load", 1)
        keep = c.input("keep", 1)
        din = c.input("din", 4)
        r = c.reg("r", 4)
        r.drive(c.select(din, (load, din), (keep, r.q)))
        analysis = DesignAnalysis(c.finalize())
        tree = analysis.mux_tree("r")
        holds = [arm for arm in tree.arms if arm.is_hold]
        assert len(holds) == 1
        assert len(tree.update_arms) == 1
        assert not tree.default_holds  # default writes din every cycle
        assert tree.num_write_ports == 2

    def test_tree_is_cached(self):
        analysis = DesignAnalysis(build_secret_design(trojan=False))
        assert analysis.mux_tree("secret") is analysis.mux_tree("secret")


class TestRegisterGraph:
    def test_secret_reads_trigger_counter(self):
        analysis = DesignAnalysis(build_secret_design(trojan=True))
        assert "troj_counter" in analysis.register_reads["secret"]
        assert "secret" in analysis.register_readers["troj_counter"]

    def test_clean_secret_reads_only_itself(self):
        analysis = DesignAnalysis(build_secret_design(trojan=False))
        assert analysis.register_reads["secret"] == {"secret"}


class TestCounters:
    def test_trigger_counter_is_classified(self):
        analysis = DesignAnalysis(build_secret_design(trojan=True))
        assert "troj_counter" in analysis.counters
        assert "secret" not in analysis.counters

    def test_clean_design_has_no_counter(self):
        analysis = DesignAnalysis(build_secret_design(trojan=False))
        assert analysis.counters == []


class TestDominators:
    def test_net_dominates_itself(self):
        c = Circuit("d")
        a = c.input("a", 1)
        r = c.reg("r", 1)
        r.drive(r.q & a)
        analysis = DesignAnalysis(c.finalize())
        q = analysis.netlist.register_q_nets("r")[0]
        assert analysis.dominates(q, q)

    def test_single_gatekeeper_flop_dominates(self):
        c = Circuit("d")
        armed = c.reg("armed", 1)
        trig = c.input("trig", 1)
        armed.drive(armed.q | trig)
        gate = ~armed.q  # every path to `gate` goes through armed.q
        c.output("y", gate)
        analysis = DesignAnalysis(c.finalize())
        q = analysis.netlist.register_q_nets("armed")[0]
        root = analysis.netlist.outputs["y"][0]
        assert analysis.dominates(q, root)

    def test_parallel_source_defeats_domination(self):
        c = Circuit("d")
        armed = c.reg("armed", 1)
        other = c.input("other", 1)
        armed.drive(armed.q)
        c.output("y", armed.q[0] | other)
        analysis = DesignAnalysis(c.finalize())
        q = analysis.netlist.register_q_nets("armed")[0]
        root = analysis.netlist.outputs["y"][0]
        assert not analysis.dominates(q, root)


class TestLiveness:
    def test_orphan_gate_is_not_live(self):
        c = Circuit("dead")
        a = c.input("a", 1)
        orphan = ~a
        c.output("y", a)
        netlist = c.finalize()
        analysis = DesignAnalysis(netlist)
        assert orphan.nets[0] not in analysis.live_nets
        assert netlist.outputs["y"][0] in analysis.live_nets

    def test_probed_logic_counts_as_live(self):
        c = Circuit("probed")
        a = c.input("a", 1)
        inner = ~a
        c.probe("watch", inner)
        c.output("y", a)
        analysis = DesignAnalysis(c.finalize())
        assert inner.nets[0] in analysis.live_nets


class TestSharedStats:
    def test_analysis_and_report_share_one_stats_source(self):
        from repro.lint import lint_design
        from repro.netlist import stats

        netlist = build_secret_design(trojan=False)
        direct = stats(netlist)
        report = lint_design(netlist, secret_design_spec())
        assert report.stats.num_cells == direct.num_cells
        assert report.stats.max_fanout == direct.max_fanout
        assert report.to_dict()["netlist"]["max_fanout"] == direct.max_fanout

    def test_empty_netlist_analyzes_cleanly(self):
        analysis = DesignAnalysis(Netlist("empty"))
        assert analysis.order == []
        assert analysis.counters == []
        assert analysis.live_nets == set()


class TestAdversarialGraphs:
    """Analysis queries on graph shapes the IFT fusion leans on."""

    def test_multi_fanout_enable_appears_in_both_mux_trees(self):
        # one trigger net gates two registers; each tree must report it
        # and their enable cones must share the trigger's support
        c = Circuit("fanout")
        trig = c.input("trig", 1)
        din = c.input("din", 4)
        rega = c.reg("rega", 4)
        rega.hold_unless((trig, din))
        regb = c.reg("regb", 4)
        regb.hold_unless((trig, din + rega.q))
        c.output("y", rega.q ^ regb.q)
        analysis = DesignAnalysis(c.finalize())
        cone_a = analysis.comb_support(analysis.mux_tree("rega").select_nets)
        cone_b = analysis.comb_support(analysis.mux_tree("regb").select_nets)
        assert trig.nets[0] in cone_a
        assert trig.nets[0] in cone_b

    def test_register_only_cycle_support_stops_at_the_boundary(self):
        # comb_support must treat flop Qs as anchors, not recurse through
        # the sequential cycle forever
        c = Circuit("ring")
        seed = c.input("seed", 1)
        a = c.reg("a", 1)
        b = c.reg("b", 1)
        a.drive(b.q ^ seed)
        b.drive(a.q)
        c.output("y", b.q)
        netlist = c.finalize()
        analysis = DesignAnalysis(netlist)
        support = analysis.comb_support(netlist.register_d_nets("a"))
        assert set(netlist.register_q_nets("b")) <= support
        assert seed.nets[0] in support
        # b's own D support is just a's Q: the cycle was not flattened
        support_b = analysis.comb_support(netlist.register_d_nets("b"))
        assert support_b == set(netlist.register_q_nets("a"))

    def test_shared_cone_is_reported_for_every_consumer(self):
        c = Circuit("shared")
        x = c.input("x", 4)
        y = c.input("y", 4)
        shared = x ^ y
        rega = c.reg("rega", 4)
        rega.drive(shared)
        regb = c.reg("regb", 4)
        regb.drive(~shared)
        c.output("out", rega.q & regb.q)
        netlist = c.finalize()
        analysis = DesignAnalysis(netlist)
        for name in ("rega", "regb"):
            support = analysis.comb_support(
                netlist.register_d_nets(name)
            )
            assert set(x.nets) <= support
            assert set(y.nets) <= support
