"""Acceptance tests on the bundled benchmark designs.

The ISSUE's bar: lint flags the trigger/payload structure in every
bundled Trojaned design, keeps suspicious-level false positives on the
clean designs at zero, and its prioritization puts the Trojaned register
ahead of the median clean register in Algorithm 1's order.
"""

import pytest

from repro.frontend import BUILTIN_DESIGNS as DESIGNS
from repro.frontend import build_builtin as build_design
from repro.lint import SUSPICIOUS, lint_design, severity_rank

TROJANED = [
    "mc8051-t400",
    "mc8051-t700",
    "mc8051-t800",
    "risc-t100",
    "risc-t300",
    "risc-t400",
    "aes-t700",
    "aes-t800",
    "aes-t1200",
]
CLEAN = ["risc", "mc8051", "aes", "router"]


def run_lint(name):
    netlist, spec = build_design(name)
    return spec, lint_design(netlist, spec, design=name)


@pytest.mark.parametrize("name", TROJANED)
def test_trojaned_design_target_register_is_flagged(name):
    spec, report = run_lint(name)
    target = spec.trojan.target_register
    suspicious = [
        f
        for f in report.findings_for(target)
        if severity_rank(f.severity) >= severity_rank(SUSPICIOUS)
    ]
    assert suspicious, "lint missed the Trojan in {}".format(name)
    # the splice pattern always leaves an undocumented write port
    assert any(f.rule == "undocumented-write-port" for f in suspicious)


@pytest.mark.parametrize("name", CLEAN)
def test_clean_design_has_zero_suspicious_findings(name):
    _spec, report = run_lint(name)
    suspicious = [
        f
        for f in report.findings
        if severity_rank(f.severity) >= severity_rank(SUSPICIOUS)
    ]
    assert suspicious == [], "false positives on clean {}: {}".format(
        name, [str(f) for f in suspicious]
    )


@pytest.mark.parametrize("name", CLEAN)
def test_clean_design_hygiene_noise_is_bounded(name):
    # warn/info hygiene findings (pre-existing dead logic, scratch nets)
    # are tolerated but must stay grouped: at most one finding per rule
    _spec, report = run_lint(name)
    for rule, count in report.rule_hits.items():
        assert count <= 1, "{} fired {} times on clean {}".format(
            rule, count, name
        )


@pytest.mark.parametrize("name", TROJANED)
def test_prioritization_beats_the_median_clean_register(name):
    spec, report = run_lint(name)
    registers = list(spec.critical)
    order = report.prioritize(registers)
    target = spec.trojan.target_register
    position = order.index(target)
    median = len(registers) / 2
    assert position < max(1, median), (
        "{}: target {} audited at position {} of {}".format(
            name, target, position, len(registers)
        )
    )
    # empirically the target is the *only* flagged register, hence first
    assert order[0] == target


@pytest.mark.parametrize("name", CLEAN)
def test_clean_design_order_is_untouched(name):
    spec, report = run_lint(name)
    registers = list(spec.critical)
    assert report.prioritize(registers) == registers


def test_counter_rule_fires_on_the_counter_based_trojans(name=None):
    for design in ["risc-t100", "risc-t300", "risc-t400", "aes-t700"]:
        _spec, report = run_lint(design)
        assert report.rule_hits["counter-feeds-payload-mux"] >= 1, design


def test_dominator_rule_fires_on_the_sticky_latch_trojans():
    for design in ["mc8051-t400", "mc8051-t800", "router-redirect"]:
        _spec, report = run_lint(design)
        assert any(
            f.rule == "pseudo-critical-candidate" for f in report.findings
        ), design


def test_every_bundled_design_lints_without_crashing():
    for name in sorted(DESIGNS):
        _spec, report = run_lint(name)
        assert report.elapsed >= 0
        assert set(report.rule_stats)  # every enabled rule accounted
