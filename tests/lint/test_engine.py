"""Engine, config and report-serialization tests."""

import json

import pytest

from repro.lint import (
    LintConfig,
    LintConfigError,
    Linter,
    LintFinding,
    LintReport,
    lint_design,
    severity_rank,
)
from repro.properties.valid_ways import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def trojan_report(config=None):
    spec = DesignSpec(name="secret", critical={"secret": secret_spec()})
    return lint_design(
        build_secret_design(trojan=True), spec, config=config
    )


class TestConfig:
    def test_disable_silences_a_rule_entirely(self):
        report = trojan_report(
            LintConfig(disabled=["undocumented-write-port"])
        )
        assert all(
            f.rule != "undocumented-write-port" for f in report.findings
        )
        assert "undocumented-write-port" not in report.rule_stats

    def test_disabling_unknown_rule_is_an_error(self):
        with pytest.raises(LintConfigError):
            LintConfig(disabled=["no-such-rule"])

    def test_suppression_matches_rule_and_subject_globs(self):
        report = trojan_report(
            LintConfig(suppressions=[("undocumented-*", "secret")])
        )
        assert all(
            f.rule != "undocumented-write-port" for f in report.findings
        )
        # suppressed findings do not count as hits
        assert report.rule_hits["undocumented-write-port"] == 0

    def test_suppression_with_wrong_subject_keeps_finding(self):
        report = trojan_report(
            LintConfig(suppressions=[("undocumented-*", "other_reg")])
        )
        assert any(
            f.rule == "undocumented-write-port" for f in report.findings
        )

    def test_severity_override_demotes_a_rule(self):
        report = trojan_report(
            LintConfig(severity_overrides={"undocumented-write-port": "info"})
        )
        finding = next(
            f for f in report.findings
            if f.rule == "undocumented-write-port"
        )
        assert finding.severity == "info"

    def test_override_with_unknown_severity_is_an_error(self):
        with pytest.raises(LintConfigError):
            LintConfig(severity_overrides={"unread-net": "catastrophic"})


class TestEngine:
    def test_every_enabled_rule_gets_stats_even_with_zero_hits(self):
        report = trojan_report()
        for stats in report.rule_stats.values():
            assert stats.elapsed >= 0
        assert report.rule_hits["excessive-depth"] == 0

    def test_custom_rule_subset(self):
        from repro.lint.rules import RULE_REGISTRY

        linter = Linter(rules=[RULE_REGISTRY["unread-net"]()])
        report = linter.run(build_secret_design(trojan=True))
        assert set(report.rule_stats) == {"unread-net"}

    def test_design_name_precedence(self):
        netlist = build_secret_design(trojan=False)
        assert lint_design(netlist).design == netlist.name
        assert lint_design(netlist, design="override").design == "override"


class TestFindings:
    def test_finding_round_trips_through_dict(self):
        finding = LintFinding(
            rule="wide-comparator",
            severity="suspicious",
            message="m",
            design="d",
            register="r",
            nets=[5, 7],
            net_names=["a", "b"],
            evidence={"width": 24},
        )
        assert LintFinding.from_dict(finding.to_dict()) == finding

    def test_unknown_severity_rejected_eagerly(self):
        with pytest.raises(ValueError):
            LintFinding(rule="x", severity="meh", message="m")
        with pytest.raises(ValueError):
            severity_rank("meh")

    def test_report_json_parses_and_carries_scores(self):
        report = trojan_report()
        data = json.loads(report.to_json())
        assert data["design"] == "secret"
        assert data["register_scores"]["secret"] > 0
        assert data["netlist"]["cells"] > 0
        restored = [
            LintFinding.from_dict(entry) for entry in data["findings"]
        ]
        assert restored == report.findings

    def test_prioritize_is_stable_for_ties(self):
        report = LintReport(design="d")
        names = ["a", "b", "c"]
        assert report.prioritize(names) == names  # no findings: unchanged
        report.findings.append(
            LintFinding(rule="x", severity="suspicious", message="m",
                        register="c")
        )
        assert report.prioritize(names) == ["c", "a", "b"]

    def test_severity_weights_order_registers(self):
        report = LintReport(design="d")
        report.findings.append(
            LintFinding(rule="x", severity="warn", message="m", register="a")
        )
        report.findings.append(
            LintFinding(rule="x", severity="suspicious", message="m",
                        register="b")
        )
        scores = report.register_scores()
        assert scores["b"] > scores["a"]

    def test_summary_mentions_counts_and_priority(self):
        report = trojan_report()
        text = report.summary()
        assert "suspicious" in text
        assert "priority:" in text
        assert "secret" in text


class TestBrokenNetlistResilience:
    def test_rules_fail_individually_not_collectively(self):
        from repro.netlist import Kind, Netlist

        nl = Netlist("broken")
        phantom = nl.new_net("phantom")
        nl.add_cell(Kind.NOT, (phantom,))
        report = lint_design(nl)  # must not raise
        assert any(
            f.rule == "floating-net" and f.severity == "error"
            for f in report.findings
        )
        crashed = [
            f for f in report.findings if f.evidence.get("crashed")
        ]
        assert crashed  # topology-needing rules report their failure
        assert report.stats is None
