"""Lint ↔ Algorithm 1 integration: ordering, evidence, checkpoints, bench."""

from repro.bench import LintRow, lint_run
from repro.core import TrojanDetector
from repro.lint import LintFinding, LintReport, lint_design
from repro.properties.valid_ways import DesignSpec
from repro.runner import AuditCheckpoint
from repro.runner.checkpoint import finding_from_dict, finding_to_dict

from tests.conftest import (
    build_dual_register_design,
    build_secret_design,
    register_spec_for,
    secret_spec,
)


def dual_spec():
    return DesignSpec(
        name="dual",
        critical={
            "rega": register_spec_for("rega"),
            "regb": register_spec_for("regb"),
        },
    )


def report_flagging(register, design="dual"):
    report = LintReport(design=design)
    report.findings.append(
        LintFinding(
            rule="undocumented-write-port",
            severity="suspicious",
            message="synthetic",
            design=design,
            register=register,
        )
    )
    return report


class TestDetectorOrdering:
    def test_flagged_register_is_audited_first(self):
        netlist = build_dual_register_design()
        detector = TrojanDetector(
            netlist,
            dual_spec(),
            max_cycles=4,
            lint_report=report_flagging("regb"),
        )
        report = detector.run()
        assert list(report.findings) == ["regb", "rega"]

    def test_without_lint_report_spec_order_is_kept(self):
        netlist = build_dual_register_design()
        detector = TrojanDetector(netlist, dual_spec(), max_cycles=4)
        report = detector.run()
        assert list(report.findings) == ["rega", "regb"]

    def test_explicit_register_list_is_still_prioritized(self):
        netlist = build_dual_register_design()
        detector = TrojanDetector(
            netlist,
            dual_spec(),
            max_cycles=4,
            lint_report=report_flagging("regb"),
        )
        report = detector.run(registers=["rega", "regb"])
        assert list(report.findings) == ["regb", "rega"]


class TestLintEvidence:
    def test_evidence_attached_to_flagged_register_only(self):
        netlist = build_dual_register_design()
        detector = TrojanDetector(
            netlist,
            dual_spec(),
            max_cycles=4,
            lint_report=report_flagging("regb"),
        )
        report = detector.run()
        assert report.findings["regb"].lint_flagged
        assert (
            report.findings["regb"].lint_evidence[0]["rule"]
            == "undocumented-write-port"
        )
        assert not report.findings["rega"].lint_flagged

    def test_real_lint_report_on_trojan_design(self):
        netlist = build_secret_design(trojan=True)
        spec = DesignSpec(
            name="secret", critical={"secret": secret_spec()}
        )
        lint = lint_design(netlist, spec)
        detector = TrojanDetector(
            netlist, spec, max_cycles=10, lint_report=lint
        )
        report = detector.run()
        finding = report.findings["secret"]
        assert finding.trojan_found
        rules = {e["rule"] for e in finding.lint_evidence}
        assert "undocumented-write-port" in rules
        assert "lint:" in report.summary()

    def test_evidence_survives_checkpoint_round_trip(self):
        netlist = build_dual_register_design()
        detector = TrojanDetector(
            netlist,
            dual_spec(),
            max_cycles=4,
            lint_report=report_flagging("regb"),
        )
        finding = detector.run().findings["regb"]
        restored = finding_from_dict(finding_to_dict(finding))
        assert restored.lint_evidence == finding.lint_evidence
        assert restored.lint_flagged

    def test_resumed_audit_keeps_lint_evidence(self, tmp_path):
        netlist = build_dual_register_design()
        path = tmp_path / "ckpt.json"
        lint = report_flagging("regb")
        first = TrojanDetector(
            netlist, dual_spec(), max_cycles=4, lint_report=lint
        )
        first.run(checkpoint=AuditCheckpoint(path))
        second = TrojanDetector(
            netlist, dual_spec(), max_cycles=4, lint_report=lint
        )
        report = second.run(checkpoint=AuditCheckpoint(path))
        assert report.findings["regb"].restored
        assert report.findings["regb"].lint_flagged


class TestBenchHarness:
    def test_lint_run_records_runtime_and_rule_hits(self):
        netlist = build_secret_design(trojan=True)
        spec = DesignSpec(
            name="secret", critical={"secret": secret_spec()}
        )
        row = lint_run("secret-trojan", netlist, spec)
        assert isinstance(row, LintRow)
        assert row.label == "secret-trojan"
        assert row.elapsed > 0
        assert row.flagged
        assert row.rule_hits["undocumented-write-port"] == 1
        assert row.flagged_registers["secret"] > 0
        assert row.max_severity == "suspicious"

    def test_lint_run_on_clean_design_reports_no_flags(self):
        netlist = build_secret_design(trojan=False)
        spec = DesignSpec(
            name="secret", critical={"secret": secret_spec()}
        )
        row = lint_run("secret-clean", netlist, spec)
        assert not row.flagged
        assert row.rule_hits["undocumented-write-port"] == 0
