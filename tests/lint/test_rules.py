"""Per-rule unit tests on miniature designs with known structure."""

from repro.designs.trojans import add_bypass, add_pseudo_critical
from repro.lint import LintConfig, lint_design
from repro.netlist import Circuit, Kind, Netlist
from repro.properties.valid_ways import DesignSpec

from tests.conftest import build_secret_design, secret_spec


def secret_design_spec(name="secret"):
    return DesignSpec(name=name, critical={"secret": secret_spec()})


def hits(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestUndocumentedWritePort:
    def test_clean_register_matches_its_valid_ways(self):
        report = lint_design(
            build_secret_design(trojan=False), secret_design_spec()
        )
        assert hits(report, "undocumented-write-port") == []

    def test_trojan_splice_is_an_extra_write_port(self):
        report = lint_design(
            build_secret_design(trojan=True), secret_design_spec()
        )
        found = hits(report, "undocumented-write-port")
        assert len(found) == 1
        finding = found[0]
        assert finding.register == "secret"
        assert finding.severity == "suspicious"
        assert finding.evidence["structural"] == 3
        assert finding.evidence["declared"] == 2

    def test_rule_needs_a_spec(self):
        report = lint_design(build_secret_design(trojan=True), spec=None)
        assert hits(report, "undocumented-write-port") == []


class TestWideComparator:
    def test_wide_equality_compare_is_flagged(self):
        c = Circuit("wide")
        data = c.input("data", 24)
        r = c.reg("r", 1)
        r.drive(r.q | data.eq_const(0xABCDEF))
        c.output("y", r.q)
        report = lint_design(c.finalize())
        found = hits(report, "wide-comparator")
        assert len(found) == 1
        assert found[0].evidence["width"] == 24

    def test_narrow_compare_is_quiet(self):
        report = lint_design(
            build_secret_design(trojan=True), secret_design_spec()
        )
        assert hits(report, "wide-comparator") == []  # 8-bit eq < 16

    def test_threshold_is_configurable(self):
        report = lint_design(
            build_secret_design(trojan=True),
            secret_design_spec(),
            config=LintConfig(wide_comparator_width=8),
        )
        assert hits(report, "wide-comparator")


class TestCounterFeedsPayloadMux:
    def test_trigger_counter_reaching_write_select_is_flagged(self):
        report = lint_design(
            build_secret_design(trojan=True), secret_design_spec()
        )
        found = hits(report, "counter-feeds-payload-mux")
        assert len(found) == 1
        assert found[0].register == "secret"
        assert found[0].evidence["counter"] == "troj_counter"

    def test_clean_design_has_no_counter_finding(self):
        report = lint_design(
            build_secret_design(trojan=False), secret_design_spec()
        )
        assert hits(report, "counter-feeds-payload-mux") == []

    def test_broadly_read_counter_is_exonerated(self):
        report = lint_design(
            build_secret_design(trojan=True),
            secret_design_spec(),
            config=LintConfig(counter_influence_limit=0),
        )
        assert hits(report, "counter-feeds-payload-mux") == []


class TestPseudoCriticalCandidate:
    def test_gatekeeper_flop_on_write_select_is_flagged(self):
        c = Circuit("gated")
        trig = c.input("trig", 1)
        load = c.input("load", 1)
        din = c.input("din", 4)
        armed = c.reg("armed", 1)
        armed.drive(armed.q | trig)
        r = c.reg("secret", 4)
        r.drive(c.select(r.q, (load, din), (armed.q, ~r.q)))
        c.output("y", r.q)
        spec = secret_design_spec("gated")
        report = lint_design(c.finalize(), spec)
        found = hits(report, "pseudo-critical-candidate")
        assert any(
            f.register == "secret" and f.evidence.get("dominator") == "armed"
            for f in found
        )

    def test_shadow_copy_attack_is_flagged(self):
        base = build_secret_design(trojan=False)
        attacked, _info = add_pseudo_critical(base, "secret")
        report = lint_design(attacked, secret_design_spec())
        found = hits(report, "pseudo-critical-candidate")
        assert any(
            f.evidence.get("candidate") == "pseudo_secret" for f in found
        )

    def test_clean_secret_design_is_quiet(self):
        report = lint_design(
            build_secret_design(trojan=False), secret_design_spec()
        )
        assert hits(report, "pseudo-critical-candidate") == []


class TestBypassRegisterCandidate:
    def test_bypass_attack_mux_is_flagged(self):
        base = build_secret_design(trojan=False)
        attacked, _info = add_bypass(base, "secret", trigger_input="key_in")
        report = lint_design(attacked, secret_design_spec())
        found = hits(report, "bypass-register-candidate")
        assert found
        assert any(f.register == "secret" for f in found)

    def test_inline_bypass_variant_is_flagged(self):
        report = lint_design(
            build_secret_design(trojan=False, bypass=True),
            secret_design_spec(),
        )
        assert hits(report, "bypass-register-candidate")

    def test_flop_driven_outputs_are_quiet(self):
        report = lint_design(
            build_secret_design(trojan=False), secret_design_spec()
        )
        assert hits(report, "bypass-register-candidate") == []


class TestDeadLogic:
    def test_orphan_gate_is_reported_once_with_counts(self):
        c = Circuit("dead")
        a = c.input("a", 1)
        _orphan = ~a
        c.output("y", a)
        report = lint_design(c.finalize())
        found = hits(report, "dead-logic")
        assert len(found) == 1
        assert found[0].evidence["dead_cells"] == 1

    def test_fully_live_design_is_quiet(self):
        c = Circuit("live")
        a = c.input("a", 1)
        c.output("y", ~a)
        report = lint_design(c.finalize())
        assert hits(report, "dead-logic") == []


class TestFloatingAndUnread:
    def test_read_undriven_net_is_an_error_not_a_crash(self):
        nl = Netlist("broken")
        phantom = nl.new_net("phantom")
        nl.add_cell(Kind.NOT, (phantom,))
        report = lint_design(nl)
        found = hits(report, "floating-net")
        assert any(
            f.severity == "error" and f.evidence.get("read_undriven")
            for f in found
        )

    def test_abandoned_allocation_is_a_warning(self):
        nl = Netlist("scratchy")
        nl.new_net("scratch")
        report = lint_design(nl)
        found = hits(report, "floating-net")
        assert len(found) == 1
        assert found[0].severity == "warn"

    def test_unread_driven_net_is_informational(self):
        c = Circuit("u")
        a = c.input("a", 1)
        _orphan = ~a
        c.output("y", a)
        report = lint_design(c.finalize())
        found = hits(report, "unread-net")
        assert len(found) == 1
        assert found[0].severity == "info"

    def test_probed_nets_do_not_count_as_unread(self):
        c = Circuit("p")
        a = c.input("a", 1)
        c.probe("watch", ~a)
        c.output("y", a)
        report = lint_design(c.finalize())
        assert hits(report, "unread-net") == []


class TestExcessiveDepth:
    def _deep_chain(self, length):
        nl = Netlist("deep")
        prev = nl.add_input("a", 1)[0]
        flip = nl.add_input("b", 1)[0]
        for _ in range(length):
            prev = nl.add_cell(Kind.AND, (prev, flip))
        nl.add_output("y", [prev])
        return nl

    def test_deep_chain_is_flagged(self):
        report = lint_design(self._deep_chain(60))
        found = hits(report, "excessive-depth")
        assert len(found) == 1
        assert found[0].evidence["depth"] == 60

    def test_shallow_design_is_quiet(self):
        report = lint_design(self._deep_chain(10))
        assert hits(report, "excessive-depth") == []

    def test_ceiling_is_configurable(self):
        report = lint_design(
            self._deep_chain(10), config=LintConfig(max_depth=5)
        )
        assert hits(report, "excessive-depth")


class TestTaintIntoEnable:
    def test_clean_enable_cone_matches_the_spec(self):
        report = lint_design(
            build_secret_design(trojan=False), secret_design_spec()
        )
        assert hits(report, "taint-into-enable") == []

    def test_trojan_trigger_in_enable_cone_is_flagged(self):
        report = lint_design(
            build_secret_design(trojan=True), secret_design_spec()
        )
        found = hits(report, "taint-into-enable")
        assert len(found) == 1
        finding = found[0]
        assert finding.register == "secret"
        assert finding.severity == "warn"
        assert finding.evidence["undocumented"] >= 1
        # the recorded anchors show what the spec *did* authorize
        assert "input:load" in finding.evidence["anchors"]

    def test_rule_needs_a_spec(self):
        report = lint_design(build_secret_design(trojan=True), spec=None)
        assert hits(report, "taint-into-enable") == []

    def test_unevaluable_spec_is_skipped_not_fatal(self):
        # the spec's way-callables read a 'reset' input this netlist
        # does not have; the rule must skip, not crash the lint run
        c = Circuit("bare")
        load = c.input("load", 1)
        din = c.input("din", 8)
        r = c.reg("secret", 8)
        r.hold_unless((load, din))
        c.output("y", r.q)
        report = lint_design(c.finalize(), secret_design_spec("bare"))
        assert hits(report, "taint-into-enable") == []
