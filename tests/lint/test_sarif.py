"""SARIF 2.1.0 export tests.

The official schema lives at a URL the test environment cannot fetch,
so ``SARIF_21_SUBSET`` embeds the official 2.1.0 structural constraints
for every feature the exporter emits (required properties, level enums,
type shapes) and the log is validated against it with ``jsonschema``
when available. The structural assertions below hold regardless.
"""

import json

import pytest

from repro.frontend import build_builtin as build_design
from repro.lint import lint_design, to_sarif, write_sarif

# Faithful subset of sarif-schema-2.1.0.json for the emitted features:
# property names, required sets and enums are copied from the official
# schema (sarifLog, run, tool, toolComponent, reportingDescriptor,
# result, location, logicalLocation, message).
SARIF_21_SUBSET = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {"$ref": "#/definitions/run"},
        },
    },
    "definitions": {
        "run": {
            "type": "object",
            "required": ["tool"],
            "properties": {
                "tool": {"$ref": "#/definitions/tool"},
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
                "properties": {"type": "object"},
            },
        },
        "tool": {
            "type": "object",
            "required": ["driver"],
            "properties": {
                "driver": {"$ref": "#/definitions/toolComponent"}
            },
        },
        "toolComponent": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
                "informationUri": {"type": "string", "format": "uri"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
        },
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "shortDescription": {"$ref": "#/definitions/message"},
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {
                            "enum": ["none", "note", "warning", "error"]
                        }
                    },
                },
                "properties": {"type": "object"},
            },
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": -1},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
                "properties": {"type": "object"},
            },
        },
        "location": {
            "type": "object",
            "properties": {
                "logicalLocations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/logicalLocation"},
                }
            },
        },
        "logicalLocation": {
            "type": "object",
            "properties": {
                "name": {"type": "string"},
                "fullyQualifiedName": {"type": "string"},
                "kind": {"type": "string"},
            },
        },
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
    },
}


def sample_log():
    netlist, spec = build_design("mc8051-t800")
    report = lint_design(netlist, spec, design="mc8051-t800")
    return report, to_sarif(report)


def test_log_structure():
    report, log = sample_log()
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(log["runs"]) == 1
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert len(run["results"]) == len(report.findings)


def test_validates_against_embedded_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    _report, log = sample_log()
    jsonschema.validate(log, SARIF_21_SUBSET)


def test_rule_metadata_and_indices_are_consistent():
    _report, log = sample_log()
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    ids = [entry["id"] for entry in rules]
    assert len(ids) == len(set(ids))
    assert "undocumented-write-port" in ids
    for result in run["results"]:
        assert result["ruleId"] in ids
        assert ids[result["ruleIndex"]] == result["ruleId"]


def test_severity_levels_map_to_sarif_levels():
    _report, log = sample_log()
    levels = {r["level"] for r in log["runs"][0]["results"]}
    assert levels <= {"none", "note", "warning", "error"}
    suspicious = [
        r
        for r in log["runs"][0]["results"]
        if r["properties"]["severity"] == "suspicious"
    ]
    assert suspicious
    assert all(r["level"] == "error" for r in suspicious)


def test_logical_locations_name_the_register():
    _report, log = sample_log()
    flagged = next(
        r
        for r in log["runs"][0]["results"]
        if r["ruleId"] == "undocumented-write-port"
    )
    logical = flagged["locations"][0]["logicalLocations"][0]
    assert logical["name"] == "stack_pointer"
    assert logical["fullyQualifiedName"] == "mc8051-t800/stack_pointer"


def test_multi_report_log_and_file_write(tmp_path):
    reports = []
    for name in ["risc", "risc-t100"]:
        netlist, spec = build_design(name)
        reports.append(lint_design(netlist, spec, design=name))
    path = tmp_path / "lint.sarif"
    write_sarif(path, reports)
    log = json.loads(path.read_text())
    assert len(log["runs"]) == 2
    designs = [run["properties"]["design"] for run in log["runs"]]
    assert designs == ["risc", "risc-t100"]
