"""Builder tests: word-level operators checked against Python semantics,
including a hypothesis sweep over widths and operand values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError, WidthError
from repro.netlist import CONST0, Circuit, validate
from repro.sim import SequentialSimulator


def evaluate(circuit, netlist, inputs, output="y"):
    sim = SequentialSimulator(netlist)
    for name, value in inputs.items():
        sim.set_input(name, value)
    sim.propagate()
    return sim.output_value(output)


def build_binop(width, op):
    c = Circuit("op")
    a = c.input("a", width)
    b = c.input("b", width)
    c.output("y", op(c, a, b))
    return c, c.finalize()


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=12),
    x=st.integers(min_value=0),
    y=st.integers(min_value=0),
)
def test_arithmetic_matches_python(width, x, y):
    mask = (1 << width) - 1
    x &= mask
    y &= mask
    c, nl = build_binop(width, lambda c, a, b: a + b)
    assert evaluate(c, nl, {"a": x, "b": y}) == (x + y) & mask
    c, nl = build_binop(width, lambda c, a, b: a - b)
    assert evaluate(c, nl, {"a": x, "b": y}) == (x - y) & mask


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=12),
    x=st.integers(min_value=0),
    y=st.integers(min_value=0),
)
def test_bitwise_and_compare_match_python(width, x, y):
    mask = (1 << width) - 1
    x &= mask
    y &= mask
    cases = [
        (lambda c, a, b: a & b, x & y),
        (lambda c, a, b: a | b, x | y),
        (lambda c, a, b: a ^ b, x ^ y),
        (lambda c, a, b: ~a, (~x) & mask),
        (lambda c, a, b: a == b, int(x == y)),
        (lambda c, a, b: a != b, int(x != y)),
        (lambda c, a, b: a.ult(b), int(x < y)),
        (lambda c, a, b: a.ule(b), int(x <= y)),
    ]
    for op, expected in cases:
        c, nl = build_binop(width, op)
        assert evaluate(c, nl, {"a": x, "b": y}) == expected


@settings(max_examples=40, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=10),
    x=st.integers(min_value=0),
    lo=st.integers(min_value=0),
    hi=st.integers(min_value=0),
)
def test_in_range(width, x, lo, hi):
    mask = (1 << width) - 1
    x &= mask
    lo &= mask
    hi &= mask
    c, nl = build_binop(width, lambda c, a, b: a.in_range(lo, hi))
    assert evaluate(c, nl, {"a": x, "b": 0}) == int(lo <= x <= hi)


class TestStructuralOps:
    def test_cat_and_slice(self):
        c = Circuit("s")
        a = c.input("a", 4)
        b = c.input("b", 4)
        c.output("y", a.cat(b))
        nl = c.finalize()
        assert evaluate(c, nl, {"a": 0x3, "b": 0xA}) == 0xA3

    def test_zext_and_shifts(self):
        c = Circuit("s")
        a = c.input("a", 4)
        c.output("y", a.zext(8))
        c.output("l", a.shl_const(2))
        c.output("r", a.shr_const(1))
        nl = c.finalize()
        sim = SequentialSimulator(nl)
        sim.set_input("a", 0b1011)
        sim.propagate()
        assert sim.output_value("y") == 0b1011
        assert sim.output_value("l") == 0b1100
        assert sim.output_value("r") == 0b0101

    def test_repeat_requires_one_bit(self):
        c = Circuit("s")
        a = c.input("a", 2)
        with pytest.raises(WidthError):
            a.repeat(4)

    def test_width_mismatch_rejected(self):
        c = Circuit("s")
        a = c.input("a", 4)
        b = c.input("b", 5)
        with pytest.raises(WidthError):
            _ = a & b

    def test_cross_circuit_rejected(self):
        c1 = Circuit("one")
        c2 = Circuit("two")
        a = c1.input("a", 2)
        b = c2.input("b", 2)
        with pytest.raises(NetlistError):
            _ = a & b

    def test_word_select(self):
        c = Circuit("s")
        sel = c.input("sel", 2)
        values = [c.const(v, 8) for v in (11, 22, 33, 44)]
        c.output("y", c.word_select(sel, values))
        nl = c.finalize()
        for k, expected in enumerate((11, 22, 33, 44)):
            assert evaluate(c, nl, {"sel": k}) == expected

    def test_select_priority(self):
        c = Circuit("s")
        c1_ = c.input("c1", 1)
        c2_ = c.input("c2", 1)
        y = c.select(
            c.const(0, 4), (c1_, c.const(1, 4)), (c2_, c.const(2, 4))
        )
        c.output("y", y)
        nl = c.finalize()
        assert evaluate(c, nl, {"c1": 1, "c2": 1}) == 1  # first match wins
        assert evaluate(c, nl, {"c1": 0, "c2": 1}) == 2
        assert evaluate(c, nl, {"c1": 0, "c2": 0}) == 0


class TestConstantFolding:
    def test_and_with_zero_folds(self):
        c = Circuit("f")
        a = c.input("a", 1)
        out = c.gate("and", a.nets[0], CONST0)
        assert out == CONST0

    def test_not_not_cancels_via_cache(self):
        c = Circuit("f")
        a = c.input("a", 1)
        n1 = c.gate("not", a.nets[0])
        n2 = c.gate("not", n1)
        # double negation is not folded to a, but xor folding handles pairs
        assert n2 != n1

    def test_xor_pair_drops(self):
        c = Circuit("f")
        a = c.input("a", 1)
        out = c.gate("xor", a.nets[0], a.nets[0])
        assert out == CONST0

    def test_structural_hashing_reuses_gates(self):
        c = Circuit("f")
        a = c.input("a", 1)
        b = c.input("b", 1)
        g1 = c.gate("and", a.nets[0], b.nets[0])
        g2 = c.gate("and", b.nets[0], a.nets[0])  # commutative: same gate
        assert g1 == g2

    def test_mux_same_arms_folds(self):
        c = Circuit("f")
        s = c.input("s", 1)
        a = c.input("a", 1)
        out = c.gate("mux", s.nets[0], a.nets[0], a.nets[0])
        assert out == a.nets[0]


class TestRegisters:
    def test_register_must_be_driven(self):
        c = Circuit("r")
        c.reg("r", 2)
        with pytest.raises(NetlistError):
            c.finalize()

    def test_double_drive_rejected(self):
        c = Circuit("r")
        r = c.reg("r", 2)
        r.drive(c.const(0, 2))
        with pytest.raises(NetlistError):
            r.drive(c.const(1, 2))

    def test_hold_unless(self):
        c = Circuit("r")
        en = c.input("en", 1)
        r = c.reg("r", 4, init=5)
        r.hold_unless((en, r.q + 1))
        c.output("y", r.q)
        nl = c.finalize()
        validate(nl)
        sim = SequentialSimulator(nl)
        assert sim.register_value("r") == 5
        sim.step({"en": 0})
        assert sim.register_value("r") == 5
        sim.step({"en": 1})
        assert sim.register_value("r") == 6


class TestLut:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_lut_matches_table(self, n, data):
        table = data.draw(
            st.integers(min_value=0, max_value=(1 << (1 << n)) - 1)
        )
        c = Circuit("l")
        x = c.input("x", n)
        c.output("y", c.lut(x, table))
        nl = c.finalize()
        sim = SequentialSimulator(nl)
        for k in range(1 << n):
            sim.set_input("x", k)
            sim.propagate()
            assert sim.output_value("y") == (table >> k) & 1

    def test_lut_word(self):
        c = Circuit("l")
        x = c.input("x", 3)
        values = [(v * 37) % 256 for v in range(8)]
        c.output("y", c.lut_word(x, values, 8))
        nl = c.finalize()
        sim = SequentialSimulator(nl)
        for k, expected in enumerate(values):
            sim.set_input("x", k)
            sim.propagate()
            assert sim.output_value("y") == expected

    def test_lut_sharing(self):
        # identical tables on identical inputs synthesize no new gates
        c = Circuit("l")
        x = c.input("x", 4)
        c.output("y1", c.lut(x, 0xBEEF))
        before = len(c.netlist.cells)
        c.output("y2", c.lut(x, 0xBEEF))
        assert len(c.netlist.cells) == before
