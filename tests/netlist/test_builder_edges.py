"""Builder edge cases: degenerate widths, shift extremes, select chains."""

import pytest

from repro.errors import WidthError
from repro.netlist import CONST0, CONST1, Circuit
from repro.sim import SequentialSimulator


def out_value(circuit, netlist, inputs):
    sim = SequentialSimulator(netlist)
    for name, value in inputs.items():
        sim.set_input(name, value)
    sim.propagate()
    return sim.output_value("y")


class TestShiftExtremes:
    def test_shift_past_width_is_zero(self):
        c = Circuit("s")
        a = c.input("a", 4)
        c.output("y", a.shl_const(10))
        nl = c.finalize()
        assert out_value(c, nl, {"a": 0xF}) == 0

    def test_shift_zero_is_identity(self):
        c = Circuit("s")
        a = c.input("a", 4)
        c.output("y", a.shr_const(0))
        nl = c.finalize()
        assert out_value(c, nl, {"a": 0xB}) == 0xB


class TestOneBitWords:
    def test_one_bit_arithmetic(self):
        c = Circuit("one")
        a = c.input("a", 1)
        b = c.input("b", 1)
        c.output("y", a + b)
        nl = c.finalize()
        assert out_value(c, nl, {"a": 1, "b": 1}) == 0  # wraps mod 2

    def test_one_bit_comparisons(self):
        c = Circuit("one")
        a = c.input("a", 1)
        b = c.input("b", 1)
        c.output("y", a.ult(b))
        nl = c.finalize()
        assert out_value(c, nl, {"a": 0, "b": 1}) == 1
        assert out_value(c, nl, {"a": 1, "b": 1}) == 0


class TestConstants:
    def test_negative_constant_truncates(self):
        c = Circuit("k")
        value = c.const(-1, 4)
        assert all(net == CONST1 for net in value.nets)
        value = c.const(-2, 4)
        assert value.nets[0] == CONST0

    def test_oversized_constant_masks(self):
        c = Circuit("k")
        value = c.const(0x1FF, 8)
        assert value.nets[7] == CONST1  # 0xFF

    def test_in_range_degenerate(self):
        c = Circuit("k")
        a = c.input("a", 4)
        c.output("y", a.in_range(5, 5))
        nl = c.finalize()
        assert out_value(c, nl, {"a": 5}) == 1
        assert out_value(c, nl, {"a": 6}) == 0


class TestWordSelectErrors:
    def test_wrong_entry_count(self):
        c = Circuit("w")
        sel = c.input("s", 2)
        with pytest.raises(WidthError):
            c.word_select(sel, [c.const(0, 4)] * 3)


class TestDeepSelectChain:
    def test_sixteen_arm_priority(self):
        c = Circuit("p")
        which = c.input("which", 4)
        arms = [
            (which.eq_const(k), c.const(k * 3, 8)) for k in range(16)
        ]
        c.output("y", c.select(c.const(0xEE, 8), *arms))
        nl = c.finalize()
        for k in range(16):
            assert out_value(c, nl, {"which": k}) == (k * 3) & 0xFF
