"""Unit tests for primitive cells."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import Cell, Flop, Kind


class TestCellConstruction:
    def test_unary_arity_enforced(self):
        with pytest.raises(NetlistError):
            Cell(Kind.NOT, (2, 3), 4)

    def test_mux_arity_enforced(self):
        with pytest.raises(NetlistError):
            Cell(Kind.MUX, (2, 3), 4)

    def test_variadic_needs_input(self):
        with pytest.raises(NetlistError):
            Cell(Kind.AND, (), 4)

    def test_variadic_accepts_many(self):
        cell = Cell(Kind.AND, tuple(range(2, 10)), 10)
        assert len(cell.inputs) == 8

    def test_flop_init_checked(self):
        with pytest.raises(NetlistError):
            Flop(2, 3, init=2)


class TestCellEval:
    def eval(self, kind, ins, n_inputs=None):
        nets = tuple(range(2, 2 + len(ins)))
        cell = Cell(kind, nets, 99)
        values = {net: val for net, val in zip(nets, ins)}
        return cell.eval(values) & 1

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_two_input_gates(self, a, b):
        assert self.eval(Kind.AND, [a, b]) == (a & b)
        assert self.eval(Kind.OR, [a, b]) == (a | b)
        assert self.eval(Kind.XOR, [a, b]) == (a ^ b)
        assert self.eval(Kind.NAND, [a, b]) == 1 - (a & b)
        assert self.eval(Kind.NOR, [a, b]) == 1 - (a | b)
        assert self.eval(Kind.XNOR, [a, b]) == 1 - (a ^ b)

    @pytest.mark.parametrize("a", [0, 1])
    def test_unary_gates(self, a):
        assert self.eval(Kind.NOT, [a]) == 1 - a
        assert self.eval(Kind.BUF, [a]) == a

    @pytest.mark.parametrize("sel", [0, 1])
    @pytest.mark.parametrize("d0", [0, 1])
    @pytest.mark.parametrize("d1", [0, 1])
    def test_mux(self, sel, d0, d1):
        assert self.eval(Kind.MUX, [sel, d0, d1]) == (d1 if sel else d0)

    def test_variadic_semantics(self):
        assert self.eval(Kind.AND, [1, 1, 1]) == 1
        assert self.eval(Kind.AND, [1, 0, 1]) == 0
        assert self.eval(Kind.OR, [0, 0, 1]) == 1
        assert self.eval(Kind.XOR, [1, 1, 1]) == 1
        assert self.eval(Kind.XOR, [1, 1, 0]) == 0

    def test_bit_parallel_eval(self):
        cell = Cell(Kind.AND, (2, 3), 4)
        # lanes: 0b1100 & 0b1010 = 0b1000
        assert cell.eval({2: 0b1100, 3: 0b1010}) == 0b1000

    def test_is_inverting(self):
        assert Cell(Kind.NAND, (2, 3), 4).is_inverting
        assert not Cell(Kind.AND, (2, 3), 4).is_inverting
