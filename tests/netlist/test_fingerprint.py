"""Structural fingerprints: stable across rebuilds, sensitive to edits."""

from __future__ import annotations

from repro.netlist import (
    Circuit,
    config_fingerprint,
    netlist_fingerprint,
    objective_fingerprint,
)
from repro.properties.monitors import build_corruption_monitor
from tests.conftest import build_counter, build_secret_design, secret_spec


def test_same_build_same_fingerprint():
    assert netlist_fingerprint(build_counter()) == netlist_fingerprint(
        build_counter()
    )


def test_clone_preserves_fingerprint():
    nl = build_secret_design()
    assert netlist_fingerprint(nl) == netlist_fingerprint(nl.clone())


def test_monitor_names_do_not_perturb_fingerprint():
    # the monitor builders' unique name prefixes change on every build;
    # the structural hash must not see them, or no monitor netlist would
    # ever hit the cache
    nl = build_secret_design()
    spec = secret_spec()
    a = build_corruption_monitor(nl, spec)
    b = build_corruption_monitor(nl, spec)
    assert a.objective_net == b.objective_net
    assert netlist_fingerprint(a.netlist) == netlist_fingerprint(b.netlist)


def test_logic_change_changes_fingerprint():
    assert netlist_fingerprint(
        build_secret_design(trojan=True)
    ) != netlist_fingerprint(build_secret_design(trojan=False))


def test_init_value_changes_fingerprint():
    def make(init):
        c = Circuit("t")
        en = c.input("en", 1)
        r = c.reg("r", 4, init=init)
        r.hold_unless((en, r.q + 1))
        c.output("o", r.q)
        return c.finalize()

    assert netlist_fingerprint(make(0)) != netlist_fingerprint(make(3))


def test_trigger_constant_changes_fingerprint():
    # same topology, one comparator constant differs
    assert netlist_fingerprint(
        build_secret_design(trigger_value=0xA5)
    ) != netlist_fingerprint(build_secret_design(trigger_value=0xA6))


def test_objective_fingerprint_keys_net_and_pins():
    base = objective_fingerprint(7)
    assert base == objective_fingerprint(7)
    assert base != objective_fingerprint(8)
    assert base != objective_fingerprint(7, pinned_inputs={"reset": 0})
    # pin order is canonicalized
    assert objective_fingerprint(
        7, pinned_inputs={"a": 1, "b": 0}
    ) == objective_fingerprint(7, pinned_inputs={"b": 0, "a": 1})


def test_config_fingerprint_keys_engine_and_options():
    assert config_fingerprint("bmc") == config_fingerprint("bmc")
    assert config_fingerprint("bmc") != config_fingerprint("atpg")
    assert config_fingerprint("bmc") != config_fingerprint(
        "bmc", use_coi=False
    )
