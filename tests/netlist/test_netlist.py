"""Unit tests for the Netlist container."""

import pytest

from repro.errors import NetlistError
from repro.netlist import CONST0, CONST1, Kind, Netlist


@pytest.fixture
def netlist():
    return Netlist("dut")


class TestNets:
    def test_constants_predefined(self, netlist):
        assert netlist.driver_of(CONST0) == ("const", 0)
        assert netlist.driver_of(CONST1) == ("const", 1)

    def test_new_net_allocates_sequentially(self, netlist):
        first = netlist.new_net()
        second = netlist.new_net()
        assert second == first + 1

    def test_named_nets(self, netlist):
        net = netlist.new_net("foo")
        assert netlist.net_name(net) == "foo"
        assert netlist.net_name(netlist.new_net()).startswith("n")

    def test_new_nets_names_bits(self, netlist):
        nets = netlist.new_nets(3, "bus")
        assert netlist.net_name(nets[2]) == "bus[2]"

    def test_invalid_net_rejected(self, netlist):
        with pytest.raises(NetlistError):
            netlist.driver_of(999)


class TestCellsAndFlops:
    def test_add_cell_returns_output(self, netlist):
        a = netlist.new_net()
        b = netlist.new_net()
        out = netlist.add_cell(Kind.AND, (a, b))
        assert netlist.driver_of(out) == ("cell", 0)

    def test_double_drive_rejected(self, netlist):
        a = netlist.new_net()
        out = netlist.add_cell(Kind.BUF, (a,))
        with pytest.raises(NetlistError):
            netlist.add_cell(Kind.BUF, (a,), output=out)

    def test_add_flop(self, netlist):
        d = netlist.new_net()
        q = netlist.add_flop(d, init=1)
        assert netlist.flops[0].q == q
        assert netlist.flops[0].init == 1

    def test_rewire_flop_d(self, netlist):
        d1 = netlist.new_net()
        d2 = netlist.new_net()
        netlist.add_flop(d1)
        netlist.rewire_flop_d(0, d2)
        assert netlist.flops[0].d == d2

    def test_string_kind_accepted(self, netlist):
        a = netlist.new_net()
        out = netlist.add_cell("not", (a,))
        assert netlist.cells[0].kind is Kind.NOT
        assert out


class TestPorts:
    def test_input_bits_driven(self, netlist):
        nets = netlist.add_input("data", 4)
        assert len(nets) == 4
        for net in nets:
            assert netlist.driver_of(net) == ("input", "data")

    def test_duplicate_port_rejected(self, netlist):
        netlist.add_input("x")
        with pytest.raises(NetlistError):
            netlist.add_input("x")
        with pytest.raises(NetlistError):
            netlist.add_output("x", [CONST0])

    def test_output_over_existing_nets(self, netlist):
        nets = netlist.add_input("a", 2)
        netlist.add_output("y", nets)
        assert netlist.outputs["y"] == nets


class TestRegisters:
    def _make_reg(self, netlist, width=4, init=0b1010):
        idxs = []
        for bit in range(width):
            d = netlist.new_net()
            netlist.add_flop(d, init=(init >> bit) & 1)
            idxs.append(len(netlist.flops) - 1)
        netlist.add_register("r", idxs)
        return idxs

    def test_register_roundtrip(self, netlist):
        self._make_reg(netlist)
        assert netlist.register_width("r") == 4
        assert netlist.register_init("r") == 0b1010
        assert len(netlist.register_q_nets("r")) == 4
        assert len(netlist.register_d_nets("r")) == 4

    def test_register_of_flop(self, netlist):
        self._make_reg(netlist)
        mapping = netlist.register_of_flop()
        assert mapping[0] == ("r", 0)
        assert mapping[3] == ("r", 3)

    def test_unknown_register(self, netlist):
        with pytest.raises(NetlistError):
            netlist.register_q_nets("nope")

    def test_duplicate_register(self, netlist):
        self._make_reg(netlist)
        with pytest.raises(NetlistError):
            netlist.add_register("r", [0])


class TestProbesAndClone:
    def test_probe_roundtrip(self, netlist):
        nets = netlist.add_input("a", 2)
        netlist.add_probe("p", nets)
        assert netlist.probe_nets("p") == nets
        with pytest.raises(NetlistError):
            netlist.add_probe("p", nets)

    def test_clone_is_independent(self, netlist):
        a = netlist.add_input("a", 1)[0]
        netlist.add_cell(Kind.NOT, (a,))
        twin = netlist.clone()
        twin.add_cell(Kind.BUF, (a,))
        assert len(twin.cells) == 2
        assert len(netlist.cells) == 1
        # clone shares no containers
        twin.add_input("b", 1)
        assert "b" not in netlist.inputs

    def test_clone_preserves_drivers(self, netlist):
        a = netlist.add_input("a", 1)[0]
        out = netlist.add_cell(Kind.NOT, (a,))
        twin = netlist.clone()
        assert twin.driver_of(out) == ("cell", 0)
