"""Optimizer + equivalence-checker tests (each validates the other)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist import Circuit, validate
from repro.netlist.equiv import check_equivalence
from repro.netlist.optimize import optimize

from tests.conftest import build_secret_design


class TestEquivalence:
    def test_identical_netlists_equivalent(self):
        a = build_secret_design(trojan=True)
        b = build_secret_design(trojan=True)
        result = check_equivalence(a, b)
        assert result.equivalent
        assert result.checked_points > 0

    def test_trojan_vs_clean_not_equivalent(self):
        # different flop counts: structural mismatch is reported loudly
        a = build_secret_design(trojan=True)
        b = build_secret_design(trojan=False)
        with pytest.raises(NetlistError):
            check_equivalence(a, b)

    def test_functional_difference_found_with_witness(self):
        def build(broken):
            c = Circuit("f")
            x = c.input("x", 4)
            y = c.input("y", 4)
            value = (x & y) if not broken else (x | y)
            c.output("z", value ^ x)
            return c.finalize()

        result = check_equivalence(build(False), build(True))
        assert not result.equivalent
        assert result.status == "different"
        x = result.mismatch["x"]
        y = result.mismatch["y"]
        assert ((x & y) ^ x) != ((x | y) ^ x)  # the witness distinguishes

    def test_verilog_roundtrip_equivalent(self):
        from repro.hdl import parse_verilog, write_verilog

        nl = build_secret_design(trojan=True, pseudo=True)
        twin = parse_verilog(write_verilog(nl))
        result = check_equivalence(nl, twin)
        assert result.equivalent


class TestOptimize:
    def test_removes_redundancy_preserving_function(self):
        c = Circuit("redundant")
        a = c.input("a", 4)
        b = c.input("b", 4)
        # duplicated logic + constant-fed gates + dead logic
        s1 = a & b
        s2 = a & b  # structurally hashed at build time already
        _dead = (a ^ b) | a  # never used
        masked = s1 & c.const(0xF, 4)  # AND with all-ones folds
        c.output("y", masked ^ s2)
        nl = c.finalize()
        opt, stats = optimize(nl)
        validate(opt)
        assert len(opt.cells) <= len(nl.cells)
        result = check_equivalence(nl, opt)
        assert result.equivalent, result.mismatch

    def test_monitor_netlist_shrinks(self):
        from repro.properties.monitors import build_corruption_monitor
        from tests.conftest import secret_spec

        nl = build_secret_design(trojan=True)
        monitor = build_corruption_monitor(nl, secret_spec(),
                                           functional=True)
        opt, stats = optimize(monitor.netlist)
        validate(opt)
        assert stats.cells_after <= stats.cells_before
        assert stats.flops_after == stats.flops_before  # all in registers

    def test_registers_and_probes_survive(self):
        nl = build_secret_design(trojan=True)
        opt, _stats = optimize(nl)
        assert set(opt.registers) == set(nl.registers)
        assert opt.register_width("secret") == 8

    def test_optimized_design_simulates_identically(self):
        from repro.sim import SequentialSimulator, StimulusGenerator

        nl = build_secret_design(trojan=True, pseudo=True)
        opt, _stats = optimize(nl)
        s1, s2 = SequentialSimulator(nl), SequentialSimulator(opt)
        for words in StimulusGenerator(nl, seed=9).random_sequence(60):
            s1.step(words)
            s2.step(words)
            s1.propagate()
            s2.propagate()
            for name in nl.outputs:
                assert s1.output_value(name) == s2.output_value(name)
            for reg in nl.registers:
                assert s1.register_value(reg) == s2.register_value(reg)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10 ** 6))
def test_optimize_equivalent_on_random_circuits(seed):
    rng = random.Random(seed)
    c = Circuit("fuzz")
    width = rng.randint(1, 4)
    a = c.input("a", width)
    b = c.input("b", width)
    regs = [c.reg("r{}".format(i), width) for i in range(rng.randint(1, 2))]
    exprs = [a, b, c.const(rng.getrandbits(width), width)] + [
        r.q for r in regs
    ]
    for _ in range(rng.randint(2, 8)):
        x, y = rng.choice(exprs), rng.choice(exprs)
        exprs.append(
            rng.choice(
                [lambda: x & y, lambda: x | y, lambda: x ^ y,
                 lambda: ~x, lambda: c.mux(x[0], y, rng.choice(exprs))]
            )()
        )
    for reg in regs:
        reg.drive(rng.choice(exprs))
    c.output("y", exprs[-1])
    nl = c.finalize()
    opt, _stats = optimize(nl)
    validate(opt)
    assert check_equivalence(nl, opt).equivalent
