"""Stats tests."""

from repro.netlist import stats

from tests.conftest import build_counter, build_secret_design


def test_counter_stats():
    info = stats(build_counter(width=4))
    assert info.num_flops == 4
    assert info.num_registers == 1
    assert info.registers["count"] == 4
    assert info.input_bits == 1
    assert info.output_bits == 4
    assert info.depth >= 2
    assert sum(info.cells_by_kind.values()) == info.num_cells


def test_secret_design_stats_str():
    info = stats(build_secret_design())
    text = str(info)
    assert "secret_core" in text
    assert "flops" in text
    assert "max fan-out" in text


def test_max_fanout_identifies_hottest_net():
    from repro.netlist import Circuit

    c = Circuit("hot")
    a = c.input("a", 1)
    b = c.input("b", 1)
    # a's bit feeds 5 gates; nothing else comes close
    outs = [(a[0] & b[0]), (a[0] | b[0]), (a[0] ^ b[0]),
            ~a[0], (a[0] & ~b[0])]
    for i, bit in enumerate(outs):
        c.output("y{}".format(i), bit)
    info = stats(c.finalize())
    assert info.max_fanout >= 5
    assert info.max_fanout_net == "a[0]"


def test_max_fanout_empty_netlist():
    from repro.netlist import Netlist

    info = stats(Netlist("empty"))
    assert info.max_fanout == 0
    assert info.max_fanout_net == ""
