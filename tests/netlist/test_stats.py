"""Stats tests."""

from repro.netlist import stats

from tests.conftest import build_counter, build_secret_design


def test_counter_stats():
    info = stats(build_counter(width=4))
    assert info.num_flops == 4
    assert info.num_registers == 1
    assert info.registers["count"] == 4
    assert info.input_bits == 1
    assert info.output_bits == 4
    assert info.depth >= 2
    assert sum(info.cells_by_kind.values()) == info.num_cells


def test_secret_design_stats_str():
    info = stats(build_secret_design())
    text = str(info)
    assert "secret_core" in text
    assert "flops" in text
