"""Traversal tests: topological order, cones, COI, loop detection."""

import pytest

from repro.errors import CombinationalLoopError
from repro.netlist import (
    Circuit,
    Kind,
    Netlist,
    cone_of_influence,
    fanin_cone,
    fanout_cone,
    levelize,
    registers_reading,
    topological_cells,
    transitive_fanout_outputs,
)

from tests.conftest import build_counter, build_secret_design


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        c = Circuit("t")
        a = c.input("a", 1)
        b = c.input("b", 1)
        x = a & b
        y = x ^ a
        c.output("y", y)
        nl = c.finalize()
        order = topological_cells(nl)
        position = {nl.cells[i].output: p for p, i in enumerate(order)}
        for cell in nl.cells:
            for net in cell.inputs:
                if net in position:
                    assert position[net] < position[cell.output]

    def test_loop_detected(self):
        nl = Netlist("loop")
        a = nl.new_net()
        b = nl.new_net()
        nl.add_cell(Kind.NOT, (a,), output=b)
        nl.add_cell(Kind.NOT, (b,), output=a)
        with pytest.raises(CombinationalLoopError):
            topological_cells(nl)

    def test_flops_break_loops(self):
        nl = build_counter()  # counter feeds back through flops
        topological_cells(nl)  # must not raise


class TestLevelize:
    def test_levels_monotone(self):
        nl = build_secret_design()
        level = levelize(nl)
        for cell in nl.cells:
            assert level[cell.output] == 1 + max(
                level[n] for n in cell.inputs
            )

    def test_sources_are_level_zero(self):
        nl = build_counter()
        level = levelize(nl)
        for flop in nl.flops:
            assert level[flop.q] == 0
        for nets in nl.inputs.values():
            for net in nets:
                assert level[net] == 0


class TestCones:
    def test_fanin_cone_stops_at_flops(self):
        nl = build_counter()
        q0 = nl.flops[0].q
        cone = fanin_cone(nl, [nl.flops[0].d], through_flops=False)
        assert q0 in cone  # flop Q is a frontier source
        assert nl.flops[0].d in cone

    def test_fanin_cone_through_flops(self):
        nl = build_counter()
        cone = fanin_cone(nl, [nl.flops[-1].d], through_flops=True)
        # through flops, the whole counter feedback is in the cone
        for flop in nl.flops:
            assert flop.q in cone

    def test_coi_restricts_cells(self):
        nl = build_secret_design(trojan=True)
        secret_q = nl.register_q_nets("secret")
        _nets, cells, flops = cone_of_influence(nl, secret_q)
        assert 0 < len(cells) <= len(nl.cells)
        assert 0 < len(flops) <= len(nl.flops)

    def test_fanout_reaches_outputs(self):
        nl = build_secret_design()
        secret_q = nl.register_q_nets("secret")
        names = transitive_fanout_outputs(nl, secret_q)
        assert "out" in names

    def test_fanout_cone_contains_start(self):
        nl = build_counter()
        cone = fanout_cone(nl, [nl.flops[0].q])
        assert nl.flops[0].q in cone


class TestRegistersReading:
    def test_pseudo_register_reads_secret(self):
        nl = build_secret_design(pseudo=True)
        readers = registers_reading(nl, "secret")
        assert "pseudo_secret" in readers

    def test_counter_does_not_read_secret(self):
        nl = build_secret_design(trojan=True)
        readers = registers_reading(nl, "troj_counter")
        assert "secret" in readers  # trojan feeds the secret's next value
