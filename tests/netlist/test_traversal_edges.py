"""Traversal edge cases: empty designs, sequential cycles, comb loops."""

import pytest

from repro.errors import CombinationalLoopError
from repro.netlist import Kind, Netlist
from repro.netlist.traversal import (
    fanin_cone,
    fanout_cone,
    fanout_map,
    levelize,
    topological_cells,
)


class TestEmptyNetlist:
    def test_topological_order_is_empty(self):
        assert topological_cells(Netlist("empty")) == []

    def test_levelize_covers_only_constants(self):
        assert levelize(Netlist("empty")) == {0: 0, 1: 0}

    def test_cones_of_nothing_are_empty(self):
        nl = Netlist("empty")
        assert fanin_cone(nl, []) == set()
        assert fanout_cone(nl, []) == set()
        assert fanout_map(nl) == {}


class TestRegisterOnlyCycle:
    """Cross-coupled flops are legal: state feedback is not a comb loop."""

    def _cross_coupled(self):
        nl = Netlist("seq_cycle")
        qa = nl.new_net("qa")
        qb = nl.new_net("qb")
        nl.add_flop(d=qb, q=qa, init=0)
        nl.add_flop(d=qa, q=qb, init=1)
        return nl, qa, qb

    def test_topological_sort_accepts_it(self):
        nl, _qa, _qb = self._cross_coupled()
        assert topological_cells(nl) == []

    def test_through_flop_cone_terminates_on_the_cycle(self):
        nl, qa, qb = self._cross_coupled()
        assert fanin_cone(nl, [qa], through_flops=True) == {qa, qb}
        assert fanout_cone(nl, [qa], through_flops=True) == {qa, qb}

    def test_self_loop_flop_is_legal(self):
        nl = Netlist("hold")
        q = nl.new_net("q")
        nl.add_flop(d=q, q=q)
        assert topological_cells(nl) == []
        assert fanin_cone(nl, [q], through_flops=True) == {q}


class TestCombinationalLoop:
    def _looped(self):
        nl = Netlist("loop")
        a = nl.new_net("a")
        b = nl.new_net("b")
        nl.add_cell(Kind.NOT, (b,), output=a)
        nl.add_cell(Kind.NOT, (a,), output=b)
        return nl, a, b

    def test_topological_sort_raises(self):
        nl, _a, _b = self._looped()
        with pytest.raises(CombinationalLoopError):
            topological_cells(nl)

    def test_loop_error_names_the_looped_nets(self):
        nl, a, b = self._looped()
        with pytest.raises(CombinationalLoopError) as excinfo:
            topological_cells(nl)
        assert {a, b} & set(excinfo.value.nets or [a, b])

    def test_cells_outside_the_loop_are_still_ordered_first(self):
        nl, a, _b = self._looped()
        x = nl.new_net("x")
        nl.add_flop(d=a, q=x)
        y = nl.new_net("y")
        nl.add_cell(Kind.BUF, (x,), output=y)
        # the loop still poisons the sort, even with clean cells around it
        with pytest.raises(CombinationalLoopError):
            topological_cells(nl)
