"""Validation tests."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Circuit, Kind, Netlist, validate

from tests.conftest import build_secret_design


def test_valid_design_passes():
    report = validate(build_secret_design())
    assert report.ok
    assert "cells" in str(report)


def test_undriven_read_net_rejected():
    nl = Netlist("bad")
    floating = nl.new_net()
    nl.add_cell(Kind.NOT, (floating,))
    with pytest.raises(NetlistError):
        validate(nl)


def test_floating_allocation_flagged():
    nl = Netlist("f")
    nl.new_net("scratch")
    with pytest.raises(NetlistError):
        validate(nl)
    report = validate(nl, allow_floating=True)
    assert report.floating_nets


def test_unread_nets_reported():
    c = Circuit("u")
    a = c.input("a", 1)
    _unused = ~a  # gate output never consumed
    c.output("y", a)
    report = validate(c.finalize())
    assert report.unread_nets


def test_loop_rejected():
    nl = Netlist("loop")
    a = nl.new_net()
    b = nl.new_net()
    nl.add_cell(Kind.BUF, (a,), output=b)
    nl.add_cell(Kind.BUF, (b,), output=a)
    with pytest.raises(Exception):
        validate(nl)


def test_report_shows_total_floating_count_not_just_sample():
    nl = Netlist("many")
    for i in range(25):
        nl.new_net("scratch{}".format(i))
    report = validate(nl, allow_floating=True)
    text = str(report)
    assert "25 floating nets" in text  # total, not the silent [:10] slice
    assert "showing 10" in text
    assert "scratch0" in text
    assert "scratch24" not in text  # beyond the sample


def test_describe_verbose_lists_every_net_by_name():
    nl = Netlist("many")
    for i in range(12):
        nl.new_net("scratch{}".format(i))
    report = validate(nl, allow_floating=True)
    verbose = report.describe(verbose=True)
    for i in range(12):
        assert "scratch{}".format(i) in verbose
    assert "showing" not in verbose


def test_describe_verbose_names_unread_nets():
    c = Circuit("u")
    a = c.input("a", 1)
    orphan = ~a
    orphan.named("orphan")
    c.output("y", a)
    report = validate(c.finalize())
    assert "unread" in report.describe()
    assert "orphan" not in report.describe()  # names only when verbose
    assert "orphan" in report.describe(verbose=True)
