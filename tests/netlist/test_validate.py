"""Validation tests."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Circuit, Kind, Netlist, validate

from tests.conftest import build_secret_design


def test_valid_design_passes():
    report = validate(build_secret_design())
    assert report.ok
    assert "cells" in str(report)


def test_undriven_read_net_rejected():
    nl = Netlist("bad")
    floating = nl.new_net()
    nl.add_cell(Kind.NOT, (floating,))
    with pytest.raises(NetlistError):
        validate(nl)


def test_floating_allocation_flagged():
    nl = Netlist("f")
    nl.new_net("scratch")
    with pytest.raises(NetlistError):
        validate(nl)
    report = validate(nl, allow_floating=True)
    assert report.floating_nets


def test_unread_nets_reported():
    c = Circuit("u")
    a = c.input("a", 1)
    _unused = ~a  # gate output never consumed
    c.output("y", a)
    report = validate(c.finalize())
    assert report.unread_nets


def test_loop_rejected():
    nl = Netlist("loop")
    a = nl.new_net()
    b = nl.new_net()
    nl.add_cell(Kind.BUF, (a,), output=b)
    nl.add_cell(Kind.BUF, (b,), output=a)
    with pytest.raises(Exception):
        validate(nl)
