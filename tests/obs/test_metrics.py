"""Metrics registry tests: instruments, snapshots, worker merges."""

import json

from repro.obs import Metrics, NULL_METRICS


class TestInstruments:
    def test_counter_create_on_first_use(self):
        metrics = Metrics()
        metrics.counter("sat.conflicts").inc()
        metrics.counter("sat.conflicts").inc(4)
        assert metrics.snapshot()["counters"] == {"sat.conflicts": 5}

    def test_gauge_tracks_high_water(self):
        metrics = Metrics()
        gauge = metrics.gauge("sat.learnts")
        gauge.set(10)
        gauge.set(3)
        snap = metrics.snapshot()["gauges"]["sat.learnts"]
        assert snap == {"value": 3, "high": 10}

    def test_histogram_exact_stats(self):
        metrics = Metrics()
        hist = metrics.histogram("solve_seconds")
        for value in (0.5, 1.5, 4.0):
            hist.observe(value)
        snap = metrics.snapshot()["histograms"]["solve_seconds"]
        assert snap["count"] == 3
        assert snap["total"] == 6.0
        assert snap["min"] == 0.5
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.0

    def test_histogram_accepts_zero_and_negative(self):
        hist = Metrics().histogram("h")
        hist.observe(0.0)
        hist.observe(-1.0)  # clamped into the bottom bucket, not a crash
        assert hist.count == 2

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.counter("a").inc()
        metrics.gauge("b").set(2)
        metrics.histogram("c").observe(0.25)
        json.dumps(metrics.snapshot())


class TestMerge:
    def test_merge_counters_folds_worker_totals(self):
        metrics = Metrics()
        metrics.counter("sat.conflicts").inc(10)
        metrics.merge_counters({"sat.conflicts": 7, "sat.restarts": 2})
        counters = metrics.snapshot()["counters"]
        assert counters == {"sat.conflicts": 17, "sat.restarts": 2}


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(9)
        NULL_METRICS.histogram("z").observe(1.0)
        NULL_METRICS.merge_counters({"x": 3})
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
