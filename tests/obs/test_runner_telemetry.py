"""Supervisor telemetry integration: worker event shipping, cache points.

Exercises the real supervision stack under an installed tracer — the
structural re-parenting path (worker BufferTracer -> result pipe ->
Tracer.absorb under the attempt span) and the cache disposition points.
"""

from repro.netlist import Circuit
from repro.obs import Tracer, get_tracer, tracing
from repro.obs.summary import build_tree, load_trace, summarize
from repro.runner import CheckRunner, ObjectiveTask
from repro.runner.supervisor import PROCESS

from tests.conftest import build_counter


def counter_task(max_cycles=8, cache_dir=None):
    nl = build_counter(3)
    c = Circuit.attach(nl)
    objective = c.bv(nl.register_q_nets("count")).eq_const(3).nets[0]
    return ObjectiveTask(
        engine="bmc",
        netlist=nl,
        objective_net=objective,
        max_cycles=max_cycles,
        property_name="count==3",
        check_kwargs={"time_budget": 30.0},
        cache_dir=cache_dir,
    )


def run_traced(path, runner, task, name):
    tracer = Tracer(path)
    with tracing(tracer):
        outcome = runner.run(task, name=name)
    tracer.close()
    return outcome


class TestInlineTelemetry:
    def test_check_span_wraps_engine_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        outcome = run_traced(path, CheckRunner(), counter_task(), "count")
        assert outcome.ok
        events, _meta, bad = load_trace(path)
        assert bad == 0
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        names = {s.name for s in spans.values()}
        assert {"runner.check", "runner.attempt", "bmc.check",
                "bmc.bound", "sat.solve"} <= names
        check = next(s for s in spans.values() if s.name == "runner.check")
        assert check.attrs["check"] == "count"
        assert check.end_attrs["status"] == "ok"
        assert check.end_attrs["attempts"] == 1

    def test_counters_snapshot_includes_solver_totals(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_traced(path, CheckRunner(), counter_task(), "count")
        counters = summarize(path)["metrics"]["counters"]
        assert counters["runner.checks"] == 1
        assert counters["sat.solve_calls"] >= 1
        assert counters.get("sat.propagations", 0) > 0


class TestProcessTelemetry:
    def test_worker_events_reparented_under_attempt(self, tmp_path):
        path = tmp_path / "t.jsonl"
        runner = CheckRunner(isolation=PROCESS)
        outcome = run_traced(path, runner, counter_task(), "count")
        assert outcome.ok
        events, _meta, bad = load_trace(path)
        assert bad == 0
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        attempt = next(
            s for s in spans.values() if s.name == "runner.attempt"
        )
        # the engine ran in the child yet its spans sit under the attempt
        child_names = {c.name for c in attempt.children}
        assert "bmc.check" in child_names
        bmc = next(c for c in attempt.children if c.name == "bmc.check")
        assert any(g.name == "sat.solve" for g in walk(bmc))
        # worker counters merged into the supervisor's registry
        counters = summarize(path)["metrics"]["counters"]
        assert counters["sat.solve_calls"] >= 1

    def test_worker_payload_not_leaked_into_outcome(self, tmp_path):
        # The telemetry trailing element is stripped before the message
        # is interpreted; the verdict must be the engine result.
        path = tmp_path / "t.jsonl"
        runner = CheckRunner(isolation=PROCESS)
        outcome = run_traced(path, runner, counter_task(), "count")
        assert outcome.result.status == "violated"
        assert outcome.result.bound == 4

    def test_untraced_process_run_ships_no_events(self):
        # collect_events is off when tracing is disabled: same verdict,
        # no telemetry machinery in the child.
        assert get_tracer().enabled is False
        outcome = CheckRunner(isolation=PROCESS).run(
            counter_task(), name="count"
        )
        assert outcome.ok
        assert outcome.result.status == "violated"


class TestCacheTelemetry:
    def test_miss_store_then_hit_points(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runner = CheckRunner()

        cold = tmp_path / "cold.jsonl"
        run_traced(cold, runner, counter_task(cache_dir=cache_dir), "count")
        cold_tallies = summarize(cold)["tallies"]["cache"]
        assert cold_tallies.get("miss") == 1
        assert cold_tallies.get("store", 0) >= 1

        warm = tmp_path / "warm.jsonl"
        outcome = run_traced(
            warm, runner, counter_task(cache_dir=cache_dir), "count"
        )
        assert outcome.cache == "hit"
        warm_tallies = summarize(warm)["tallies"]["cache"]
        assert warm_tallies == {"hit": 1}


class TestProfiling:
    def test_profile_dir_collects_pstats(self, tmp_path):
        import pstats

        profile_dir = tmp_path / "profiles"
        runner = CheckRunner(profile_dir=str(profile_dir))
        outcome = runner.run(counter_task(), name="count")
        assert outcome.ok
        dumps = list(profile_dir.glob("*.pstats"))
        assert len(dumps) == 1
        assert "attempt0" in dumps[0].name
        pstats.Stats(str(dumps[0]))  # parseable profile data

    def test_no_profile_dir_no_files(self, tmp_path):
        runner = CheckRunner()
        runner.run(counter_task(), name="count")
        assert list(tmp_path.iterdir()) == []


def walk(span):
    stack = [span]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)
