"""Trace summarizer tests: tree aggregation, damage tolerance, tallies."""

import io

from repro.obs import BufferTracer, Tracer
from repro.obs.summary import build_tree, load_trace, render, summarize


def make_trace(path):
    """A small but representative trace: nested phases, a cache point,
    a retry, a restart, and a second check."""
    tracer = Tracer(path)
    with tracer.span("audit", design="d"):
        with tracer.span("runner.check", check="acc") as extra:
            tracer.point("cache.miss", check="acc")
            with tracer.span("runner.attempt", index=0):
                with tracer.span("bmc.check"):
                    with tracer.span("sat.solve"):
                        tracer.point("sat.restart", round=1)
            tracer.point("runner.retry", check="acc", failed_status="timeout")
            with tracer.span("runner.attempt", index=1):
                with tracer.span("bmc.check"):
                    pass
            extra.update(status="ok", attempts=2)
        with tracer.span("runner.check", check="b") as extra:
            tracer.point("cache.hit", check="b")
            extra.update(status="ok", attempts=0)
    tracer.metrics.counter("sat.conflicts").inc(12)
    tracer.close()


class TestSummarize:
    def test_phase_tree_and_tallies(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        summary = summarize(path)
        assert summary["bad_lines"] == 0
        assert summary["dropped_events"] == 0
        assert summary["wall_seconds"] >= 0
        audit = summary["phases"][0]
        assert audit["name"] == "audit" and audit["count"] == 1
        check_row = audit["children"][0]
        assert check_row["name"] == "runner.check"
        assert check_row["count"] == 2
        attempt_row = check_row["children"][0]
        assert attempt_row["name"] == "runner.attempt"
        assert attempt_row["count"] == 2
        assert summary["tallies"]["cache"] == {"miss": 1, "hit": 1}
        assert summary["tallies"]["retries"] == 1
        assert summary["tallies"]["restarts"] == 1
        assert summary["metrics"]["counters"]["sat.conflicts"] == 12

    def test_slowest_checks_ranked_and_labelled(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        summary = summarize(path, top=1)
        assert len(summary["slowest_checks"]) == 1
        slowest = summary["slowest_checks"][0]
        assert slowest["name"] in ("acc", "b")
        assert slowest["status"] == "ok"

    def test_nested_phase_totals_bounded_by_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        audit = summarize(path)["phases"][0]
        child_total = sum(row["total"] for row in audit["children"])
        assert child_total <= audit["total"] + 1e-6

    def test_torn_final_line_counted_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        with open(path, "a") as handle:
            handle.write('{"ev": "begin", "id": 999, "na')  # killed mid-write
        summary = summarize(path)
        assert summary["bad_lines"] == 1
        assert summary["phases"]  # the intact prefix still summarizes

    def test_unterminated_span_charged_to_clock_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.begin("audit")
        tracer.point("late", at="end")
        tracer._handle.close()  # simulate a kill: no end, no snapshot
        summary = summarize(path)
        audit = summary["phases"][0]
        assert audit["unterminated"] == 1
        assert audit["total"] >= 0

    def test_unknown_parent_promoted_to_root(self):
        events = [
            {"ev": "begin", "id": 5, "parent": 99, "name": "orphan", "t": 1.0},
            {"ev": "end", "id": 5, "t": 2.0},
        ]
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        assert [r.name for r in roots] == ["orphan"]

    def test_end_without_begin_is_dropped(self):
        roots, spans, dropped = build_tree([{"ev": "end", "id": 1, "t": 0.0}])
        assert dropped == 1
        assert roots == []


class TestRender:
    def test_render_smoke(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        out = io.StringIO()
        render(summarize(path), out)
        text = out.getvalue()
        assert "phase tree" in text
        assert "runner.check" in text
        assert "cache: 1 hit, 1 miss" in text
        assert "retries: 1" in text
        assert "solver restarts: 1" in text
        assert "sat.conflicts: 12" in text
        # a cached check ran 0 attempts — rendered as 0, not "?"
        assert "0 attempt(s)" in text


class TestWorkerRoundTrip:
    def test_absorbed_buffer_summarizes_as_one_tree(self, tmp_path):
        # Same motion the supervisor performs: a worker's BufferTracer
        # events grafted under the attempt span, then summarized.
        worker = BufferTracer()
        with worker.span("bmc.check", property="p") as extra:
            with worker.span("sat.solve"):
                pass
            extra["status"] = "proved"
        shipped = worker.drain()

        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("runner.check", check="p"):
            with tracer.span("runner.attempt", index=0):
                tracer.absorb(shipped)
        tracer.close()

        events, _meta, bad = load_trace(path)
        assert bad == 0
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        tree_roots = [r for r in roots if not r.point]
        assert len(tree_roots) == 1
        attempt = tree_roots[0].children[0]
        assert [c.name for c in attempt.children] == ["bmc.check"]
        assert attempt.children[0].end_attrs["status"] == "proved"
