"""``repro trace summarize`` on damaged traces: torn tails never error.

A killed audit leaves a trace whose final record can be cut anywhere —
including midway through a multi-byte UTF-8 sequence. The reader must
consume the readable prefix and count the tail as one bad line, exactly
the degrade-to-partial policy the rest of the repo uses.
"""

import io
import json

from repro.cli import main
from repro.obs.summary import load_trace, summarize
from repro.obs.tracer import Tracer


def write_trace(path, design="demo"):
    tracer = Tracer(path)
    with tracer.span("audit", design=design):
        with tracer.span("audit.register", register="secret"):
            tracer.point("cache.miss")
    tracer.close()


class TestTornTail:
    def test_truncated_final_record_is_one_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        whole = path.read_bytes()
        events_before, _meta, _bad = load_trace(path)
        path.write_bytes(whole[:-25])  # tear the last record mid-line

        events, meta, bad_lines = load_trace(path)
        assert bad_lines == 1
        assert meta.get("ev") == "meta"
        assert len(events) == len(events_before) - 1

    def test_tear_inside_a_multibyte_sequence(self, tmp_path):
        """The historical crash: text-mode iteration raised
        ``UnicodeDecodeError`` before json parsing even started."""
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        with open(path, "ab") as handle:
            record = json.dumps({
                "ev": "point", "id": 99, "parent": None,
                "name": "registre-tracé", "t": 1.0, "attrs": {},
            }, ensure_ascii=False).encode("utf-8")
            cut = record.rindex("é".encode("utf-8")) + 1  # inside é
            handle.write(record[:cut])

        events, _meta, bad_lines = load_trace(path)
        assert bad_lines == 1
        assert all(e.get("name") != "registre-tracé" for e in events)

    def test_summarize_survives_and_reports_the_damage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        path.write_bytes(path.read_bytes()[:-25])

        summary = summarize(path)
        assert summary["bad_lines"] == 1
        assert summary["events"] > 0
        # the outermost span lost its end: charged as unterminated
        names = [row["name"] for row in summary["phases"]]
        assert "audit" in names

    def test_cli_summarize_exit_zero_on_torn_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        path.write_bytes(path.read_bytes()[:-25])

        out = io.StringIO()
        rc = main(["trace", "summarize", str(path)], out=out)
        assert rc == 0
        assert "unparseable line" in out.getvalue()

    def test_empty_file_is_a_valid_trace_of_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        summary = summarize(path)
        assert summary["events"] == 0
        assert summary["bad_lines"] == 0
