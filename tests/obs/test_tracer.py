"""Tracer tests: event stream shape, span stack, absorb, globals."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    BufferTracer,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.summary import build_tree, load_trace
from repro.obs.tracer import SCHEMA_VERSION


def read_lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestFileTracer:
    def test_meta_header_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.close()
        lines = read_lines(path)
        assert lines[0]["ev"] == "meta"
        assert lines[0]["version"] == SCHEMA_VERSION
        assert "pid" in lines[0] and "wall" in lines[0]

    def test_nested_spans_parent_automatically(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("outer", kind="audit"):
            with tracer.span("inner"):
                tracer.point("tick", n=1)
        tracer.close()
        events = [e for e in read_lines(path) if e["ev"] != "meta"]
        begins = {e["name"]: e for e in events if e["ev"] in ("begin", "point")}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        assert begins["tick"]["parent"] == begins["inner"]["id"]

    def test_span_extra_lands_in_end_attrs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("solve") as extra:
            extra["status"] = "sat"
        tracer.close()
        ends = [e for e in read_lines(path) if e["ev"] == "end"]
        assert ends[0]["attrs"] == {"status": "sat"}

    def test_exception_marks_span_as_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        ends = [e for e in read_lines(path) if e["ev"] == "end"]
        assert ends[0]["attrs"]["error"] is True

    def test_close_force_closes_open_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        a = tracer.begin("outer")
        tracer.begin("inner")
        tracer.close()  # never ended explicitly
        events = [e for e in read_lines(path) if e["ev"] != "meta"]
        ends = [e for e in events if e["ev"] == "end"]
        assert {e["id"] for e in ends} == {a, a + 1}
        # metrics snapshot rides as the final point
        assert events[-1]["name"] == "metrics.snapshot"
        tracer.close()  # idempotent

    def test_end_of_outer_closes_stranded_inner(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        outer = tracer.begin("outer")
        tracer.begin("inner")
        tracer.end(outer, status="ok")  # inner was never ended
        tracer.close()
        roots, spans, dropped = build_tree(load_trace(path)[0])
        assert dropped == 0
        assert all(s.end is not None for s in spans.values() if not s.point)

    def test_metrics_snapshot_carries_counters(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.metrics.counter("sat.conflicts").inc(3)
        tracer.close()
        snapshot = read_lines(path)[-1]
        assert snapshot["name"] == "metrics.snapshot"
        assert snapshot["attrs"]["counters"] == {"sat.conflicts": 3}

    def test_non_serializable_attrs_degrade_to_str(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.point("odd", obj=object())
        tracer.close()
        events, _meta, bad = load_trace(path)
        assert bad == 0  # default=str keeps the line parseable


class TestAbsorb:
    def worker_events(self):
        buffer = BufferTracer()
        with buffer.span("bmc.check", property="p"):
            with buffer.span("sat.solve"):
                buffer.point("sat.restart", round=1)
        return buffer.drain()

    def test_roots_reparent_under_current_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        attempt = tracer.begin("runner.attempt")
        written = tracer.absorb(self.worker_events())
        tracer.end(attempt)
        tracer.close()
        assert written == 5  # two begin/end pairs plus the restart point
        events, _, _ = load_trace(path)
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        tree_roots = [r for r in roots if not r.point]
        assert len(tree_roots) == 1 and tree_roots[0].name == "runner.attempt"
        child = tree_roots[0].children[0]
        assert child.name == "bmc.check"
        assert child.children[0].name == "sat.solve"

    def test_ids_remapped_no_collisions(self, tmp_path):
        # Worker ids restart at 1 and would collide with the parent's.
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.begin("runner.attempt")  # parent id 1, same as worker's
        tracer.absorb(self.worker_events())
        tracer.close()
        events, _, _ = load_trace(path)
        ids = [e["id"] for e in events if e["ev"] in ("begin", "point")]
        assert len(ids) == len(set(ids))

    def test_malformed_entries_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        written = tracer.absorb([
            None,
            "not a dict",
            {"ev": "meta", "version": 99},
            {"ev": "end", "id": 123},          # end without begin
            {"ev": "wat", "id": 7},            # unknown kind
            {"ev": "point", "id": 7, "name": "kept", "t": 0.0},
        ])
        tracer.close()
        assert written == 1
        events, _, _ = load_trace(path)
        assert [e["name"] for e in events if e.get("name") != "metrics.snapshot"] == ["kept"]

    def test_absorb_none_is_harmless(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        assert tracer.absorb(None) == 0
        tracer.close()


class TestBufferTracer:
    def test_drain_closes_and_resets(self):
        buffer = BufferTracer()
        buffer.begin("open")
        events = buffer.drain()
        assert [e["ev"] for e in events] == ["begin", "end"]
        assert buffer.events == []


class TestGlobals:
    def test_default_is_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_tracing_installs_and_restores(self):
        buffer = BufferTracer()
        before = get_tracer()
        with tracing(buffer):
            assert get_tracer() is buffer
        assert get_tracer() is before

    def test_set_tracer_none_means_null(self):
        previous = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)

    def test_null_tracer_span_yields_dict(self):
        with NULL_TRACER.span("anything", a=1) as extra:
            extra["status"] = "ok"  # call sites update unconditionally
        NULL_TRACER.point("x")
        NULL_TRACER.end(NULL_TRACER.begin("y"))
        NULL_TRACER.close()

    def test_null_tracer_writes_no_file(self, tmp_path):
        with tracing(None):
            with get_tracer().span("solve"):
                pass
        assert list(tmp_path.iterdir()) == []


class TestRoundTrip:
    def test_traced_solve_forms_single_tree(self, tmp_path):
        # The ISSUE acceptance shape: run real instrumented code, then
        # prove every emitted event parses and re-parents into one tree.
        from repro.sat import UNSAT, Solver

        path = tmp_path / "solve.jsonl"
        tracer = Tracer(path)
        with tracing(tracer):
            with tracer.span("audit"):
                solver = Solver(restart_base=1)
                p = [[solver.new_var() for _ in range(4)] for _ in range(5)]
                for row in p:
                    solver.add_clause(row)
                for j in range(4):
                    for i1 in range(5):
                        for i2 in range(i1 + 1, 5):
                            solver.add_clause([-p[i1][j], -p[i2][j]])
                assert solver.solve().status == UNSAT
        tracer.close()

        events, meta, bad_lines = load_trace(path)
        assert bad_lines == 0
        assert meta["version"] == SCHEMA_VERSION
        roots, spans, dropped = build_tree(events)
        assert dropped == 0
        tree_roots = [r for r in roots if not r.point]
        assert len(tree_roots) == 1 and tree_roots[0].name == "audit"
        solve = tree_roots[0].children[0]
        assert solve.name == "sat.solve"
        assert solve.duration is not None and solve.duration >= 0
        assert solve.end_attrs["status"] == UNSAT
        # restart_base=1 guarantees restart points, parented inside solve
        restarts = [s for s in solve.children if s.name == "sat.restart"]
        assert restarts
        # every span closed, timestamps monotonic within the file
        times = [e["t"] for e in events]
        assert times == sorted(times)
        assert all(s.end is not None for s in spans.values() if not s.point)
