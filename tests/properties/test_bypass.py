"""Eq. (4) bypass checker tests."""

from repro.properties import BypassChecker, validate_bypass
from repro.properties.valid_ways import RegisterSpec, ValidWay
from repro.netlist import Circuit

from tests.conftest import build_secret_design, secret_spec


def test_bypassed_register_found():
    nl = build_secret_design(trojan=False, bypass=True)
    checker = BypassChecker(nl, secret_spec())
    result = checker.check(max_cycles=6, time_budget=60)
    assert result.detected
    assert result.p_value != result.q_value
    assert validate_bypass(nl, result, "secret")
    assert "no-bypass(secret)" in result.summary()


def test_clean_design_proved():
    nl = build_secret_design(trojan=False, bypass=False)
    checker = BypassChecker(nl, secret_spec())
    result = checker.check(max_cycles=4, time_budget=60)
    assert result.status == "proved"


def test_unobservable_register_trivially_bypassed():
    c = Circuit("dead")
    load = c.input("load", 1)
    data = c.input("data", 4)
    r = c.reg("critical", 4)
    r.hold_unless((load, data))
    c.output("out", data)  # output ignores the register entirely
    nl = c.finalize()
    spec = RegisterSpec(
        register="critical",
        ways=[ValidWay("load", lambda m: m.input("load"), expression="load")],
    )
    result = BypassChecker(nl, spec).check(max_cycles=3)
    assert result.detected
    assert result.bound == 0  # no prefix needed


def test_latency_matters():
    # register reaches the output only through a pipeline stage: with
    # latency 2 the checker can still expose it
    c = Circuit("lat")
    load = c.input("load", 1)
    data = c.input("data", 4)
    r = c.reg("critical", 4)
    r.hold_unless((load, data))
    stage = c.reg("stage", 4)
    stage.drive(r.q)
    c.output("out", stage.q)
    nl = c.finalize()
    spec = RegisterSpec(
        register="critical",
        ways=[ValidWay("load", lambda m: m.input("load"), expression="load")],
        observe_latency=2,
    )
    result = BypassChecker(nl, spec).check(max_cycles=3, time_budget=60)
    assert result.status == "proved"  # register observable: no bypass


def test_witness_prefix_arms_trigger():
    nl = build_secret_design(trojan=False, bypass=True)
    result = BypassChecker(nl, secret_spec()).check(
        max_cycles=6, time_budget=60
    )
    assert result.detected
    # the arming load of 0x3C must appear in the prefix
    armed = any(
        frame["load"] == 1 and frame["key_in"] == 0x3C
        for frame in result.witness.inputs
    )
    assert armed
