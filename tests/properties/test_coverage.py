"""Valid-way coverage tests, including the Trust-Hub dormancy claim."""

from repro.properties.coverage import measure_way_coverage
from repro.sim import StimulusGenerator

from tests.conftest import build_secret_design, secret_spec


def directed_suite():
    return [
        {"reset": 1, "load": 0, "key_in": 0x00},
        {"reset": 0, "load": 1, "key_in": 0x12},
        {"reset": 0, "load": 0, "key_in": 0x00},
        {"reset": 0, "load": 1, "key_in": 0x34},
        {"reset": 1, "load": 0, "key_in": 0x00},
        {"reset": 0, "load": 0, "key_in": 0x00},
    ]


def test_directed_suite_exercises_every_way():
    nl = build_secret_design(trojan=False)
    report = measure_way_coverage(nl, secret_spec(), directed_suite())
    assert report.fully_exercised
    assert report.ways["load"].condition_hits == 2
    assert report.ways["load"].update_hits == 2
    assert report.violations == 0
    assert "way coverage" in report.summary()


def test_unexercised_way_reported():
    nl = build_secret_design(trojan=False)
    suite = [{"reset": 0, "load": 0, "key_in": 0}] * 5
    report = measure_way_coverage(nl, secret_spec(), suite)
    assert not report.fully_exercised
    assert "NOT EXERCISED" in report.summary()


def test_trojan_passes_functional_verification():
    """The Trust-Hub premise: a full-coverage functional suite that never
    utters the trigger sees zero violations on the infected design."""
    nl = build_secret_design(trojan=True, trigger_value=0xA5)
    suite = [
        {"reset": 1, "load": 0, "key_in": 0},
        {"reset": 0, "load": 1, "key_in": 0x11},  # never 0xA5
        {"reset": 0, "load": 1, "key_in": 0x22},
        {"reset": 0, "load": 0, "key_in": 0x00},
        {"reset": 1, "load": 0, "key_in": 0},
    ]
    report = measure_way_coverage(nl, secret_spec(), suite)
    assert report.fully_exercised  # verification looks complete...
    assert report.violations == 0  # ...and the Trojan stays invisible


def test_triggering_suite_shows_violation():
    nl = build_secret_design(trojan=True, trigger_value=0xA5,
                             trigger_count=2)
    suite = [{"reset": 0, "load": 1, "key_in": 0xA5}] * 3 + [
        {"reset": 0, "load": 0, "key_in": 0x00}
    ] * 3
    report = measure_way_coverage(nl, secret_spec(), suite)
    assert report.violations > 0
    assert report.unauthorized_changes


def test_random_suite_has_partial_coverage():
    nl = build_secret_design(trojan=False)
    gen = StimulusGenerator(nl, seed=1)
    report = measure_way_coverage(
        nl, secret_spec(), gen.random_sequence(40)
    )
    assert report.cycles == 40
    assert report.ways["load"].condition_hits > 0
