"""Property-based monitor tests.

Invariants checked with hypothesis:

* On the clean design, *no* input sequence — random or adversarial —
  raises the Eq. (2) violation signal (simulated directly, no solver).
* The violation signal equals its definition exactly: the register changed
  across the last clock edge while no valid way was active when that
  update was launched.
* The sticky objective is monotone: once up, it stays up.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.properties.monitors import build_corruption_monitor
from repro.sim import SequentialSimulator

from tests.conftest import build_secret_design, secret_spec

stimulus_strategy = st.lists(
    st.tuples(
        st.booleans(),  # reset
        st.booleans(),  # load
        st.integers(0, 255),  # key_in
    ),
    min_size=1,
    max_size=25,
)


def run_monitor(netlist, stimulus):
    monitor = build_corruption_monitor(netlist, secret_spec())
    sim = SequentialSimulator(monitor.netlist)
    rows = []
    for reset, load, key in stimulus:
        sim.set_input("reset", int(reset))
        sim.set_input("load", int(load))
        sim.set_input("key_in", key)
        sim.propagate()
        rows.append(
            dict(
                violation=sim.net_value(monitor.violation_net),
                sticky=sim.net_value(monitor.objective_net),
                secret=sim.register_value("secret"),
                way_active=bool(reset or load),
            )
        )
        sim.clock()
    return rows


@settings(max_examples=50, deadline=None)
@given(stimulus=stimulus_strategy)
def test_clean_design_never_violates(stimulus):
    netlist = build_secret_design(trojan=False)
    rows = run_monitor(netlist, stimulus)
    assert not any(row["violation"] for row in rows)


@settings(max_examples=50, deadline=None)
@given(stimulus=stimulus_strategy)
def test_violation_matches_its_definition(stimulus):
    """violation at step t  <=>  secret changed at edge t-1 while no valid
    way was active during step t-1 (the step that launched the update)."""
    netlist = build_secret_design(trojan=True)
    rows = run_monitor(netlist, stimulus)
    for t in range(1, len(rows)):
        changed = rows[t]["secret"] != rows[t - 1]["secret"]
        expected = changed and not rows[t - 1]["way_active"]
        assert bool(rows[t]["violation"]) == expected, (t, rows[t - 1], rows[t])
    # step 0 compares against the reset state under the permissive init
    assert rows[0]["violation"] == 0


@settings(max_examples=30, deadline=None)
@given(stimulus=stimulus_strategy)
def test_sticky_objective_is_monotone(stimulus):
    netlist = build_secret_design(trojan=True)
    rows = run_monitor(netlist, stimulus)
    for earlier, later in zip(rows, rows[1:]):
        if earlier["sticky"]:
            assert later["sticky"]
