"""Monitor synthesis tests for Eq. (2) and Eq. (3)."""

import pytest

from repro.bmc import BmcEngine, confirms_violation
from repro.errors import PropertyError
from repro.netlist import Circuit, validate
from repro.properties import (
    RegisterSpec,
    ValidWay,
    build_corruption_monitor,
    build_tracking_monitor,
)

from tests.conftest import build_secret_design, secret_spec


class TestCorruptionMonitor:
    def test_monitor_netlist_is_valid(self, trojan_design, spec):
        monitor = build_corruption_monitor(trojan_design, spec)
        validate(monitor.netlist)
        # the original design is untouched (clone semantics)
        assert len(trojan_design.cells) < len(monitor.netlist.cells)

    def test_detects_trojan(self, trojan_design, spec):
        monitor = build_corruption_monitor(trojan_design, spec)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(15)
        assert result.detected
        assert confirms_violation(
            monitor.netlist, result.witness, monitor.violation_net
        )

    def test_clean_design_not_flagged(self, clean_design, spec):
        monitor = build_corruption_monitor(clean_design, spec)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(12)
        assert result.status == "proved"

    def test_witness_actually_corrupts_register(self, trojan_design, spec):
        from repro.sim import SequentialSimulator

        monitor = build_corruption_monitor(trojan_design, spec)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(15)
        sim = SequentialSimulator(trojan_design)
        previous = sim.register_value("secret")
        corrupted = False
        for words in result.witness.inputs:
            loaded = words["load"]
            key = words["key_in"]
            reset = words["reset"]
            sim.step(words)
            value = sim.register_value("secret")
            expected = 0 if reset else (key if loaded else previous)
            if value != expected:
                corrupted = True
            previous = value
        assert corrupted

    def test_functional_mode_catches_wrong_values(self):
        # design loads key_in ^ 1 instead of key_in: plain Eq.2 accepts,
        # functional mode rejects
        c = Circuit("bad")
        reset = c.input("reset", 1)
        load = c.input("load", 1)
        key_in = c.input("key_in", 8)
        secret = c.reg("secret", 8)
        secret.drive(
            c.select(
                secret.q,
                (reset, c.const(0, 8)),
                (load, key_in ^ c.const(1, 8)),
            )
        )
        c.output("out", secret.q)
        nl = c.finalize()
        plain = build_corruption_monitor(nl, secret_spec(), functional=False)
        assert BmcEngine(plain.netlist, plain.objective_net).check(8).status \
            == "proved"
        functional = build_corruption_monitor(
            nl, secret_spec(), functional=True
        )
        result = BmcEngine(
            functional.netlist, functional.objective_net
        ).check(8)
        assert result.detected

    def test_way_priority_matches_first_wins(self):
        # reset and load together: value must follow reset (priority)
        nl = build_secret_design(trojan=False)
        monitor = build_corruption_monitor(nl, secret_spec(), functional=True)
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(8)
        assert result.status == "proved"  # no false positive on overlap

    def test_monitor_registers_named(self, trojan_design, spec):
        monitor = build_corruption_monitor(trojan_design, spec)
        assert all(name.startswith("__mon") for name in monitor.monitor_registers)
        for name in monitor.monitor_registers:
            assert name in monitor.netlist.registers


class TestTrackingMonitor:
    def test_direct_copy_tracks(self):
        nl = build_secret_design(trojan=False, pseudo=True, invert_pseudo=False)
        monitor = build_tracking_monitor(nl, secret_spec(), "pseudo_secret")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"  # tracks => pseudo-critical

    def test_inverted_copy_tracks(self):
        nl = build_secret_design(trojan=False, pseudo=True, invert_pseudo=True)
        monitor = build_tracking_monitor(nl, secret_spec(), "pseudo_secret")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"

    def test_unrelated_register_does_not_track(self):
        c = Circuit("nt")
        reset = c.input("reset", 1)
        load = c.input("load", 1)
        key_in = c.input("key_in", 8)
        secret = c.reg("secret", 8)
        secret.drive(
            c.select(secret.q, (reset, c.const(0, 8)), (load, key_in))
        )
        other = c.reg("other", 8)
        other.drive(other.q + 1)
        c.output("o1", secret.q)
        c.output("o2", other.q)
        nl = c.finalize()
        monitor = build_tracking_monitor(nl, secret_spec(), "other")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.detected  # counterexample: 'other' diverges

    def test_direction_before(self):
        # R loads from P one cycle later: P is pseudo-critical *before* R
        c = Circuit("pre")
        reset = c.input("reset", 1)
        load = c.input("load", 1)
        key_in = c.input("key_in", 8)
        pre = c.reg("pre_secret", 8)
        pre.drive(c.select(pre.q, (reset, c.const(0, 8)), (load, key_in)))
        secret = c.reg("secret", 8)
        secret.drive(pre.q)
        c.output("o", secret.q)
        nl = c.finalize()
        spec = RegisterSpec(
            register="secret",
            ways=[ValidWay("always", lambda m: m.true(), expression="1")],
        )
        monitor = build_tracking_monitor(
            nl, spec, "pre_secret", direction="before"
        )
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"

    def test_width_mismatch_rejected(self, trojan_design, spec):
        with pytest.raises(PropertyError):
            build_tracking_monitor(trojan_design, spec, "troj_counter")

    def test_invalid_direction_rejected(self, clean_design, spec):
        with pytest.raises(PropertyError):
            build_tracking_monitor(
                clean_design, spec, "secret", direction="sideways"
            )

    def test_bit_objectives_exposed(self):
        nl = build_secret_design(trojan=False, pseudo=True)
        monitor = build_tracking_monitor(nl, secret_spec(), "pseudo_secret")
        assert len(monitor.bit_objectives) == 8

    def test_environment_constraint_excludes_invalid_updates(self):
        # In the Trojan design the secret IS corrupted eventually; but the
        # tracking property only considers valid sequences, so a faithful
        # pseudo-copy still "tracks" (the corrupting sequence violates the
        # environment and is excluded).
        nl = build_secret_design(trojan=True, pseudo=True)
        monitor = build_tracking_monitor(nl, secret_spec(), "pseudo_secret")
        result = BmcEngine(monitor.netlist, monitor.objective_net).check(10)
        assert result.status == "proved"