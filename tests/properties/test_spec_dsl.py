"""Expression-way DSL: trace, render, parse and rebuild fidelity."""

import pickle

import pytest

from repro.errors import SpecDslError
from repro.frontend import BUILTIN_DESIGNS, build_builtin
from repro.netlist.fingerprint import netlist_fingerprint
from repro.properties.spec_dsl import (
    compile_expr,
    parse_expr,
    register_spec_from_dict,
    register_spec_to_dict,
    render,
    trace_way_callable,
)


def test_render_parse_round_trip_is_identity():
    expr = trace_way_callable(
        lambda m: m.probe("load") & ~m.input("reset") & m.reg("sp")[0]
    )
    text = render(expr)
    assert parse_expr(text) == expr
    assert render(parse_expr(text)) == text


def test_arith_and_eq_const_render():
    expr = trace_way_callable(
        lambda m: (m.reg("sp") - 1).eq_const(3)
    )
    assert parse_expr(render(expr)) == expr


@pytest.mark.parametrize("name", sorted(BUILTIN_DESIGNS))
def test_every_builtin_spec_round_trips_through_the_dsl(name):
    netlist, spec = build_builtin(name)
    for register, reg_spec in spec.critical.items():
        payload = register_spec_to_dict(reg_spec)
        rebuilt = register_spec_from_dict(payload)
        assert rebuilt.register == reg_spec.register
        assert len(rebuilt.ways) == len(reg_spec.ways)
        # the monitor circuit built from the rebuilt spec must be
        # bit-identical to the original's
        from repro.properties.monitors import build_corruption_monitor

        original = build_corruption_monitor(netlist.clone(), reg_spec)
        twin = build_corruption_monitor(netlist.clone(), rebuilt)
        assert netlist_fingerprint(original.netlist) == (
            netlist_fingerprint(twin.netlist)
        ), "{}:{}".format(name, register)


def test_compiled_way_is_picklable():
    expr = trace_way_callable(lambda m: m.probe("x") | m.input("y"))
    way = compile_expr(expr)
    clone = pickle.loads(pickle.dumps(way))
    assert render(clone.expr) == render(expr)


def test_python_branching_is_rejected():
    with pytest.raises(SpecDslError):
        trace_way_callable(
            lambda m: m.probe("a") if m.probe("b") else m.probe("c")
        )


def test_unknown_ctx_method_is_rejected():
    with pytest.raises(SpecDslError):
        trace_way_callable(lambda m: m.no_such_signal("a"))


def test_malformed_text_is_rejected():
    with pytest.raises(SpecDslError):
        parse_expr('probe("a") &')
