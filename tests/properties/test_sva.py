"""Assertion-text generation tests."""

import pytest

from repro.errors import PropertyError
from repro.properties import (
    RegisterSpec,
    ValidWay,
    bypass_comment,
    corruption_assertion,
    render_spec,
    tracking_assertion,
)

from tests.conftest import secret_spec


def test_corruption_assertion_structure():
    text = corruption_assertion(secret_spec(), clock="clk")
    assert "property p_no_corruption_secret;" in text
    assert "@(posedge clk)" in text
    assert "(reset) || (load)" in text
    assert "$past(secret)" in text
    assert "assert_no_corruption_secret" in text


def test_disable_iff_reset():
    text = corruption_assertion(secret_spec(), reset="rst_n")
    assert "disable iff (rst_n)" in text


def test_tracking_assertion_directions():
    after = tracking_assertion(secret_spec(), "shadow", direction="after")
    assert "shadow == $past(secret)" in after
    before = tracking_assertion(secret_spec(), "shadow", direction="before")
    assert "$past(shadow) == secret" in before


def test_bypass_comment_mentions_latency():
    spec = secret_spec()
    spec.observe_latency = 3
    text = bypass_comment(spec)
    assert "t+3" in text
    assert "CEGIS" in text


def test_render_spec_combines_everything():
    text = render_spec(secret_spec(), candidates=["shadow"])
    assert "p_no_corruption_secret" in text
    assert "p_tracks_shadow_secret" in text
    assert "Eq.(4)" in text


def test_missing_expression_rejected():
    spec = RegisterSpec(
        register="r",
        ways=[ValidWay("w", lambda m: m.true())],  # no expression
    )
    with pytest.raises(PropertyError):
        corruption_assertion(spec)
