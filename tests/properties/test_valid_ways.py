"""Spec DSL tests."""

import pytest

from repro.errors import PropertyError
from repro.netlist import Circuit
from repro.properties import (
    DesignSpec,
    MonitorCtx,
    RegisterSpec,
    TrojanInfo,
    ValidWay,
    on_input,
    on_probe,
)

from tests.conftest import build_secret_design, secret_spec


def ctx_for(netlist):
    return MonitorCtx(Circuit.attach(netlist.clone()))


class TestMonitorCtx:
    def test_accessors(self):
        nl = build_secret_design()
        ctx = ctx_for(nl)
        assert ctx.input("key_in").width == 8
        assert ctx.reg("secret").width == 8
        assert ctx.reg_width("secret") == 8
        assert ctx.const(3, 4).width == 4
        assert ctx.true().width == 1

    def test_probe_access(self):
        c = Circuit("p")
        a = c.input("a", 2)
        c.probe("mysig", a)
        c.output("y", a)
        nl = c.finalize()
        assert ctx_for(nl).probe("mysig").width == 2

    def test_logic_helpers(self):
        nl = build_secret_design()
        ctx = ctx_for(nl)
        combined = ctx.all_of(ctx.input("reset"), ctx.input("load"))
        assert combined.width == 1
        either = ctx.any_of(ctx.input("reset"), ctx.input("load"))
        assert either.width == 1
        muxed = ctx.mux(ctx.input("load"), ctx.const(0, 8), ctx.input("key_in"))
        assert muxed.width == 8


class TestValidWay:
    def test_condition_width_checked(self):
        way = ValidWay("bad", lambda m: m.input("key_in"))
        nl = build_secret_design()
        with pytest.raises(PropertyError):
            way.condition(ctx_for(nl))

    def test_expected_width_checked(self):
        way = ValidWay(
            "bad", lambda m: m.input("load"), value=lambda m: m.const(0, 4)
        )
        nl = build_secret_design()
        with pytest.raises(PropertyError):
            way.expected(ctx_for(nl), 8)

    def test_expected_none_without_value(self):
        way = ValidWay("w", lambda m: m.input("load"))
        nl = build_secret_design()
        assert way.expected(ctx_for(nl), 8) is None

    def test_on_input_and_on_probe_helpers(self):
        nl = build_secret_design()
        ctx = ctx_for(nl)
        assert on_input("load")(ctx).width == 1
        assert on_input("key_in", bit=3)(ctx).width == 1

        c = Circuit("p")
        a = c.input("a", 2)
        c.probe("mysig", a)
        c.output("y", a)
        probed = ctx_for(c.finalize())
        assert on_probe("mysig", bit=1)(probed).width == 1


class TestSpecs:
    def test_register_spec_requires_ways(self):
        with pytest.raises(PropertyError):
            RegisterSpec(register="r", ways=[])

    def test_design_spec_lookup(self):
        design_spec = DesignSpec(
            name="d", critical={"secret": secret_spec()}
        )
        assert design_spec.spec_for("secret").register == "secret"
        with pytest.raises(PropertyError):
            design_spec.spec_for("nope")

    def test_trojan_info_defaults(self):
        info = TrojanInfo(
            name="X", trigger="t", payload="p", target_register="r"
        )
        assert info.trigger_cycles == 1
        assert info.trojan_nets == frozenset()
