"""Budget-path coverage: every engine honors ``time_budget`` gracefully.

The satellite contract: :class:`BmcEngine.check`,
:class:`PortfolioJustifier.check` and :class:`BypassChecker.check` must
*return* partial verdicts with a meaningful bound when their cooperative
budget runs out — never raise — because Algorithm 1's "largest bound
reached" degradation depends on it.
"""

from repro.atpg.portfolio import PortfolioJustifier
from repro.bmc.engine import BmcEngine
from repro.netlist import Circuit
from repro.properties.bypass import BypassChecker

from tests.conftest import (
    build_counter,
    build_secret_design,
    secret_spec,
)


def counter_objective(width=3, target=None):
    nl = build_counter(width)
    c = Circuit.attach(nl)
    if target is None:
        target = (1 << width) - 1
    return nl, c.bv(nl.register_q_nets("count")).eq_const(target).nets[0]


class TestBmcBudget:
    def test_zero_budget_returns_unknown_not_raise(self):
        nl, obj = counter_objective()
        result = BmcEngine(nl, obj).check(500, time_budget=0.0)
        assert result.status == "unknown"
        assert result.bound == 0
        assert not result.detected

    def test_partial_bound_is_meaningful(self):
        # generous budget: bound must reach the full depth and prove
        nl, obj = counter_objective()
        result = BmcEngine(nl, obj).check(4, time_budget=60.0)
        # objective (count==7) unreachable in 4 cycles -> proved at 4
        assert result.status == "proved"
        assert result.bound == 4

    def test_budget_bound_never_exceeds_request(self):
        nl, obj = counter_objective()
        result = BmcEngine(nl, obj).check(6, time_budget=0.01)
        assert result.status in ("proved", "unknown", "violated")
        assert 0 <= result.bound <= 6


class TestPortfolioBudget:
    def test_zero_budget_returns_unknown_not_raise(self):
        nl, obj = counter_objective()
        result = PortfolioJustifier(nl, obj).check(500, time_budget=0.0)
        assert result.status == "unknown"
        assert result.bound >= 0
        assert not result.detected

    def test_tiny_budget_reports_deepest_cleared_bound(self):
        nl, obj = counter_objective()
        result = PortfolioJustifier(nl, obj).check(500, time_budget=0.2)
        assert result.status in ("unknown", "violated")
        assert 0 <= result.bound <= 500

    def test_adequate_budget_concludes(self):
        nl, obj = counter_objective()
        result = PortfolioJustifier(nl, obj).check(10, time_budget=30.0)
        assert result.status == "violated"
        assert result.bound == 8  # count reaches 7 after 8 enabled cycles


class TestBypassBudget:
    def test_zero_budget_returns_unknown_not_raise(self):
        nl = build_secret_design(trojan=False, bypass=True)
        result = BypassChecker(nl, secret_spec()).check(
            6, time_budget=0.0
        )
        assert result.status == "unknown"
        assert result.bound == 0
        assert not result.detected

    def test_partial_verdict_reports_cleared_prefix_bound(self):
        nl = build_secret_design(trojan=False, bypass=True)
        result = BypassChecker(nl, secret_spec()).check(
            40, time_budget=1.0
        )
        assert result.status in ("unknown", "violated")
        assert 0 <= result.bound <= 40

    def test_adequate_budget_finds_bypass(self):
        nl = build_secret_design(trojan=False, bypass=True)
        result = BypassChecker(nl, secret_spec()).check(6, time_budget=60.0)
        assert result.detected
        assert result.p_value != result.q_value
