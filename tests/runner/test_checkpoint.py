"""Checkpoint serialization and resume-store tests."""

import json

import pytest

from repro.bmc.engine import BmcResult
from repro.bmc.witness import Witness
from repro.core.report import DetectionReport, RegisterFinding
from repro.errors import CheckpointError
from repro.properties.bypass import BypassResult
from repro.runner import (
    AuditCheckpoint,
    CheckOutcome,
    finding_from_dict,
    finding_to_dict,
)
from repro.runner.outcome import AttemptRecord


def rich_finding():
    finding = RegisterFinding(register="secret")
    finding.corruption = BmcResult(
        status="violated",
        bound=7,
        witness=Witness(
            inputs=[{"load": 1, "key_in": 0xA5}] * 7,
            violation_cycle=6,
            property_name="no-corruption(secret)",
        ),
        elapsed=1.5,
        property_name="no-corruption(secret)",
    )
    finding.witness_confirmed = True
    finding.bypass = BypassResult(
        status="violated", bound=3, p_value=1, q_value=2,
        property_name="no-bypass(secret)",
    )
    finding.pseudo_criticals = [("shadow", "after")]
    finding.pseudo_corruptions = {
        "shadow": BmcResult(status="proved", bound=10)
    }
    finding.elapsed = 2.5
    outcome = CheckOutcome(name="corruption(secret)", status="ok")
    outcome.attempts.append(
        AttemptRecord(index=0, status="ok", bound_reached=7, elapsed=1.5)
    )
    finding.check_outcomes["corruption(secret)"] = outcome
    return finding


class TestFindingRoundTrip:
    def test_verdicts_and_witness_survive(self):
        restored = finding_from_dict(finding_to_dict(rich_finding()))
        assert restored.register == "secret"
        assert restored.corrupted
        assert restored.trojan_found
        assert restored.witness_confirmed
        assert restored.corruption.bound == 7
        assert restored.corruption.witness.violation_cycle == 6
        assert restored.corruption.witness.inputs[0] == {
            "load": 1, "key_in": 0xA5,
        }
        assert restored.bypass.p_value == 1
        assert restored.bypass.q_value == 2
        assert restored.pseudo_criticals == [("shadow", "after")]
        assert not restored.pseudo_corruptions["shadow"].detected
        assert restored.restored

    def test_round_trip_is_json_clean(self):
        data = json.loads(json.dumps(finding_to_dict(rich_finding())))
        assert finding_from_dict(data).corrupted

    def test_check_outcomes_survive(self):
        restored = finding_from_dict(finding_to_dict(rich_finding()))
        outcome = restored.check_outcomes["corruption(secret)"]
        assert outcome.status == "ok"
        assert outcome.attempts[0].bound_reached == 7

    def test_restored_finding_renders_in_report(self):
        report = DetectionReport(design="d", engine="bmc", max_cycles=10)
        report.findings["secret"] = finding_from_dict(
            finding_to_dict(rich_finding())
        )
        text = report.summary()
        assert "TROJAN FOUND" in text
        assert "restored from checkpoint" in text

    def test_degraded_finding_round_trip(self):
        finding = RegisterFinding(register="r")
        outcome = CheckOutcome(
            name="corruption(r)", status="timeout", bound_reached=3,
            error="hard timeout",
        )
        finding.check_outcomes["corruption(r)"] = outcome
        restored = finding_from_dict(finding_to_dict(finding))
        assert restored.status == "degraded"
        assert restored.degraded_checks["corruption(r)"].bound_reached == 3


class TestAuditCheckpoint:
    def test_begin_creates_then_restores(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = AuditCheckpoint(path)
        assert store.begin("dual", "bmc", 10) == {}
        store.save_finding("secret", rich_finding())
        assert path.exists()

        fresh = AuditCheckpoint(path)
        restored = fresh.begin("dual", "bmc", 10)
        assert set(restored) == {"secret"}
        assert fresh.completed == frozenset({"secret"})
        assert restored["secret"].corrupted

    def test_mismatched_audit_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = AuditCheckpoint(path)
        store.begin("dual", "bmc", 10)
        store.save_finding("secret", rich_finding())
        for stamp in (("other", "bmc", 10), ("dual", "atpg", 10),
                      ("dual", "bmc", 12)):
            with pytest.raises(CheckpointError):
                AuditCheckpoint(path).begin(*stamp)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            AuditCheckpoint(path).begin("dual", "bmc", 10)

    def test_save_requires_begin(self, tmp_path):
        with pytest.raises(CheckpointError):
            AuditCheckpoint(tmp_path / "x.json").save_finding(
                "r", rich_finding()
            )

    def test_writes_are_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = AuditCheckpoint(path)
        store.begin("dual", "bmc", 10)
        store.save_finding("a", rich_finding())
        store.save_finding("b", rich_finding())
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        data = json.loads(path.read_text())
        assert set(data["findings"]) == {"a", "b"}
