"""Checkpoint write hardening: a full disk must not kill the audit.

The checkpoint write path fsyncs its temp file before the atomic
rename (so a *named* checkpoint never has torn contents) and wraps every
``OSError`` in a structured :class:`CheckpointWriteError`; the detector
and scheduler catch it, drop checkpointing, warn, and keep producing
verdicts.
"""

import errno
import os

import pytest

from repro.core import TrojanDetector
from repro.errors import CheckpointError, CheckpointWriteError
from repro.properties import DesignSpec
from repro.runner import AuditCheckpoint
from repro.runner import checkpoint as checkpoint_mod

from tests.conftest import (
    build_dual_register_design,
    register_spec_for,
)


def enospc(*_args, **_kw):
    raise OSError(errno.ENOSPC, "No space left on device")


@pytest.fixture
def dual():
    nl = build_dual_register_design()
    spec = DesignSpec(name=nl.name, critical={
        "rega": register_spec_for("rega"),
        "regb": register_spec_for("regb"),
    })
    return nl, spec


class TestWritePath:
    def test_fsync_runs_before_the_rename(self, tmp_path, monkeypatch):
        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            checkpoint_mod.os, "fsync",
            lambda fd: (order.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            checkpoint_mod.os, "replace",
            lambda a, b: (order.append("replace"), real_replace(a, b))[1],
        )
        store = AuditCheckpoint(tmp_path / "ckpt.json")
        store.begin("dual", "bmc", 6)
        store._write()
        assert order == ["fsync", "replace"]

    def test_enospc_becomes_structured_error(self, tmp_path, monkeypatch):
        store = AuditCheckpoint(tmp_path / "ckpt.json")
        store.begin("dual", "bmc", 6)
        monkeypatch.setattr(checkpoint_mod.os, "fsync", enospc)
        with pytest.raises(CheckpointWriteError) as info:
            store._write()
        assert info.value.path.endswith("ckpt.json")
        assert info.value.cause.errno == errno.ENOSPC
        # still a CheckpointError: existing broad handlers keep working
        assert isinstance(info.value, CheckpointError)

    def test_failed_write_leaves_no_temp_debris(self, tmp_path,
                                                monkeypatch):
        store = AuditCheckpoint(tmp_path / "ckpt.json")
        store.begin("dual", "bmc", 6)
        monkeypatch.setattr(checkpoint_mod.os, "fsync", enospc)
        with pytest.raises(CheckpointWriteError):
            store._write()
        assert list(tmp_path.iterdir()) == []

    def test_unwritable_directory_is_structured_too(self, tmp_path):
        target = tmp_path / "ro"
        target.mkdir()
        target.chmod(0o500)
        if os.access(str(target), os.W_OK):
            pytest.skip("running as root: directory modes not enforced")
        store = AuditCheckpoint(target / "ckpt.json")
        store.begin("dual", "bmc", 6)
        try:
            with pytest.raises(CheckpointWriteError):
                store._write()
        finally:
            target.chmod(0o700)


class TestAuditContinues:
    def test_detector_finishes_without_checkpointing(
        self, tmp_path, monkeypatch, dual
    ):
        nl, spec = dual
        monkeypatch.setattr(checkpoint_mod.os, "fsync", enospc)
        path = tmp_path / "ckpt.json"
        with pytest.warns(RuntimeWarning, match="WITHOUT checkpointing"):
            report = TrojanDetector(nl, spec, max_cycles=6).run(
                checkpoint=str(path)
            )
        # every register still got its verdict
        assert set(report.findings) == {"rega", "regb"}
        assert not report.trojan_found
        # and nothing claims to be a checkpoint on disk
        assert not path.exists()

    def test_warning_fires_once_not_per_register(
        self, tmp_path, monkeypatch, dual
    ):
        nl, spec = dual
        monkeypatch.setattr(checkpoint_mod.os, "fsync", enospc)
        with pytest.warns(RuntimeWarning) as caught:
            TrojanDetector(nl, spec, max_cycles=6).run(
                checkpoint=str(tmp_path / "ckpt.json")
            )
        lost = [
            w for w in caught
            if "WITHOUT checkpointing" in str(w.message)
        ]
        assert len(lost) == 1  # store dropped after the first failure
