"""End-to-end fault-injection tests for the supervised Algorithm 1.

The ISSUE's acceptance scenarios: an engine crash, a hang past the hard
timeout, and a ``ResourceBudgetExceeded`` must each produce a *completed*
:class:`DetectionReport` with structured partial verdicts — never an
uncaught exception — and an interrupted multi-register audit must resume
from its checkpoint without re-running completed registers.
"""

from repro.core import TrojanDetector
from repro.properties import DesignSpec
from repro.runner import (
    CheckRunner,
    FaultInjector,
    ResourceLimits,
    RetryPolicy,
)

from tests.conftest import (
    build_dual_register_design,
    build_secret_design,
    register_spec_for,
    secret_spec,
)


def secret_setup(**kwargs):
    nl = build_secret_design(**kwargs)
    return nl, DesignSpec(name=nl.name, critical={"secret": secret_spec()})


def dual_setup():
    nl = build_dual_register_design()
    spec = DesignSpec(
        name="dual",
        critical={
            "rega": register_spec_for("rega"),
            "regb": register_spec_for("regb"),
        },
    )
    return nl, spec


class TestCrashIsolation:
    def test_engine_crash_yields_partial_verdict(self):
        nl, spec = secret_setup(trojan=True)
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.crash_on("corruption(secret)"),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=15, time_budget=60, runner=runner
        ).run()
        finding = report.findings["secret"]
        assert finding.status == "degraded"
        assert not finding.trojan_found
        outcome = finding.check_outcomes["corruption(secret)"]
        assert outcome.status == "crashed"
        assert finding.corruption.status == "unknown"
        assert report.degraded
        assert "crashed" in report.summary()

    def test_crash_on_one_register_spares_the_others(self):
        nl, spec = dual_setup()
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.crash_on("corruption(rega)"),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30, runner=runner
        ).run()
        assert report.findings["rega"].status == "degraded"
        assert report.findings["regb"].status == "ok"
        assert report.findings["regb"].corruption.status == "proved"

    def test_inline_engine_exception_contained(self):
        nl, spec = secret_setup(trojan=False)
        runner = CheckRunner(
            fault_injector=FaultInjector.raise_on("corruption(secret)"),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=8, time_budget=30, runner=runner
        ).run()
        assert report.findings["secret"].status == "degraded"


class TestHardTimeout:
    def test_hang_past_timeout_yields_timeout_verdict(self):
        nl, spec = secret_setup(trojan=True)
        runner = CheckRunner(
            isolation="process",
            limits=ResourceLimits(wall_timeout=0.5),
            fault_injector=FaultInjector.stall_on(
                "corruption(secret)", seconds=120.0
            ),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=15, time_budget=60, runner=runner
        ).run()
        outcome = report.findings["secret"].check_outcomes[
            "corruption(secret)"
        ]
        assert outcome.status == "timeout"
        assert "hard timeout" in report.summary()


class TestBudgetExhaustion:
    def test_resource_budget_exceeded_becomes_inconclusive_finding(self):
        nl, spec = secret_setup(trojan=False)
        runner = CheckRunner(
            fault_injector=FaultInjector.budget_on(
                "corruption(secret)", bound_reached=5
            ),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=20, time_budget=60, runner=runner
        ).run()
        finding = report.findings["secret"]
        assert finding.status == "degraded"
        # the paper's statement at the largest bound actually certified
        assert finding.corruption.bound == 5
        assert report.trusted_for() == 5
        assert "no data-corruption Trojan found for 5" in report.summary()

    def test_bypass_budget_exhaustion_contained(self):
        nl, spec = secret_setup(trojan=False, bypass=True)
        runner = CheckRunner(
            fault_injector=FaultInjector.budget_on("bypass(secret)"),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=60, check_bypass=True,
            runner=runner,
        ).run()
        finding = report.findings["secret"]
        assert finding.check_outcomes["bypass(secret)"].status == "budget"
        assert not finding.bypassed  # inconclusive, not a detection


class TestRetriesEndToEnd:
    def test_flaky_check_recovers_and_still_detects(self):
        nl, spec = secret_setup(trojan=True)
        runner = CheckRunner(
            retry=RetryPolicy(attempts=3),
            fault_injector=FaultInjector.raise_on(
                "corruption(secret)", first_attempts=1
            ),
        )
        report = TrojanDetector(
            nl, spec, max_cycles=15, time_budget=60, runner=runner
        ).run()
        finding = report.findings["secret"]
        assert finding.trojan_found
        assert finding.witness_confirmed
        outcome = finding.check_outcomes["corruption(secret)"]
        assert outcome.num_attempts == 2
        assert finding.attempts >= 2


class TestCheckpointResume:
    def test_interrupted_audit_resumes_without_rerunning(self, tmp_path):
        nl, spec = dual_setup()
        path = tmp_path / "audit.json"
        # first run "dies" after rega: simulate by auditing only rega
        report1 = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30
        ).run(registers=["rega"], checkpoint=path)
        assert report1.findings["rega"].status == "ok"

        # resumed run: if rega were re-audited the injector would crash
        # it, so a clean restored finding proves the skip
        runner = CheckRunner(
            fault_injector=FaultInjector.crash_on("corruption(rega)"),
        )
        report2 = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30, runner=runner
        ).run(checkpoint=path)
        assert set(report2.findings) == {"rega", "regb"}
        assert report2.findings["rega"].restored
        assert report2.findings["rega"].status == "ok"
        assert report2.findings["regb"].status == "ok"
        assert report2.resumed_registers == ["rega"]
        assert not report2.trojan_found
        assert report2.trusted_for() == 6

    def test_completed_trojan_finding_resumes_with_witness(self, tmp_path):
        nl, spec = secret_setup(trojan=True)
        path = tmp_path / "audit.json"
        report1 = TrojanDetector(
            nl, spec, max_cycles=15, time_budget=60
        ).run(checkpoint=path)
        assert report1.trojan_found

        report2 = TrojanDetector(
            nl, spec, max_cycles=15, time_budget=60,
            runner=CheckRunner(
                fault_injector=FaultInjector.crash_on("*"),
            ),
        ).run(checkpoint=path)
        finding = report2.findings["secret"]
        assert finding.restored
        assert finding.trojan_found
        assert finding.corruption.witness is not None
        assert report2.trusted_for() == 0

    def test_degraded_register_is_checkpointed_too(self, tmp_path):
        nl, spec = dual_setup()
        path = tmp_path / "audit.json"
        runner = CheckRunner(
            fault_injector=FaultInjector.budget_on(
                "corruption(rega)", bound_reached=2
            ),
        )
        TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30, runner=runner
        ).run(checkpoint=path)
        report = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30
        ).run(checkpoint=path)
        finding = report.findings["rega"]
        assert finding.restored
        assert finding.status == "degraded"
        assert finding.corruption.bound == 2


class TestStopOnFirstWithResume:
    def test_restored_trojan_short_circuits_remaining_registers(
            self, tmp_path):
        nl, spec = dual_setup()
        path = tmp_path / "audit.json"
        # fabricate a checkpoint where rega was found corrupted
        from tests.runner.test_checkpoint import rich_finding

        from repro.runner import AuditCheckpoint

        store = AuditCheckpoint(path)
        store.begin("dual", "bmc", 6)
        finding = rich_finding()
        finding.register = "rega"
        store.save_finding("rega", finding)

        report = TrojanDetector(
            nl, spec, max_cycles=6, time_budget=30
        ).run(checkpoint=path)
        assert report.trojan_found
        # stop_on_first: regb never audited
        assert "regb" not in report.findings
