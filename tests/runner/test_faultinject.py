"""Deterministic fault-injection rule tests."""

import pytest

from repro.errors import ResourceBudgetExceeded
from repro.runner import FaultInjector, FaultSpec, InjectedFault


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(match="*", kind="explode")

    def test_name_matching_is_glob(self):
        spec = FaultSpec(match="corruption(*)", kind="raise")
        assert spec.applies("corruption(secret)", 0)
        assert not spec.applies("bypass(secret)", 0)

    def test_first_attempts_window(self):
        spec = FaultSpec(match="*", kind="raise", first_attempts=2)
        assert spec.applies("x", 0)
        assert spec.applies("x", 1)
        assert not spec.applies("x", 2)


class TestFaultInjector:
    def test_no_match_is_noop(self):
        FaultInjector.raise_on("bypass(*)").fire("corruption(r)", 0)

    def test_raise_fault(self):
        injector = FaultInjector.raise_on("*", message="boom")
        with pytest.raises(InjectedFault, match="boom"):
            injector.fire("corruption(r)", 0)

    def test_budget_fault_carries_bound(self):
        injector = FaultInjector.budget_on("*", bound_reached=9)
        with pytest.raises(ResourceBudgetExceeded) as info:
            injector.fire("corruption(r)", 0)
        assert info.value.bound_reached == 9

    def test_memory_fault(self):
        with pytest.raises(MemoryError):
            FaultInjector.memory_on("*").fire("x", 0)

    def test_inline_crash_degrades_to_exception(self):
        # a real os._exit would kill the test process — inline it must not
        with pytest.raises(InjectedFault, match="hard crash"):
            FaultInjector.crash_on("*").fire("x", 0, in_worker=False)

    def test_first_matching_rule_wins(self):
        injector = FaultInjector([
            FaultSpec(match="corruption(*)", kind="budget", bound_reached=3),
            FaultSpec(match="*", kind="raise"),
        ])
        with pytest.raises(ResourceBudgetExceeded):
            injector.fire("corruption(r)", 0)
        with pytest.raises(InjectedFault):
            injector.fire("tracking(r->c,after)", 0)

    def test_deterministic_across_calls(self):
        injector = FaultInjector.raise_on("*", first_attempts=1)
        with pytest.raises(InjectedFault):
            injector.fire("x", 0)
        injector.fire("x", 1)  # retries succeed, every time
        injector.fire("x", 1)
