"""RetryPolicy / ResourceLimits schedule tests."""

import pytest

from repro.runner import ResourceLimits, RetryPolicy
from repro.runner.policy import BUDGET, CRASHED, EXHAUSTED, OK, TIMEOUT


class TestRetryPolicy:
    def test_single_attempt_never_retries(self):
        policy = RetryPolicy()
        assert not policy.should_retry(CRASHED, 0)

    def test_retries_degraded_statuses_until_attempts_spent(self):
        policy = RetryPolicy(attempts=3)
        for status in (CRASHED, TIMEOUT, BUDGET, EXHAUSTED):
            assert policy.should_retry(status, 0)
            assert policy.should_retry(status, 1)
            assert not policy.should_retry(status, 2)

    def test_ok_never_retries(self):
        assert not RetryPolicy(attempts=5).should_retry(OK, 0)

    def test_retry_on_filter(self):
        policy = RetryPolicy(attempts=3, retry_on=(TIMEOUT,))
        assert policy.should_retry(TIMEOUT, 0)
        assert not policy.should_retry(CRASHED, 0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(attempts=4, backoff=0.5, backoff_factor=3.0)
        assert policy.delay_for(0) == 0.0
        assert policy.delay_for(1) == 0.5
        assert policy.delay_for(2) == 1.5
        assert policy.delay_for(3) == 4.5

    def test_bound_halving_floors_at_one(self):
        policy = RetryPolicy(attempts=6, halve_bound=True)
        assert policy.bound_for(0, 40) == 40
        assert policy.bound_for(1, 40) == 20
        assert policy.bound_for(2, 40) == 10
        assert policy.bound_for(5, 40) == 1

    def test_bound_unchanged_without_halving(self):
        assert RetryPolicy(attempts=3).bound_for(2, 40) == 40

    def test_budget_scaling(self):
        policy = RetryPolicy(attempts=3, budget_scale=2.0)
        assert policy.budget_for(0, 10.0) == 10.0
        assert policy.budget_for(1, 10.0) == 20.0
        assert policy.budget_for(2, 10.0) == 40.0
        assert policy.budget_for(1, None) is None

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestResourceLimits:
    def test_explicit_wall_timeout_wins(self):
        limits = ResourceLimits(wall_timeout=5.0, grace=2.0)
        assert limits.effective_timeout(60.0) == 5.0

    def test_derived_from_cooperative_budget_plus_grace(self):
        limits = ResourceLimits(grace=2.0)
        assert limits.effective_timeout(10.0) == 12.0

    def test_unbounded_when_nothing_set(self):
        assert ResourceLimits().effective_timeout(None) is None
