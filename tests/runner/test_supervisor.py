"""CheckRunner supervision tests: isolation, budgets, retries."""

import time

import pytest

from repro.errors import ReproError, ResourceBudgetExceeded
from repro.netlist import Circuit
from repro.runner import (
    CallableTask,
    CheckRunner,
    FaultInjector,
    ObjectiveTask,
    PartialVerdict,
    ResourceLimits,
    RetryPolicy,
)

from tests.conftest import build_counter


def counter_task(max_cycles=8, time_budget=30.0, engine="bmc"):
    nl = build_counter(3)
    c = Circuit.attach(nl)
    objective = c.bv(nl.register_q_nets("count")).eq_const(3).nets[0]
    return ObjectiveTask(
        engine=engine,
        netlist=nl,
        objective_net=objective,
        max_cycles=max_cycles,
        property_name="count==3",
        check_kwargs={"time_budget": time_budget},
    )


class TestInlineExecution:
    def test_conclusive_check_is_ok(self):
        outcome = CheckRunner().run(counter_task(), name="count")
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.result.status == "violated"
        assert outcome.result.bound == 4
        assert outcome.num_attempts == 1
        assert outcome.attempts[0].mode == "inline"

    def test_engine_exception_becomes_crashed_outcome(self):
        def explode():
            raise RuntimeError("solver ate itself")

        outcome = CheckRunner().run(CallableTask(fn=explode), name="bad")
        assert outcome.status == "crashed"
        assert "solver ate itself" in outcome.error
        assert isinstance(outcome.verdict, PartialVerdict)
        assert not outcome.verdict.detected
        assert outcome.verdict.status == "unknown"

    def test_resource_budget_exceeded_becomes_budget_outcome(self):
        def exhaust():
            raise ResourceBudgetExceeded("deep bound", bound_reached=11)

        outcome = CheckRunner().run(CallableTask(fn=exhaust), name="deep")
        assert outcome.status == "budget"
        assert outcome.bound_reached == 11
        assert outcome.verdict.bound == 11  # largest certified bound survives

    def test_exhausted_engine_result_is_partial_not_ok(self):
        # zero cooperative budget -> engine returns "unknown" immediately
        outcome = CheckRunner().run(
            counter_task(max_cycles=200, time_budget=0.0), name="count"
        )
        assert outcome.status == "exhausted"
        assert outcome.result is not None  # the partial engine result kept
        assert outcome.result.status == "unknown"

    def test_inline_crash_fault_does_not_kill_the_process(self):
        runner = CheckRunner(fault_injector=FaultInjector.crash_on("*"))
        outcome = runner.run(counter_task(), name="count")
        assert outcome.status == "crashed"


class TestProcessIsolation:
    def test_conclusive_check_round_trips_the_witness(self):
        runner = CheckRunner(isolation="process")
        outcome = runner.run(counter_task(), name="count")
        assert outcome.ok
        assert outcome.result.status == "violated"
        assert outcome.result.witness is not None
        assert outcome.attempts[0].mode == "process"

    def test_worker_death_is_a_crashed_outcome(self):
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.crash_on("count"),
        )
        outcome = runner.run(counter_task(), name="count")
        assert outcome.status == "crashed"
        assert "exit code" in outcome.error

    def test_hang_is_killed_at_the_hard_timeout(self):
        runner = CheckRunner(
            isolation="process",
            limits=ResourceLimits(wall_timeout=0.5),
            fault_injector=FaultInjector.stall_on("count", seconds=60.0),
        )
        start = time.perf_counter()
        outcome = runner.run(counter_task(), name="count")
        elapsed = time.perf_counter() - start
        assert outcome.status == "timeout"
        assert elapsed < 10.0  # killed, not waited on for 60 s
        assert "killed" in outcome.error

    def test_budget_fault_crosses_the_process_boundary(self):
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.budget_on("count", bound_reached=5),
        )
        outcome = runner.run(counter_task(), name="count")
        assert outcome.status == "budget"
        assert outcome.bound_reached == 5

    def test_memory_error_reported_as_crash(self):
        runner = CheckRunner(
            isolation="process",
            fault_injector=FaultInjector.memory_on("count"),
        )
        outcome = runner.run(counter_task(), name="count")
        assert outcome.status == "crashed"
        assert "MemoryError" in outcome.error


class TestRetries:
    def test_flaky_check_succeeds_on_retry(self):
        runner = CheckRunner(
            retry=RetryPolicy(attempts=3),
            fault_injector=FaultInjector.raise_on("count", first_attempts=1),
        )
        outcome = runner.run(counter_task(), name="count")
        assert outcome.ok
        assert outcome.num_attempts == 2
        assert outcome.attempts[0].status == "crashed"
        assert outcome.attempts[1].status == "ok"

    def test_every_attempt_is_recorded_on_total_failure(self):
        runner = CheckRunner(
            retry=RetryPolicy(attempts=3),
            fault_injector=FaultInjector.raise_on("count"),
        )
        outcome = runner.run(counter_task(), name="count")
        assert outcome.status == "crashed"
        assert outcome.num_attempts == 3
        assert [a.index for a in outcome.attempts] == [0, 1, 2]

    def test_bound_halving_schedule_applied(self):
        runner = CheckRunner(
            retry=RetryPolicy(attempts=3, halve_bound=True),
            fault_injector=FaultInjector.raise_on("count", first_attempts=2),
        )
        outcome = runner.run(counter_task(max_cycles=16), name="count")
        assert [a.max_cycles for a in outcome.attempts] == [16, 8, 4]
        assert outcome.ok  # violation at cycle 4 still within halved bound

    def test_budget_escalation_applied(self):
        runner = CheckRunner(
            retry=RetryPolicy(attempts=2, budget_scale=2.0),
            fault_injector=FaultInjector.raise_on("count", first_attempts=1),
        )
        outcome = runner.run(counter_task(time_budget=10.0), name="count")
        assert outcome.attempts[0].time_budget == 10.0
        assert outcome.attempts[1].time_budget == 20.0

    def test_conclusive_verdict_stops_retrying(self):
        runner = CheckRunner(retry=RetryPolicy(attempts=5))
        outcome = runner.run(counter_task(), name="count")
        assert outcome.num_attempts == 1

    def test_deepest_partial_bound_kept_across_attempts(self):
        runner = CheckRunner(
            retry=RetryPolicy(attempts=2),
            fault_injector=FaultInjector.budget_on(
                "count", bound_reached=6, first_attempts=1
            ),
        )
        # retry also fails (injector only spares attempt 0... it fires on
        # attempt 0 only), second attempt runs clean and concludes
        outcome = runner.run(counter_task(), name="count")
        assert outcome.ok
        assert outcome.bound_reached >= 4


class TestRunnerConfig:
    def test_unknown_isolation_rejected(self):
        with pytest.raises(ReproError):
            CheckRunner(isolation="thread")

    def test_configure_maps_flat_knobs(self):
        runner = CheckRunner.configure(
            workers=1, check_timeout=3.0, retries=2
        )
        assert runner.isolation == "process"
        assert runner.limits.wall_timeout == 3.0
        assert runner.retry.attempts == 3

    def test_configure_default_is_inline_single_attempt(self):
        runner = CheckRunner.configure()
        assert runner.isolation == "inline"
        assert runner.retry.attempts == 1
