"""UNSAT-under-assumptions semantics: cores, incrementality, cadence.

Regression suite for the CDCL rework that removed the premature
"conflict below the assumption frontier => UNSAT" shortcut. The solver
now only reports UNSAT under assumptions when an assumption literal is
genuinely falsified at its decision point, and every such verdict
carries an UNSAT ``core`` — a subset of the assumption literals that is
already jointly inconsistent with the formula. The core tests fail on
the old code, which returned UNSAT straight from the conflict branch
with no core at all.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SAT, UNKNOWN, UNSAT, Solver


def brute_force_sat(num_vars, clauses, assumptions=()):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if any(assignment[abs(a)] != (a > 0) for a in assumptions):
            continue
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def pigeonhole(solver, pigeons, holes):
    """Encode pigeons-into-holes; UNSAT iff pigeons > holes."""
    p = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    clauses = []

    def add(clause):
        clauses.append(clause)
        solver.add_clause(clause)

    for i in range(pigeons):
        add(p[i])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                add([-p[i1][j], -p[i2][j]])
    return p, clauses


class TestUnsatCore:
    def test_core_present_subset_and_unsat(self):
        # (a | b) under [-a, -b]: the conflict surfaces below the
        # assumption frontier — exactly the path the old shortcut
        # hijacked, returning UNSAT with no core.
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        result = solver.solve(assumptions=[-a, -b])
        assert result.status == UNSAT
        assert result.core is not None
        assert set(result.core) <= {-a, -b}
        assert not brute_force_sat(2, [[a, b]], result.core)

    def test_core_excludes_irrelevant_assumptions(self):
        solver = Solver()
        a, b, c, d = solver.new_vars(4)
        solver.add_clause([a, b])
        result = solver.solve(assumptions=[c, -a, d, -b])
        assert result.status == UNSAT
        assert set(result.core) <= {-a, -b}  # c and d played no part
        assert not brute_force_sat(4, [[a, b]], result.core)

    def test_contradictory_assumptions(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])  # irrelevant padding
        result = solver.solve(assumptions=[a, -a])
        assert result.status == UNSAT
        assert set(result.core) == {a, -a}

    def test_root_contradiction_yields_empty_core(self):
        solver = Solver()
        (a,) = solver.new_vars(1)
        solver.add_clause([a])
        solver.add_clause([-a])
        result = solver.solve(assumptions=[a])
        assert result.status == UNSAT
        assert result.core == ()

    def test_unsat_without_assumptions_has_no_core(self):
        solver = Solver()
        (a,) = solver.new_vars(1)
        solver.add_clause([a])
        solver.add_clause([-a])
        result = solver.solve()
        assert result.status == UNSAT
        assert result.core is None

    def test_sat_and_unknown_have_no_core(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a]).core is None
        hard = Solver()
        pigeonhole(hard, 5, 4)
        budget = hard.solve(conflict_budget=2, assumptions=[1])
        if budget.status == UNKNOWN:  # tiny budget should not conclude
            assert budget.core is None

    def test_implication_chain_core(self):
        # a -> x1 -> x2 -> x3 -> -b: assuming [a, b] is inconsistent but
        # only via a multi-step propagation chain.
        solver = Solver()
        a, b, x1, x2, x3 = solver.new_vars(5)
        clauses = [[-a, x1], [-x1, x2], [-x2, x3], [-x3, -b]]
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(assumptions=[a, b])
        assert result.status == UNSAT
        assert set(result.core) == {a, b}
        assert not brute_force_sat(5, clauses, result.core)


class TestIncrementalRecovery:
    def test_solver_usable_after_assumption_unsat(self):
        # The learnt clauses from the failed call must not poison the
        # formula: weaker assumptions and the bare formula stay SAT.
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a, -b]).status == UNSAT
        relaxed = solver.solve(assumptions=[-a])
        assert relaxed.status == SAT
        assert relaxed.model[b]
        assert solver.solve().status == SAT

    def test_alternating_unsat_sat_rounds(self):
        solver = Solver()
        a, b, c = solver.new_vars(3)
        solver.add_clause([a, b, c])
        for _ in range(3):
            res = solver.solve(assumptions=[-a, -b, -c])
            assert res.status == UNSAT
            assert res.core is not None
            assert set(res.core) <= {-a, -b, -c}
            sat = solver.solve(assumptions=[-a, -b])
            assert sat.status == SAT
            assert sat.model[c]

    def test_budget_exhaustion_under_assumptions_is_unknown(self):
        solver = Solver()
        p, clauses = pigeonhole(solver, 6, 5)
        assumption = [p[0][0]]
        res = solver.solve(assumptions=assumption, conflict_budget=2)
        assert res.status in (UNKNOWN, UNSAT)
        if res.status == UNKNOWN:
            # and the instance is still decided correctly afterwards
            assert res.core is None
            assert solver.solve(assumptions=assumption).status == UNSAT


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_fuzz_assumption_cores_across_restarts(data):
    # restart_base=1 restarts after every conflict: assumption decisions
    # are torn down and replayed constantly, which is where premature
    # UNSAT shortcuts and broken core bookkeeping would show.
    num_vars = data.draw(st.integers(2, 7))
    solver = Solver(restart_base=1)
    solver.new_vars(num_vars)
    clauses = []
    for _ in range(data.draw(st.integers(1, 15))):
        clause = [
            data.draw(st.integers(1, num_vars))
            * (1 if data.draw(st.booleans()) else -1)
            for _ in range(data.draw(st.integers(1, 3)))
        ]
        clauses.append(clause)
        solver.add_clause(clause)
    for _round in range(3):
        k = data.draw(st.integers(1, min(4, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars), min_size=k, max_size=k, unique=True
            )
        )
        assumptions = [
            v * (1 if data.draw(st.booleans()) else -1) for v in variables
        ]
        result = solver.solve(assumptions=assumptions)
        expected = brute_force_sat(num_vars, clauses, assumptions)
        assert (result.status == SAT) == expected
        if result.status == UNSAT:
            assert result.core is not None
            assert set(result.core) <= set(assumptions)
            # the core alone must already be inconsistent
            assert not brute_force_sat(num_vars, clauses, result.core)


class _FakeClock:
    """Deterministic stand-in for time.perf_counter: each read advances
    the clock by a fixed step, so "time spent" is a call count."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step
        self.reads = 0

    def perf_counter(self):
        self.reads += 1
        self.now += self.step
        return self.now


class TestBudgetCadence:
    def test_conflict_storm_respects_budget_promptly(self, monkeypatch):
        # Every perf_counter read costs 0.01 fake seconds. The budget of
        # 0.05 expires after a handful of reads; the solver must notice
        # within one cadence window (first conflict, then every 16th),
        # not coast for 64 conflicts like the old modulo gate allowed.
        solver = Solver()
        pigeonhole(solver, 6, 5)
        clock = _FakeClock(step=0.01)
        monkeypatch.setattr(
            "repro.sat.solver.time",
            type("t", (), {"perf_counter": staticmethod(clock.perf_counter)}),
        )
        result = solver.solve(time_budget=0.05)
        assert result.status == UNKNOWN
        assert result.conflicts <= 17

    def test_first_conflict_reads_the_clock(self, monkeypatch):
        # A budget that is already blown when the first conflict lands
        # must stop immediately — the threshold starts at the current
        # conflict count, it does not wait for a multiple.
        solver = Solver()
        pigeonhole(solver, 5, 4)
        clock = _FakeClock(step=1.0)
        monkeypatch.setattr(
            "repro.sat.solver.time",
            type("t", (), {"perf_counter": staticmethod(clock.perf_counter)}),
        )
        result = solver.solve(time_budget=0.5)
        assert result.status == UNKNOWN
        assert result.conflicts <= 1

    def test_generous_budget_still_concludes(self):
        solver = Solver()
        pigeonhole(solver, 5, 4)
        assert solver.solve(time_budget=60.0).status == UNSAT
