"""Cnf container tests."""

import pytest

from repro.errors import EncodingError
from repro.sat import Cnf


def test_variable_allocation():
    cnf = Cnf()
    assert cnf.new_var() == 1
    assert cnf.new_vars(3) == [2, 3, 4]
    assert cnf.num_vars == 4


def test_add_clause_validates_literals():
    cnf = Cnf()
    cnf.new_var()
    cnf.add_clause([1, -1])
    with pytest.raises(EncodingError):
        cnf.add_clause([0])
    with pytest.raises(EncodingError):
        cnf.add_clause([5])


def test_evaluate():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clause([a, b])
    cnf.add_clause([-a, b])
    assert cnf.evaluate({a: False, b: True})
    assert not cnf.evaluate({a: True, b: False})


def test_enumerate_models():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clause([a, b])
    models = cnf.enumerate_models()
    assert len(models) == 3
    assert all(m[a] or m[b] for m in models)


def test_enumerate_limit_and_guard():
    cnf = Cnf()
    cnf.new_vars(3)
    assert len(cnf.enumerate_models(limit=2)) == 2
    big = Cnf()
    big.num_vars = 30
    with pytest.raises(EncodingError):
        big.enumerate_models()
