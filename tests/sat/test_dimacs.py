"""DIMACS I/O tests."""

import pytest

from repro.errors import EncodingError
from repro.sat import Cnf, dumps, loads


def test_roundtrip():
    cnf = Cnf()
    a, b, c = cnf.new_vars(3)
    cnf.add_clause([a, -b])
    cnf.add_clause([b, c, -a])
    text = dumps(cnf, comments=["test formula"])
    assert text.startswith("c test formula\np cnf 3 2\n")
    back = loads(text)
    assert back.num_vars == 3
    assert back.clauses == [[1, -2], [2, 3, -1]]


def test_file_roundtrip(tmp_path):
    from repro.sat import dump, load

    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clause([a, b])
    path = tmp_path / "f.cnf"
    dump(cnf, str(path))
    assert load(str(path)).clauses == [[1, 2]]


def test_multiline_clause():
    cnf = loads("p cnf 3 1\n1 2\n3 0\n")
    assert cnf.clauses == [[1, 2, 3]]


def test_missing_header_rejected():
    with pytest.raises(EncodingError):
        loads("1 2 0\n")


def test_trailing_clause_rejected():
    with pytest.raises(EncodingError):
        loads("p cnf 2 1\n1 2\n")
