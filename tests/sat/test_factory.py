"""Backend factory: REPRO_SAT_BACKEND selection and fallback."""

import pytest

from repro.sat.factory import backend_name, default_solver
from repro.sat.native import NativeSolver, native_available
from repro.sat.solver import Solver


def test_python_forced(monkeypatch):
    monkeypatch.setenv("REPRO_SAT_BACKEND", "python")
    assert isinstance(default_solver(), Solver)


def test_unknown_value_falls_back_to_auto(monkeypatch):
    monkeypatch.setenv("REPRO_SAT_BACKEND", "cadical???")
    assert backend_name() == "auto"
    solver = default_solver()
    if native_available():
        assert isinstance(solver, NativeSolver)
    else:
        assert isinstance(solver, Solver)


@pytest.mark.skipif(not native_available(), reason="no C compiler")
def test_native_forced(monkeypatch):
    monkeypatch.setenv("REPRO_SAT_BACKEND", "native")
    assert isinstance(default_solver(), NativeSolver)


def test_python_kwargs_forwarded(monkeypatch):
    monkeypatch.setenv("REPRO_SAT_BACKEND", "python")
    solver = default_solver(restart_base=123)
    assert solver.restart_base == 123
