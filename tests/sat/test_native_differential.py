"""Differential fuzz: compiled CDCL backend vs the reference solver.

The native backend must be observationally equivalent to the Python
solver at the solve-semantics level: same SAT/UNSAT verdicts, models
that satisfy the formula plus assumptions, and failed-assumption cores
that are genuinely inconsistent subsets of the assumptions. Models and
cores need not be bit-identical across backends — witness byte-identity
is provided one layer up by canonical counterexample extraction.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SAT, UNKNOWN, UNSAT, Solver
from repro.sat.native import NativeSolver, native_available

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C compiler / native backend"
)


def brute_force_sat(num_vars, clauses, assumptions=()):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if any(assignment[abs(a)] != (a > 0) for a in assumptions):
            continue
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def model_satisfies(model, clauses, assumptions=()):
    for a in assumptions:
        if model[abs(a)] != (a > 0):
            return False
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause)
        for clause in clauses
    )


clause_strategy = st.lists(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=4,
)
formula_strategy = st.lists(clause_strategy, min_size=0, max_size=12)


class TestNativeBasics:
    def test_empty_formula_sat(self):
        s = NativeSolver()
        s.new_vars(3)
        assert s.solve().status == SAT

    def test_unit_propagation_and_model(self):
        s = NativeSolver()
        a, b = s.new_vars(2)
        s.add_clause([a])
        s.add_clause([-a, b])
        r = s.solve()
        assert r.status == SAT
        assert r.model[a] and r.model[b]

    def test_model_survives_later_solves(self):
        # Python models are dict snapshots; the native view must be a
        # snapshot too, not a live pointer into solver state.
        s = NativeSolver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        first = s.solve(assumptions=[a, -b])
        assert first.status == SAT
        second = s.solve(assumptions=[-a, b])
        assert second.status == SAT
        assert first.model[a] and not first.model[b]
        assert not second.model[a] and second.model[b]

    def test_failed_assumption_core(self):
        s = NativeSolver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        r = s.solve(assumptions=[-a, -b])
        assert r.status == UNSAT
        assert r.core is not None
        assert set(r.core) <= {-a, -b}
        assert not brute_force_sat(2, [[a, b]], r.core)

    def test_root_conflict_core_is_empty(self):
        s = NativeSolver()
        (a,) = s.new_vars(1)
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve(assumptions=[a]).core == ()

    def test_sat_and_no_assumptions_have_no_core(self):
        s = NativeSolver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a]).core is None
        s.add_clause([-a])
        s.add_clause([a])
        assert s.solve().core is None

    def test_conflict_budget_unknown(self):
        s = NativeSolver()
        # pigeonhole 4 into 3: hard enough that 1 conflict cannot close it
        holes, pigeons = 3, 4
        vars_ = {}
        for p in range(pigeons):
            for h in range(holes):
                vars_[(p, h)] = s.new_var()
        for p in range(pigeons):
            s.add_clause([vars_[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-vars_[(p1, h)], -vars_[(p2, h)]])
        assert s.solve(conflict_budget=1).status == UNKNOWN
        assert s.solve().status == UNSAT

    def test_stats_are_cumulative_deltas(self):
        s = NativeSolver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        pre = s.stats.propagations
        s.solve(assumptions=[-a])
        assert s.stats.propagations > pre

    def test_bad_literal_raises(self):
        from repro.sat.solver import SolverError

        s = NativeSolver()
        s.new_vars(2)
        with pytest.raises(SolverError):
            s.add_clause([3])
        with pytest.raises(SolverError):
            s.solve(assumptions=[0])


@settings(max_examples=150, deadline=None)
@given(data=formula_strategy)
def test_fuzz_native_vs_python_verdicts(data):
    py = Solver()
    nat = NativeSolver()
    py.new_vars(6)
    nat.new_vars(6)
    for clause in data:
        py.add_clause(clause)
        nat.add_clause(clause)
    expected = brute_force_sat(6, data)
    r_py = py.solve()
    r_nat = nat.solve()
    assert r_py.status == r_nat.status
    assert (r_nat.status == SAT) == expected
    if r_nat.status == SAT:
        assert model_satisfies(r_nat.model, data)


@settings(max_examples=100, deadline=None)
@given(
    data=formula_strategy,
    assumption_rounds=st.lists(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=0,
            max_size=4,
        ),
        min_size=1,
        max_size=4,
    ),
)
def test_fuzz_native_incremental_assumptions(data, assumption_rounds):
    """Interleaved add_clause/solve with assumptions, both backends."""
    py = Solver()
    nat = NativeSolver()
    py.new_vars(6)
    nat.new_vars(6)
    clauses_so_far = []
    chunk = max(1, len(data) // len(assumption_rounds))
    for i, assumptions in enumerate(assumption_rounds):
        for clause in data[i * chunk:(i + 1) * chunk]:
            clauses_so_far.append(clause)
            py.add_clause(clause)
            nat.add_clause(clause)
        expected = brute_force_sat(6, clauses_so_far, assumptions)
        r_py = py.solve(assumptions=assumptions)
        r_nat = nat.solve(assumptions=assumptions)
        assert r_py.status == r_nat.status
        assert (r_nat.status == SAT) == expected
        if r_nat.status == SAT:
            assert model_satisfies(r_nat.model, clauses_so_far, assumptions)
        elif assumptions:
            assert r_nat.core is not None
            assert set(r_nat.core) <= set(assumptions)
            assert not brute_force_sat(6, clauses_so_far, r_nat.core)
