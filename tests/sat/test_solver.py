"""CDCL solver tests: unit cases plus hypothesis fuzz against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SAT, UNKNOWN, UNSAT, Cnf, Solver, luby


def brute_force_sat(num_vars, clauses, assumptions=()):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if any(assignment[abs(a)] != (a > 0) for a in assumptions):
            continue
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        solver = Solver()
        solver.new_vars(3)
        assert solver.solve().status == SAT

    def test_unit_propagation(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a])
        solver.add_clause([-a, b])
        result = solver.solve()
        assert result.status == SAT
        assert result.model[a] and result.model[b]

    def test_trivial_unsat(self):
        solver = Solver()
        (a,) = solver.new_vars(1)
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve().status == UNSAT

    def test_tautology_ignored(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, -a, b])
        assert solver.solve().status == SAT

    def test_pigeonhole_3_into_2_unsat(self):
        # p[i][j]: pigeon i in hole j
        solver = Solver()
        p = [[solver.new_var() for _ in range(2)] for _ in range(3)]
        for i in range(3):
            solver.add_clause(p[i])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    solver.add_clause([-p[i1][j], -p[i2][j]])
        assert solver.solve().status == UNSAT

    def test_xor_chain_sat(self):
        solver = Solver()
        n = 10
        xs = solver.new_vars(n)
        for i in range(n - 1):
            a, b = xs[i], xs[i + 1]
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        solver.add_clause([xs[0]])
        result = solver.solve()
        assert result.status == SAT
        for i in range(n):
            assert result.model[xs[i]] == (i % 2 == 0)

    def test_conflict_budget_unknown(self):
        solver = Solver()
        p = [[solver.new_var() for _ in range(4)] for _ in range(5)]
        for row in p:
            solver.add_clause(row)
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    solver.add_clause([-p[i1][j], -p[i2][j]])
        result = solver.solve(conflict_budget=3)
        assert result.status in (UNKNOWN, UNSAT)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        result = solver.solve(assumptions=[-a])
        assert result.status == SAT
        assert not result.model[a]
        assert result.model[b]

    def test_unsat_under_assumption_sat_without(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert solver.solve(assumptions=[-b]).status == UNSAT
        assert solver.solve().status == SAT  # solver state recovers

    def test_incremental_clause_addition(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a]).status == SAT
        solver.add_clause([-b])
        assert solver.solve(assumptions=[-a]).status == UNSAT
        assert solver.solve().status == SAT


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_invalid_index(self):
        with pytest.raises(Exception):
            luby(0)


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_fuzz_against_brute_force(data):
    num_vars = data.draw(st.integers(1, 8))
    num_clauses = data.draw(st.integers(1, 24))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, 4))
        clause = [
            data.draw(st.integers(1, num_vars))
            * (1 if data.draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    expected = brute_force_sat(num_vars, clauses)
    assert (result.status == SAT) == expected
    if result.status == SAT:
        cnf = Cnf()
        cnf.num_vars = num_vars
        cnf.clauses = clauses
        assert cnf.evaluate(result.model)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_fuzz_incremental_assumptions(data):
    num_vars = data.draw(st.integers(2, 7))
    solver = Solver()
    solver.new_vars(num_vars)
    clauses = []
    for _ in range(data.draw(st.integers(1, 15))):
        clause = [
            data.draw(st.integers(1, num_vars))
            * (1 if data.draw(st.booleans()) else -1)
            for _ in range(data.draw(st.integers(1, 3)))
        ]
        clauses.append(clause)
        solver.add_clause(clause)
    for _round in range(3):
        k = data.draw(st.integers(0, min(3, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        assumptions = [
            v * (1 if data.draw(st.booleans()) else -1) for v in variables
        ]
        result = solver.solve(assumptions=assumptions)
        assert (result.status == SAT) == brute_force_sat(
            num_vars, clauses, assumptions
        )
        if result.status == SAT:
            for lit in assumptions:
                assert result.model[abs(lit)] == (lit > 0)
