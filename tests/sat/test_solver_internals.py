"""Solver internals: clause-DB reduction, stats, result ergonomics."""

import random

from repro.sat import SAT, Cnf, Solver


def hard_random_instance(solver, nvars=60, ratio=4.2, seed=0):
    rng = random.Random(seed)
    solver.new_vars(nvars)
    for _ in range(int(nvars * ratio)):
        variables = rng.sample(range(1, nvars + 1), 3)
        solver.add_clause([v * rng.choice((1, -1)) for v in variables])


def test_reduce_db_triggers_and_stays_correct():
    solver = Solver()
    solver.max_learnts = 50  # force early reductions
    hard_random_instance(solver, nvars=80, seed=5)
    result = solver.solve(time_budget=30)
    assert result.status in (SAT, "unsat")
    assert solver.stats.learned_clauses > 0
    if solver.stats.deleted_clauses:
        # after reduction the solver still answers further queries soundly
        again = solver.solve()
        assert again.status == result.status


def test_solve_result_truthiness():
    solver = Solver()
    (a,) = solver.new_vars(1)
    solver.add_clause([a])
    assert solver.solve()
    solver.add_clause([-a])
    assert not solver.solve()


def test_stats_accumulate_across_calls():
    solver = Solver()
    hard_random_instance(solver, nvars=40, seed=2)
    solver.solve()
    first = solver.stats.solve_calls
    solver.solve(assumptions=[1])
    assert solver.stats.solve_calls == first + 1
    assert solver.stats.propagations > 0


def test_add_clause_after_solve_at_nonzero_level():
    # add_clause must self-backtrack to level 0
    solver = Solver()
    a, b, c = solver.new_vars(3)
    solver.add_clause([a, b, c])
    assert solver.solve().status == SAT
    solver.add_clause([-a])
    solver.add_clause([-b])
    solver.add_clause([-c])
    assert solver.solve().status == "unsat"


def test_duplicate_literals_deduped():
    solver = Solver()
    a, b = solver.new_vars(2)
    solver.add_clause([a, a, b, b])
    result = solver.solve(assumptions=[-a])
    assert result.status == SAT
    assert result.model[b]


def test_model_satisfies_original_cnf():
    cnf = Cnf()
    rng = random.Random(9)
    cnf.num_vars = 30
    solver = Solver()
    solver.new_vars(30)
    for _ in range(100):
        clause = [
            rng.randint(1, 30) * rng.choice((1, -1)) for _ in range(3)
        ]
        cnf.clauses.append(clause)
        solver.add_clause(clause)
    result = solver.solve()
    if result.status == SAT:
        assert cnf.evaluate(result.model)
