"""Tseitin encoding tests: every gate kind checked against simulation,
plus a hypothesis equivalence sweep on random circuits."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Circuit, Kind
from repro.sat import SAT, CombEncoder, Solver
from repro.sim import SequentialSimulator


def assert_circuit_equivalent(netlist, probes, trials=40, seed=0):
    """Random-vector equivalence of SAT encoding vs simulation."""
    sim = SequentialSimulator(netlist)
    solver = Solver()
    encoder = CombEncoder(netlist, solver)
    rng = random.Random(seed)
    for _ in range(trials):
        assumptions = []
        for name, nets in netlist.inputs.items():
            word = rng.getrandbits(len(nets))
            sim.set_input(name, word)
            for bit, net in enumerate(nets):
                lit = encoder.lit(net)
                assumptions.append(lit if (word >> bit) & 1 else -lit)
        sim.propagate()
        result = solver.solve(assumptions=assumptions)
        assert result.status == SAT
        for net in probes:
            lit = encoder.lit(net)
            value = result.model[abs(lit)]
            if lit < 0:
                value = not value
            assert int(value) == sim.net_value(net), netlist.net_name(net)


def test_every_gate_kind():
    c = Circuit("gates")
    a = c.input("a", 1)
    b = c.input("b", 1)
    s = c.input("s", 1)
    probes = []
    for kind in (Kind.AND, Kind.OR, Kind.XOR, Kind.NAND, Kind.NOR, Kind.XNOR):
        probes.append(c.netlist.add_cell(kind, (a.nets[0], b.nets[0])))
    probes.append(c.netlist.add_cell(Kind.NOT, (a.nets[0],)))
    probes.append(c.netlist.add_cell(Kind.BUF, (b.nets[0],)))
    probes.append(
        c.netlist.add_cell(Kind.MUX, (s.nets[0], a.nets[0], b.nets[0]))
    )
    for net in probes:
        c.output("o{}".format(net), c.bv([net]))
    assert_circuit_equivalent(c.finalize(), probes)


def test_variadic_gates():
    c = Circuit("wide")
    a = c.input("a", 6)
    probes = [
        c.netlist.add_cell(Kind.AND, tuple(a.nets)),
        c.netlist.add_cell(Kind.OR, tuple(a.nets)),
        c.netlist.add_cell(Kind.XOR, tuple(a.nets)),
    ]
    for net in probes:
        c.output("o{}".format(net), c.bv([net]))
    assert_circuit_equivalent(c.finalize(), probes)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10000))
def test_random_word_circuits(seed):
    rng = random.Random(seed)
    c = Circuit("rand")
    width = rng.randint(2, 6)
    a = c.input("a", width)
    b = c.input("b", width)
    exprs = [a, b]
    for _ in range(4):
        x = rng.choice(exprs)
        y = rng.choice(exprs)
        op = rng.choice(["and", "or", "xor", "add", "not"])
        if op == "and":
            exprs.append(x & y)
        elif op == "or":
            exprs.append(x | y)
        elif op == "xor":
            exprs.append(x ^ y)
        elif op == "add":
            exprs.append(x + y)
        else:
            exprs.append(~x)
    out = exprs[-1]
    c.output("y", out)
    nl = c.finalize()
    assert_circuit_equivalent(nl, list(out.nets), trials=15, seed=seed)


def test_encoder_requires_cone_membership():
    import pytest

    from repro.errors import EncodingError

    c = Circuit("t")
    a = c.input("a", 1)
    c.output("y", ~a)
    nl = c.finalize()
    solver = Solver()
    encoder = CombEncoder(nl, solver)
    with pytest.raises(EncodingError):
        encoder.lit(987654)
