"""Worker count must not leak into the report: jobs=4 == jobs=1, bytes."""

import pytest

from repro.core import AuditConfig, TrojanDetector
from repro.properties import DesignSpec
from repro.runner import CheckRunner

from tests.conftest import build_secret_design, secret_spec


def run_audit(jobs, variant_kwargs, **config_kwargs):
    nl = build_secret_design(**variant_kwargs)
    spec = DesignSpec(name=nl.name, critical={"secret": secret_spec()})
    config_kwargs.setdefault("max_cycles", 10)
    config_kwargs.setdefault("time_budget", 60)
    detector = TrojanDetector(
        nl, spec, config=AuditConfig(jobs=jobs, **config_kwargs),
        runner=CheckRunner.configure(check_timeout=120),
    )
    return detector.run()


@pytest.mark.parametrize("variant_kwargs", [
    dict(trojan=True),
    dict(trojan=False),
    dict(trojan=True, pseudo=True),
], ids=["trojan", "clean", "pseudo"])
def test_jobs_count_is_invisible_in_the_report(variant_kwargs):
    """`--jobs 4` must be byte-identical to `--jobs 1` after scrubbing.

    ``to_json(scrub=True)`` drops only the wall-clock/RSS keys
    (VOLATILE_KEYS); every verdict, witness, bound, attempt count and
    check status must already agree.
    """
    kwargs = dict(check_pseudo_critical=True, check_bypass=True)
    one = run_audit(1, variant_kwargs, **kwargs)
    four = run_audit(4, variant_kwargs, **kwargs)
    assert one.to_json(scrub=True) == four.to_json(scrub=True)


def test_scrub_keeps_witnesses_and_statuses():
    report = run_audit(2, dict(trojan=True))
    data = report.to_dict(scrub=True)
    finding = data["findings"]["secret"]
    assert data["trojan_found"] is True
    assert finding["corruption"]["witness"]  # witness survives the scrub
    assert "elapsed" not in finding
    assert "elapsed" not in data
    # unscubbed dict keeps the timing fields
    assert "elapsed" in report.to_dict()["findings"]["secret"]
