"""PersistentWorkerPool behavior: reuse, crash, timeout, cancel, fallback."""

import os
import time

import pytest

from repro.runner.tasks import CallableTask
from repro.sched.pool import PersistentWorkerPool


def _ok_task():
    return "done"


def _slow_task():
    time.sleep(30)
    return "never"


def _die_task():
    os._exit(17)


def _raise_task():
    raise ValueError("boom inside worker")


def drain(pool, want, timeout=30.0):
    """Collect `want` events or fail after `timeout` seconds."""
    events = []
    deadline = time.monotonic() + timeout
    while len(events) < want:
        assert time.monotonic() < deadline, "pool produced no event in time"
        events.extend(pool.wait(timeout=0.5))
    return events


@pytest.fixture
def pool():
    p = PersistentWorkerPool(size=2).start()
    yield p
    p.shutdown()


class TestLifecycle:
    def test_result_roundtrip(self, pool):
        assert pool.submit("t1", CallableTask(fn=_ok_task))
        (event,) = drain(pool, 1)
        assert event.task_id == "t1"
        assert event.kind == "ok"
        assert event.message[1] == "done"

    def test_workers_are_reused_not_respawned(self, pool):
        for index in range(3):
            assert pool.submit((index, "a"), CallableTask(fn=_ok_task))
            assert pool.submit((index, "b"), CallableTask(fn=_ok_task))
            drain(pool, 2)
        assert pool.stats["respawned"] == 0
        assert pool.stats["spawned"] == 2
        served = [w.tasks_served for w in pool.workers]
        assert sum(served) == 6
        assert all(count >= 1 for count in served)  # both pulled work

    def test_submit_false_when_saturated(self, pool):
        assert pool.submit("a", CallableTask(fn=_slow_task))
        assert pool.submit("b", CallableTask(fn=_slow_task))
        assert pool.submit("c", CallableTask(fn=_ok_task)) is False
        pool.cancel("a")
        pool.cancel("b")

    def test_shutdown_kills_busy_workers(self):
        pool = PersistentWorkerPool(size=1).start()
        pool.submit("hang", CallableTask(fn=_slow_task))
        pool.shutdown()
        assert pool.workers == []


class TestIsolation:
    def test_task_exception_is_contained(self, pool):
        pool.submit("t", CallableTask(fn=_raise_task))
        (event,) = drain(pool, 1)
        assert event.kind == "crashed"
        assert "boom inside worker" in event.message[1]
        # the worker survived and serves the next task
        pool.submit("t2", CallableTask(fn=_ok_task))
        (event,) = drain(pool, 1)
        assert event.kind == "ok"
        assert pool.stats["respawned"] == 0

    def test_worker_death_is_reported_and_respawned(self, pool):
        pool.submit("t", CallableTask(fn=_die_task))
        (event,) = drain(pool, 1)
        assert event.kind == "crashed"
        assert "exit code 17" in event.message[1]
        assert pool.stats["respawned"] == 1
        assert pool.idle_count == 2  # pool never shrinks

    def test_hard_timeout_kills_and_respawns(self, pool):
        pool.submit("t", CallableTask(fn=_slow_task), hard_timeout=0.3)
        (event,) = drain(pool, 1)
        assert event.kind == "timeout"
        assert pool.stats["respawned"] == 1
        assert pool.idle_count == 2

    def test_cancel_produces_no_event(self, pool):
        pool.submit("t", CallableTask(fn=_slow_task))
        assert pool.cancel("t") is True
        assert pool.cancel("t") is False  # already gone
        assert pool.wait(timeout=0.2) == []
        assert pool.stats["cancels"] == 1
        assert pool.idle_count == 2


class TestEphemeralFallback:
    def test_unpicklable_task_runs_in_fork_child(self, pool):
        secret = 41
        task = CallableTask(fn=lambda: secret + 1)  # closures don't pickle
        assert pool.submit("t", task)
        assert pool.stats["ephemeral"] == 1
        (event,) = drain(pool, 1)
        assert event.kind == "ok"
        assert event.message[1] == 42
        # the slot is reusable afterwards, through the persistent worker
        pool.submit("t2", CallableTask(fn=_ok_task))
        (event,) = drain(pool, 1)
        assert event.kind == "ok"
        assert pool.stats["ephemeral"] == 1

    def test_unpicklable_task_obeys_hard_timeout(self, pool):
        task = CallableTask(fn=lambda: time.sleep(30))
        pool.submit("t", task, hard_timeout=0.3)
        (event,) = drain(pool, 1)
        assert event.kind == "timeout"
        # only the one-shot proxy died; the persistent pool is intact
        assert pool.stats["respawned"] == 0
        assert pool.idle_count == 2

    def test_unpicklable_task_cancel(self, pool):
        task = CallableTask(fn=lambda: time.sleep(30))
        pool.submit("t", task)
        assert pool.cancel("t") is True
        assert pool.stats["respawned"] == 0
        assert pool.idle_count == 2
