"""AuditScheduler vs the serial detector: same report, any worker count."""

import pytest

from repro.core import AuditConfig, TrojanDetector
from repro.properties import DesignSpec
from repro.runner import AuditCheckpoint, CheckRunner
from repro.runner.checkpoint import finding_to_dict
from repro.sched import AuditRequest, AuditScheduler

from tests.conftest import build_secret_design, secret_spec

VARIANTS = {
    "trojan": dict(trojan=True),
    "clean": dict(trojan=False),
    "pseudo": dict(trojan=True, pseudo=True),
    "bypass": dict(trojan=True, bypass=True),
}

# "mode" differs between an inline serial check and a pool worker;
# everything else must match the serial loop field-for-field
SERIAL_VS_PARALLEL_SCRUB = {"elapsed", "peak_memory", "saved_elapsed",
                            "ts", "mode"}


def scrub(obj, keys=SERIAL_VS_PARALLEL_SCRUB):
    if isinstance(obj, dict):
        return {k: scrub(v, keys) for k, v in obj.items() if k not in keys}
    if isinstance(obj, list):
        return [scrub(v, keys) for v in obj]
    return obj


def design_for(variant):
    nl = build_secret_design(**VARIANTS[variant])
    spec = DesignSpec(name=nl.name, critical={"secret": secret_spec()})
    return nl, spec


def audit(variant, jobs, **config_kwargs):
    nl, spec = design_for(variant)
    config_kwargs.setdefault("max_cycles", 10)
    config_kwargs.setdefault("time_budget", 60)
    config = AuditConfig(jobs=jobs, **config_kwargs)
    runner = CheckRunner.configure(check_timeout=120)
    return TrojanDetector(nl, spec, config=config, runner=runner).run()


def comparable(report):
    return {
        "trojan_found": report.trojan_found,
        "findings": {
            register: scrub(finding_to_dict(finding))
            for register, finding in report.findings.items()
        },
    }


class TestSerialParity:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_full_feature_parity(self, variant):
        kwargs = dict(check_pseudo_critical=True, check_bypass=True)
        serial = audit(variant, jobs=None, **kwargs)
        parallel = audit(variant, jobs=3, **kwargs)
        assert comparable(serial) == comparable(parallel)

    def test_share_cones_parity(self):
        kwargs = dict(check_pseudo_critical=True, share_cones=True)
        serial = audit("pseudo", jobs=None, **kwargs)
        parallel = audit("pseudo", jobs=2, **kwargs)
        assert comparable(serial) == comparable(parallel)

    def test_no_stop_on_first_parity(self):
        kwargs = dict(check_pseudo_critical=True, stop_on_first=False)
        serial = audit("trojan", jobs=None, **kwargs)
        parallel = audit("trojan", jobs=2, **kwargs)
        assert comparable(serial) == comparable(parallel)

    def test_runner_workers_n_routes_through_scheduler(self):
        # the PR 1 bugfix: workers=N>1 must drive the pool, never be a lie
        nl, spec = design_for("trojan")
        runner = CheckRunner.configure(workers=3, check_timeout=120)
        detector = TrojanDetector(
            nl, spec, config=AuditConfig(max_cycles=10, time_budget=60),
            runner=runner,
        )
        assert detector.scheduler_jobs == 3
        report = detector.run()
        assert report.trojan_found


class TestCheckpointMidPool:
    def test_checkpoint_round_trips_through_scheduler(self, tmp_path):
        path = tmp_path / "audit.ckpt.json"
        config = dict(max_cycles=10, time_budget=60,
                      check_pseudo_critical=True, stop_on_first=False)

        def run_with_checkpoint():
            nl, spec = design_for("pseudo")
            detector = TrojanDetector(
                nl, spec, config=AuditConfig(jobs=2, **config),
                runner=CheckRunner.configure(check_timeout=120),
            )
            return detector.run(checkpoint=AuditCheckpoint(path))

        first = run_with_checkpoint()
        second = run_with_checkpoint()
        assert comparable(first) == comparable(second)
        assert second.findings["secret"].restored

    def test_restored_trojan_skips_all_new_audits(self, tmp_path):
        # serial quirk preserved: a restored trojan_found finding plus
        # stop_on_first means zero new checks are scheduled
        path = tmp_path / "audit.ckpt.json"
        config = dict(max_cycles=10, time_budget=60)
        nl, spec = design_for("trojan")
        detector = TrojanDetector(
            nl, spec, config=AuditConfig(jobs=2, **config),
            runner=CheckRunner.configure(check_timeout=120),
        )
        first = detector.run(checkpoint=AuditCheckpoint(path))
        assert first.trojan_found

        from repro.obs.tracer import BufferTracer, tracing

        nl2, spec2 = design_for("trojan")
        runner = CheckRunner.configure(check_timeout=120)
        detector2 = TrojanDetector(
            nl2, spec2, config=AuditConfig(jobs=2, **config), runner=runner,
        )
        buffer = BufferTracer()
        with tracing(buffer):
            second = detector2.run(checkpoint=AuditCheckpoint(path))
        assert second.trojan_found
        assert second.findings["secret"].restored
        counters = buffer.metrics.snapshot()["counters"]
        assert counters.get("runner.checks", 0) == 0


class TestMultiDesign:
    def test_many_designs_one_pool(self):
        requests = []
        expected = []
        for variant in ("trojan", "clean", "pseudo", "bypass"):
            nl, spec = design_for(variant)
            detector = TrojanDetector(
                nl, spec,
                config=AuditConfig(max_cycles=10, time_budget=60,
                                   check_pseudo_critical=True,
                                   check_bypass=True),
                runner=CheckRunner.configure(check_timeout=120),
            )
            requests.append(AuditRequest(detector))
            expected.append(variant != "clean")
        reports = AuditScheduler(requests, jobs=3).run()
        assert [r.trojan_found for r in reports] == expected
        for variant, report in zip(("trojan", "clean", "pseudo", "bypass"),
                                   reports):
            serial = audit(variant, jobs=None, check_pseudo_critical=True,
                           check_bypass=True)
            assert comparable(serial) == comparable(report), variant

    def test_bench_audit_sweep_uses_one_scheduler(self):
        from repro.bench.harness import audit_sweep

        designs = []
        for variant in ("trojan", "clean"):
            nl, spec = design_for(variant)
            designs.append((variant, nl, spec))
        rows = audit_sweep(designs, jobs=2, max_cycles=10, time_budget=60)
        assert [row.label for row in rows] == ["trojan", "clean"]
        assert rows[0].trojan_found and not rows[1].trojan_found
        # the secret core carries no bundled TrojanInfo, so ground truth
        # says "clean": the trojan row must be flagged as a mismatch
        assert not rows[0].match
        assert rows[1].match
