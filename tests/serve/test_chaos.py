"""End-to-end chaos: killed workers, reclaimed leases, exact verdicts.

The service's whole contract in one test: submit N jobs, kill workers
mid-audit at injected points, and assert that every job still reaches a
terminal verdict **exactly once**, with a report byte-identical (after
``scrub_volatile``) to a fault-free serial run — plus the advisory-cache
half: an unreachable backend may cost duplicate solves but never stalls
or fails an audit.
"""

import json

import pytest

from repro.cache.backend import FallbackBackend, LocalBackend, MemoryBackend
from repro.frontend import build_builtin as build_design
from repro.core import AuditConfig, TrojanDetector
from repro.core.report import scrub_volatile
from repro.runner.faultinject import (
    FaultyBackendProxy,
    ServiceFaultPlan,
)
from repro.serve import AuditService
from repro.serve.queue import read_journal

DESIGNS = ["mc8051-t800", "router", "mc8051-t700"]
OPTIONS = {"max_cycles": 16, "time_budget": 30.0}


def scrubbed_json(report_dict):
    """Canonical bytes for a report dict, volatile keys dropped.

    The serial baseline is pushed through a JSON round-trip first so
    both sides carry JSON-native types (tuples become lists, keys
    become strings) — the comparison is then honestly byte-for-byte.
    """
    round_tripped = json.loads(json.dumps(report_dict, default=str))
    return json.dumps(scrub_volatile(round_tripped), sort_keys=True)


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free serial audits: design -> canonical scrubbed report."""
    baseline = {}
    for design in DESIGNS:
        netlist, spec = build_design(design)
        report = TrojanDetector(
            netlist, spec, config=AuditConfig(**OPTIONS)
        ).run()
        baseline[design] = scrubbed_json(report.to_dict())
    return baseline


class TestKilledWorkers:
    def test_every_job_terminal_exactly_once_byte_identical(
        self, tmp_path, serial_baseline
    ):
        # one kill per job, each at a different point in its life:
        # before the audit starts, mid-audit (inside the detector's
        # register loop), and after the audit but before completion
        plan = ServiceFaultPlan.parse([
            "kill-lease-holder:job-0001@leased",
            "kill-lease-holder:job-0002@mid",
            "kill-lease-holder:job-0003@pre-complete",
        ])
        service = AuditService(
            tmp_path / "q", workers=2, lease_ttl=0.3, max_leases=3,
            fault_plan=plan,
        )
        service.start()
        jobs = {
            service.queue.submit({"design": design, "options": OPTIONS}):
                design
            for design in DESIGNS
        }
        assert service.wait_idle(timeout=240), service.queue.jobs()

        # every injected kill actually happened, and each killed worker
        # abandoned its job (no release, no complete)
        assert len(plan.fired) == 3
        assert service.jobs_abandoned == 3
        assert service.queue.reclaims == 3

        for job_id, design in jobs.items():
            job = service.queue.job(job_id)
            assert job["state"] == "done", job["errors"]
            assert job["attempts"] == 2  # killed once, re-run once
            assert scrubbed_json(job["result"]["report"]) == \
                serial_baseline[design]

        # exactly once: the journal holds one complete record per job.
        # (stale_rejections may legitimately be nonzero — a starved
        # heartbeat daemon can race a reclaim and get fenced, which is
        # the fence doing its job; what matters is that no stale token
        # ever produced a second complete, which the journal proves)
        records, torn = read_journal(service.queue._journal_path)
        completes = [r["job"] for r in records if r["kind"] == "complete"]
        assert sorted(completes) == sorted(jobs)
        assert torn == 0
        service.drain(timeout=30)

    def test_repeatedly_killed_job_dead_letters(self, tmp_path):
        """A job whose every lease holder dies exhausts max_leases and
        lands in the dead-letter state instead of looping forever."""
        plan = ServiceFaultPlan.parse([
            "kill-lease-holder:job-0001@leased:99",
        ])
        service = AuditService(
            tmp_path / "q", workers=1, lease_ttl=0.2, max_leases=2,
            fault_plan=plan,
        )
        service.start()
        doomed = service.queue.submit(
            {"design": "router", "options": OPTIONS}
        )
        fine = service.queue.submit(
            {"design": "mc8051-t800", "options": OPTIONS}
        )
        assert service.wait_idle(timeout=240), service.queue.jobs()

        dead = service.queue.job(doomed)
        assert dead["state"] == "dead"
        assert dead["attempts"] == 2
        assert dead["errors"]  # expiry reasons recorded for the operator
        # the healthy job is unaffected by its neighbour's death spiral
        done = service.queue.job(fine)
        assert done["state"] == "done"
        assert done["result"]["trojan_found"] is True
        service.drain(timeout=30)


class TestBackendTrouble:
    def test_unreachable_backend_never_stalls_an_audit(self, tmp_path):
        """Every cache call fails fast; the FallbackBackend opens its
        breaker and degrades to the local directory — the audit pays
        duplicate solves, never a stall or a wrong verdict."""
        # the baseline must be cache-enabled too: consulting a cache
        # annotates each outcome ("miss"), and the comparison below is
        # byte-exact
        netlist, spec = build_design("mc8051-t800")
        baseline_report = TrojanDetector(
            netlist, spec,
            config=AuditConfig(
                cache_dir=str(tmp_path / "baseline-cache"), **OPTIONS
            ),
        ).run()
        baseline = scrubbed_json(baseline_report.to_dict())

        plan = ServiceFaultPlan.parse([
            "backend-timeout:get:9999",
            "backend-timeout:put:9999",
            "backend-timeout:claim:9999",
            "backend-timeout:release:9999",
        ])
        wrappers = []

        def backend_factory(cache_dir):
            backend = FallbackBackend(
                FaultyBackendProxy(MemoryBackend(), plan),
                local=LocalBackend(cache_dir),
                failures=2, cooldown=300.0,
            )
            wrappers.append(backend)
            return backend

        service = AuditService(
            tmp_path / "q", workers=1, lease_ttl=10.0,
            backend_factory=backend_factory,
        )
        service.start()
        options = dict(OPTIONS, cache_dir=str(tmp_path / "cache"))
        job_id = service.queue.submit(
            {"design": "mc8051-t800", "options": options}
        )
        assert service.wait_idle(timeout=240), service.queue.jobs()

        job = service.queue.job(job_id)
        assert job["state"] == "done", job["errors"]
        assert scrubbed_json(job["result"]["report"]) == baseline
        assert wrappers, "cache_dir option did not reach the runner"
        stats = wrappers[0].stats
        assert stats["primary_failures"] > 0
        assert stats["breaker_opens"] >= 1
        assert stats["degraded_calls"] > 0
        service.drain(timeout=30)
