"""Durable job queue: leases, fencing, dead-letter, torn journals."""

import json
import os

import pytest

from repro.errors import JobQueueError
from repro.runner.faultinject import (
    CLOCK_SKEW,
    ServiceFaultPlan,
    ServiceFaultSpec,
)
from repro.serve.queue import (
    DEAD,
    DONE,
    LEASED,
    QUEUED,
    JobQueue,
    read_journal,
)


class FakeClock:
    """Deterministic wall clock; tests advance it by hand."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_queue(tmp_path, clock, **kw):
    kw.setdefault("lease_ttl", 10.0)
    kw.setdefault("max_leases", 3)
    return JobQueue(tmp_path / "q", clock=clock, **kw)


class TestLifecycle:
    def test_submit_lease_heartbeat_complete(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({"design": "router"})
        job, token = q.lease("w0")
        assert job["id"] == job_id
        assert job["state"] == LEASED
        assert job["attempts"] == 1
        deadline = q.heartbeat(job_id, token)
        assert deadline == clock.now + q.lease_ttl
        assert q.complete(job_id, token, {"verdict": "clean"})
        done = q.job(job_id)
        assert done["state"] == DONE
        assert done["result"] == {"verdict": "clean"}

    def test_lease_empty_queue_returns_none(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        assert q.lease("w0") is None

    def test_fifo_order(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        first = q.submit({"n": 1})
        q.submit({"n": 2})
        job, _token = q.lease("w0")
        assert job["id"] == first

    def test_unknown_job_raises(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        with pytest.raises(JobQueueError):
            q.job("job-9999")

    def test_complete_is_exactly_once(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        _job, token = q.lease("w0")
        assert q.complete(job_id, token, {"ok": 1})
        # second completion with the same (now consumed) token: rejected
        assert not q.complete(job_id, token, {"ok": 2})
        assert q.job(job_id)["result"] == {"ok": 1}
        assert q.stale_rejections == 1


class TestLeaseRecovery:
    def test_expired_lease_is_reclaimed(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        _job, old_token = q.lease("w0")
        # w0 goes silent; nothing is runnable until the TTL passes
        assert q.lease("w1") is None
        clock.advance(q.lease_ttl + 1)
        job, new_token = q.lease("w1")
        assert job["id"] == job_id
        assert job["attempts"] == 2
        assert new_token != old_token
        assert q.reclaims == 1

    def test_stale_token_is_fenced_out(self, tmp_path, clock):
        """The resurrected first worker cannot finish the job twice."""
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        _job, old_token = q.lease("w0")
        clock.advance(q.lease_ttl + 1)
        _job2, new_token = q.lease("w1")
        assert q.heartbeat(job_id, old_token) is None
        assert not q.complete(job_id, old_token, {"from": "ghost"})
        assert not q.fail(job_id, old_token, "ghost error")
        assert q.complete(job_id, new_token, {"from": "w1"})
        assert q.job(job_id)["result"] == {"from": "w1"}

    def test_heartbeat_extends_the_deadline(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        _job, token = q.lease("w0")
        clock.advance(q.lease_ttl - 1)
        assert q.heartbeat(job_id, token) is not None
        clock.advance(q.lease_ttl - 1)
        # still alive thanks to the heartbeat: nothing to reclaim
        assert q.lease("w1") is None
        assert q.complete(job_id, token, {})

    def test_dead_letter_after_max_leases(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_leases=2)
        job_id = q.submit({})
        for expected_attempt in (1, 2):
            job, _token = q.lease("w0")
            assert job["attempts"] == expected_attempt
            clock.advance(q.lease_ttl + 1)
        # both leases expired silently; the next lease() dead-letters it
        assert q.lease("w1") is None
        dead = q.job(job_id)
        assert dead["state"] == DEAD
        assert len(dead["errors"]) == 2
        assert "expired" in dead["errors"][0]

    def test_fail_requeues_then_dead_letters_with_partials(
        self, tmp_path, clock
    ):
        q = make_queue(tmp_path, clock, max_leases=2)
        job_id = q.submit({})
        _job, token = q.lease("w0")
        assert q.fail(job_id, token, "engine crashed",
                      partial={"register": "secret", "status": "unknown"})
        assert q.job(job_id)["state"] == QUEUED
        _job, token = q.lease("w0")
        assert q.fail(job_id, token, "engine crashed again",
                      partial={"register": "secret", "status": "unknown"})
        dead = q.job(job_id)
        assert dead["state"] == DEAD
        assert dead["errors"] == ["engine crashed", "engine crashed again"]
        assert len(dead["partials"]) == 2


class TestDurability:
    def test_state_survives_restart(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        done_id = q.submit({"n": 1})
        _job, token = q.lease("w0")
        q.complete(done_id, token, {"verdict": "clean"})
        queued_id = q.submit({"n": 2})
        q._handle.close()  # simulate a crash: no snapshot, no close()

        q2 = make_queue(tmp_path, clock)
        assert q2.job(done_id)["state"] == DONE
        assert q2.job(done_id)["result"] == {"verdict": "clean"}
        assert q2.job(queued_id)["state"] == QUEUED
        # job numbering continues, no id reuse
        assert q2.submit({}) not in (done_id, queued_id)

    def test_leased_job_recovers_and_expires(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        q.lease("w0")
        q._handle.close()

        q2 = make_queue(tmp_path, clock)
        assert q2.job(job_id)["state"] == LEASED  # lease honoured...
        assert q2.lease("w1") is None
        clock.advance(q2.lease_ttl + 1)
        job, _token = q2.lease("w1")  # ...until its TTL breaks it
        assert job["id"] == job_id
        assert job["attempts"] == 2

    def test_snapshot_rotates_journal(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        _job, token = q.lease("w0")
        q.complete(job_id, token, {"ok": True})
        q.snapshot()
        records, torn = read_journal(q._journal_path)
        assert records == [] and torn == 0  # folded into the snapshot
        q._handle.close()

        q2 = make_queue(tmp_path, clock)
        assert q2.job(job_id)["state"] == DONE

    def test_stale_journal_replay_is_idempotent(self, tmp_path, clock):
        """A crash after the snapshot rename but before the journal
        truncate leaves old records on disk; the seq watermark makes
        replaying them a no-op."""
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        stale = open(q._journal_path, "rb").read()
        _job, token = q.lease("w0")
        q.complete(job_id, token, {"ok": True})
        q.snapshot()
        # resurrect the pre-snapshot journal (seqs <= watermark)
        q._handle.close()
        with open(q._journal_path, "wb") as handle:
            handle.write(stale)

        q2 = make_queue(tmp_path, clock)
        job = q2.job(job_id)
        assert job["state"] == DONE  # submit record did not re-queue it
        assert job["result"] == {"ok": True}


class TestTornWrites:
    def test_torn_tail_degrades_to_previous_record(self, tmp_path, clock):
        plan = ServiceFaultPlan.parse(["torn-journal-write:complete"])
        q = make_queue(tmp_path, clock, fault_plan=plan)
        job_id = q.submit({})
        _job, token = q.lease("w0")
        q.complete(job_id, token, {"ok": True})  # append is torn mid-line
        q._handle.close()

        q2 = make_queue(tmp_path, clock)
        assert q2.torn_lines == 1
        job = q2.job(job_id)
        # the completion never became durable: the job is still leased
        # (previous record) and the TTL path will re-run it
        assert job["state"] == LEASED
        clock.advance(q2.lease_ttl + 1)
        rejob, _token = q2.lease("w1")
        assert rejob["id"] == job_id

    def test_hand_torn_garbage_tail(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job_id = q.submit({})
        q._handle.close()
        with open(q._journal_path, "ab") as handle:
            handle.write(b"deadbeef {\"kind\": \"complete\", tru")

        q2 = make_queue(tmp_path, clock)
        assert q2.torn_lines == 1
        assert q2.job(job_id)["state"] == QUEUED

    def test_crc_rejects_bitflip(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        q.submit({"design": "router"})
        q._handle.close()
        raw = open(q._journal_path, "rb").read()
        flipped = raw[:-10] + bytes([raw[-10] ^ 0x01]) + raw[-9:]
        with open(q._journal_path, "wb") as handle:
            handle.write(flipped)

        q2 = make_queue(tmp_path, clock)
        assert q2.torn_lines == 1
        assert q2.jobs() == []  # the only record failed its frame


class TestClockSkew:
    def test_skew_on_empty_scan_is_harmless(self, tmp_path, clock):
        plan = ServiceFaultPlan([
            ServiceFaultSpec(kind=CLOCK_SKEW, match="lease", skew=1000.0),
        ])
        q = make_queue(tmp_path, clock, fault_plan=plan)
        q.submit({})
        _job, _token = q.lease("w0")  # skew fires with nothing leased
        assert plan.fired == [(CLOCK_SKEW, "lease")]
        # the single occurrence is spent: later leases read true time
        assert q.lease("w1") is None
        assert q.reclaims == 0

    def test_skewed_clock_reclaims_a_live_lease(self, tmp_path, clock):
        """Cross-host skew: one lease() reads a clock jumped past the
        deadline and reclaims a perfectly live lease — the fencing
        token must still keep the victim from double-completing."""
        plan = ServiceFaultPlan([
            ServiceFaultSpec(kind=CLOCK_SKEW, match="lease",
                             first_times=2, skew=1000.0),
        ])
        q = make_queue(tmp_path, clock, fault_plan=plan)
        job_id = q.submit({})
        _job, old_token = q.lease("w0")
        leased = q.lease("w1")  # skewed reading: w0's lease looks dead
        assert leased is not None
        job, new_token = leased
        assert job["id"] == job_id and job["attempts"] == 2
        # the skew victim is fenced out
        assert not q.complete(job_id, old_token, {"from": "w0"})
        assert q.complete(job_id, new_token, {"from": "w1"})
        assert q.job(job_id)["result"] == {"from": "w1"}


class TestJournalFraming:
    def test_read_journal_missing_file(self, tmp_path):
        records, torn = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and torn == 0

    def test_counts(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        a = q.submit({})
        b = q.submit({})
        _job, token = q.lease("w0")
        q.complete(a, token, {})
        assert q.counts() == {DONE: 1, QUEUED: 1}
        assert [j["id"] for j in q.pending()] == [b]
