"""Audit service: HTTP API, worker threads, graceful drain."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.serve import AuditService
from repro.serve.server import ServiceClient, run_server

OPTIONS = {"max_cycles": 16, "time_budget": 30.0}


@pytest.fixture(scope="module")
def service_url(tmp_path_factory):
    """One live service + HTTP server shared by the module's tests."""
    queue_dir = tmp_path_factory.mktemp("serve")
    service = AuditService(queue_dir, workers=2, lease_ttl=10.0)
    address = {}
    ready = threading.Event()

    def on_ready(addr):
        address["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_server, args=(service,),
        kwargs=dict(port=0, ready=on_ready, install_signals=False),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "server did not come up"
    host, port = address["addr"]
    yield "http://{}:{}".format(host, port), service


class TestHTTPAPI:
    def test_submit_poll_and_verdicts(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        trojan_job = client.submit("mc8051-t800", OPTIONS)
        clean_job = client.submit("router", OPTIONS)

        done = client.wait(trojan_job, timeout=120)
        assert done["state"] == "done"
        assert done["result"]["trojan_found"] is True
        assert done["result"]["design"] == "mc8051-t800"

        done = client.wait(clean_job, timeout=120)
        assert done["state"] == "done"
        assert done["result"]["trojan_found"] is False

        listed = {row["id"]: row["state"] for row in client.jobs()}
        assert listed[trojan_job] == "done"
        assert listed[clean_job] == "done"

    def test_full_job_body_carries_report(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        job_id = client.submit("mc8051-t700", OPTIONS)
        done = client.wait(job_id, timeout=120)
        report = done["result"]["report"]
        assert report["design"] and report["findings"]

    def test_events_stream_is_incremental(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        job_id = client.submit("router", OPTIONS)
        client.wait(job_id, timeout=120)
        events, cursor = client.events(job_id)
        assert cursor == len(events) > 0
        names = {e.get("name") for e in events}
        assert "audit.register" in names
        # incremental polling: the cursor resumes where we left off
        tail, cursor2 = client.events(job_id, after=cursor)
        assert tail == [] and cursor2 == cursor

    def test_health_endpoint(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        health = client.health()
        assert health["ok"] is True
        assert isinstance(health["counts"], dict)

    def test_unknown_design_is_rejected_before_enqueue(self, service_url):
        url, service = service_url
        client = ServiceClient(url)
        before = len(service.queue.jobs())
        with pytest.raises(ServiceError):
            client.submit("no-such-design", {})
        assert len(service.queue.jobs()) == before

    def test_unknown_option_is_rejected(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        with pytest.raises(ServiceError):
            client.submit("router", {"warp_factor": 9})

    def test_unknown_job_404(self, service_url):
        url, _service = service_url
        client = ServiceClient(url)
        with pytest.raises(ServiceError):
            client.job("job-9999")
        with pytest.raises(ServiceError):
            client.events("job-9999")


class TestDrain:
    def test_drain_finishes_in_flight_and_snapshots(self, tmp_path):
        service = AuditService(tmp_path / "q", workers=1, lease_ttl=10.0)
        service.start()
        job_id = service.queue.submit(
            {"design": "router", "options": OPTIONS}
        )
        assert service.wait_idle(timeout=120)
        service.drain(timeout=30)
        assert service.queue.job(job_id)["state"] == "done"
        # the queue closed via snapshot: a fresh queue restores from it
        assert (tmp_path / "q" / "snapshot.json").exists()

    def test_restarted_service_resumes_unfinished_jobs(self, tmp_path):
        first = AuditService(tmp_path / "q", workers=1, lease_ttl=0.2)
        job_id = first.queue.submit(
            {"design": "router", "options": OPTIONS}
        )
        # never started: the job stays queued; simulate a crash by
        # dropping the queue without close()
        first.queue._handle.close()

        second = AuditService(tmp_path / "q", workers=1, lease_ttl=10.0)
        second.start()
        assert second.wait_idle(timeout=120)
        done = second.queue.job(job_id)
        assert done["state"] == "done"
        assert done["result"]["trojan_found"] is False
        second.drain(timeout=30)
