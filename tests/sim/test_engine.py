"""Bit-parallel combinational evaluator tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netlist import Circuit
from repro.sim import CombEvaluator


def build_alu():
    c = Circuit("alu")
    a = c.input("a", 8)
    b = c.input("b", 8)
    c.output("sum", a + b)
    c.output("and_", a & b)
    c.output("eq", a == b)
    return c.finalize()


class TestSingleLane:
    def test_word_roundtrip(self):
        nl = build_alu()
        ev = CombEvaluator(nl)
        values = ev.fresh_values()
        ev.set_word(values, nl.inputs["a"], 0xAB)
        assert ev.get_word(values, nl.inputs["a"]) == 0xAB

    def test_propagate_computes_outputs(self):
        nl = build_alu()
        ev = CombEvaluator(nl)
        values = ev.fresh_values()
        ev.set_word(values, nl.inputs["a"], 100)
        ev.set_word(values, nl.inputs["b"], 200)
        ev.propagate(values)
        assert ev.get_word(values, nl.outputs["sum"]) == (100 + 200) & 0xFF
        assert ev.get_word(values, nl.outputs["and_"]) == 100 & 200

    def test_lanes_must_be_positive(self):
        with pytest.raises(SimulationError):
            CombEvaluator(build_alu(), lanes=0)


class TestMultiLane:
    def test_lanes_independent(self):
        nl = build_alu()
        lanes = 16
        ev = CombEvaluator(nl, lanes=lanes)
        values = ev.fresh_values()
        rng = random.Random(1)
        xs = [rng.getrandbits(8) for _ in range(lanes)]
        ys = [rng.getrandbits(8) for _ in range(lanes)]
        ev.set_word_lanes(values, nl.inputs["a"], xs)
        ev.set_word_lanes(values, nl.inputs["b"], ys)
        ev.propagate(values)
        sums = ev.get_word_lanes(values, nl.outputs["sum"])
        for lane in range(lanes):
            assert sums[lane] == (xs[lane] + ys[lane]) & 0xFF

    def test_too_many_lane_words_rejected(self):
        nl = build_alu()
        ev = CombEvaluator(nl, lanes=2)
        with pytest.raises(SimulationError):
            ev.set_word_lanes(ev.fresh_values(), nl.inputs["a"], [1, 2, 3])

    def test_fewer_words_than_lanes_zero_fill(self):
        # Documented semantics: missing upper lanes are driven to 0,
        # even if they previously held nonzero values.
        nl = build_alu()
        ev = CombEvaluator(nl, lanes=4)
        values = ev.fresh_values()
        ev.set_word_lanes(values, nl.inputs["a"], [0xFF, 0xFF, 0xFF, 0xFF])
        ev.set_word_lanes(values, nl.inputs["a"], [0x12, 0x34])
        assert ev.get_word_lanes(values, nl.inputs["a"]) == [
            0x12, 0x34, 0, 0,
        ]

    def test_lane_words_roundtrip(self):
        nl = build_alu()
        lanes = 8
        ev = CombEvaluator(nl, lanes=lanes)
        values = ev.fresh_values()
        rng = random.Random(7)
        words = [rng.getrandbits(8) for _ in range(lanes)]
        ev.set_word_lanes(values, nl.inputs["b"], words)
        assert ev.get_word_lanes(values, nl.inputs["b"]) == words

    @settings(max_examples=30, deadline=None)
    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    def test_broadcast_equals_lane(self, x, y):
        nl = build_alu()
        ev = CombEvaluator(nl, lanes=8)
        values = ev.fresh_values()
        ev.set_word(values, nl.inputs["a"], x)
        ev.set_word(values, nl.inputs["b"], y)
        ev.propagate(values)
        for lane in range(8):
            assert ev.get_word(values, nl.outputs["eq"], lane) == int(x == y)
