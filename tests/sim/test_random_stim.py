"""Stimulus generator tests."""

from repro.sim import StimulusGenerator

from tests.conftest import build_secret_design


def test_deterministic_with_seed():
    nl = build_secret_design()
    a = StimulusGenerator(nl, seed=7).random_sequence(10)
    b = StimulusGenerator(nl, seed=7).random_sequence(10)
    assert a == b
    c = StimulusGenerator(nl, seed=8).random_sequence(10)
    assert a != c


def test_words_fit_port_widths():
    nl = build_secret_design()
    gen = StimulusGenerator(nl, seed=0)
    for cycle in gen.random_sequence(20):
        for name, word in cycle.items():
            assert 0 <= word < (1 << len(nl.inputs[name]))


def test_overrides_and_exclusions():
    nl = build_secret_design()
    gen = StimulusGenerator(nl, seed=0)
    seq = gen.random_sequence(
        6, overrides={"reset": lambda cycle: int(cycle == 0)}
    )
    assert seq[0]["reset"] == 1
    assert all(c["reset"] == 0 for c in seq[1:])
    seq = gen.random_sequence(3, exclude=("key_in",))
    assert all("key_in" not in c for c in seq)


def test_lane_words():
    nl = build_secret_design()
    gen = StimulusGenerator(nl, seed=0)
    words = gen.random_lane_words(8, 16)
    assert len(words) == 16
    assert all(0 <= w < 256 for w in words)
