"""Sequential simulator tests: clocking, traces, golden-model equivalence
of a small accumulator design under random stimulus (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netlist import Circuit
from repro.sim import SequentialSimulator

from tests.conftest import build_counter


class TestClocking:
    def test_counter_counts(self):
        sim = SequentialSimulator(build_counter(4))
        for _ in range(9):
            sim.step({"en": 1})
        assert sim.register_value("count") == 9

    def test_counter_wraps(self):
        sim = SequentialSimulator(build_counter(3))
        for _ in range(10):
            sim.step({"en": 1})
        assert sim.register_value("count") == 10 % 8

    def test_hold_when_disabled(self):
        sim = SequentialSimulator(build_counter(4))
        sim.step({"en": 1})
        for _ in range(5):
            sim.step({"en": 0})
        assert sim.register_value("count") == 1

    def test_reset_restores_init(self):
        sim = SequentialSimulator(build_counter(4))
        for _ in range(3):
            sim.step({"en": 1})
        sim.reset()
        assert sim.register_value("count") == 0
        assert sim.cycle == 0

    def test_reset_clears_driven_inputs(self):
        # Regression: reset() used to reload only flop Q nets, so a
        # previously driven input port survived into the next run and
        # replayed stale stimulus.
        sim = SequentialSimulator(build_counter(4))
        for _ in range(3):
            sim.step({"en": 1})
        sim.reset()
        fresh = SequentialSimulator(build_counter(4))
        assert sim.values == fresh.values
        sim.step()  # en was never driven after reset: must hold at 0
        assert sim.register_value("count") == 0

    def test_inputs_persist_between_steps(self):
        sim = SequentialSimulator(build_counter(4))
        sim.step({"en": 1})
        sim.step()  # en stays 1
        assert sim.register_value("count") == 2

    def test_unknown_port_rejected(self):
        sim = SequentialSimulator(build_counter(4))
        with pytest.raises(SimulationError):
            sim.set_input("nope", 1)
        with pytest.raises(SimulationError):
            sim.output_value("nope")


class TestTrace:
    def test_run_captures_registers_and_outputs(self):
        sim = SequentialSimulator(build_counter(4))
        trace = sim.run(
            [{"en": 1}] * 4,
            observe_registers=["count"],
            observe_outputs=["value"],
        )
        assert trace.registers["count"] == [1, 2, 3, 4]
        # outputs observed pre-clock: the value during the cycle
        assert trace.outputs["value"] == [0, 1, 2, 3]
        assert trace.cycles() == 4

    def test_state_snapshot(self):
        sim = SequentialSimulator(build_counter(4))
        sim.step({"en": 1})
        assert sim.state() == {"count": 1}

    def test_cycles_is_max_across_series(self):
        # Regression: cycles() used to report whichever series iterated
        # first, so a hand-assembled (incomplete) ragged trace lied.
        from repro.sim.sequential import Trace

        trace = Trace(registers={"r": [1, 2]}, outputs={"y": [0, 1, 2]})
        assert trace.cycles() == 3
        assert Trace().cycles() == 0

    def test_ragged_complete_trace_rejected(self):
        from repro.sim.sequential import Trace

        trace = Trace(
            registers={"r": [1, 2]},
            outputs={"y": [0, 1, 2]},
            complete=True,
        )
        with pytest.raises(SimulationError):
            trace.cycles()

    def test_run_marks_trace_complete(self):
        sim = SequentialSimulator(build_counter(4))
        trace = sim.run([{"en": 1}] * 2, observe_registers=["count"])
        assert trace.complete
        assert trace.cycles() == 2


@settings(max_examples=30, deadline=None)
@given(stimulus=st.lists(st.tuples(st.booleans(), st.integers(0, 255)),
                         min_size=1, max_size=30))
def test_accumulator_matches_golden_model(stimulus):
    c = Circuit("acc")
    load = c.input("load", 1)
    data = c.input("data", 8)
    acc = c.reg("acc", 8)
    acc.hold_unless((load, acc.q + data))
    c.output("y", acc.q)
    nl = c.finalize()
    sim = SequentialSimulator(nl)
    golden = 0
    for do_load, value in stimulus:
        sim.step({"load": int(do_load), "data": value})
        if do_load:
            golden = (golden + value) & 0xFF
        assert sim.register_value("acc") == golden
