"""VCD writer tests."""

from repro.sim import SequentialSimulator, VcdWriter

from tests.conftest import build_counter


def test_vcd_structure(tmp_path):
    writer = VcdWriter("dut")
    writer.add_signal("count", 4, [0, 1, 2, 2, 3])
    writer.add_signal("flag", 1, [0, 0, 1, 1, 0])
    text = writer.dumps()
    assert "$var wire 4" in text
    assert "$var wire 1" in text
    assert "$enddefinitions" in text
    # value changes only when the value changes
    assert text.count("b10 ") == 1  # count == 2 appears once
    path = tmp_path / "dump.vcd"
    writer.write(str(path))
    assert path.read_text() == text


def test_vcd_from_trace():
    sim = SequentialSimulator(build_counter(4))
    trace = sim.run([{"en": 1}] * 5, observe_registers=["count"],
                    observe_outputs=["value"])
    writer = VcdWriter("counter")
    writer.add_trace(trace, widths={"count": 4, "value": 4})
    text = writer.dumps()
    assert "count" in text and "value" in text
    assert "#5" in text


def test_identifier_uniqueness():
    writer = VcdWriter()
    for i in range(200):
        writer.add_signal("s{}".format(i), 1, [0])
    idents = [ident for _n, _w, ident in writer._vars]
    assert len(set(idents)) == len(idents)
