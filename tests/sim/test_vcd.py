"""VCD writer tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import SequentialSimulator, VcdWriter

from tests.conftest import build_counter


def test_vcd_structure(tmp_path):
    writer = VcdWriter("dut")
    writer.add_signal("count", 4, [0, 1, 2, 2, 3])
    writer.add_signal("flag", 1, [0, 0, 1, 1, 0])
    text = writer.dumps()
    assert "$var wire 4" in text
    assert "$var wire 1" in text
    assert "$enddefinitions" in text
    # value changes only when the value changes
    assert text.count("b10 ") == 1  # count == 2 appears once
    path = tmp_path / "dump.vcd"
    writer.write(str(path))
    assert path.read_text() == text


def test_vcd_from_trace():
    sim = SequentialSimulator(build_counter(4))
    trace = sim.run([{"en": 1}] * 5, observe_registers=["count"],
                    observe_outputs=["value"])
    writer = VcdWriter("counter")
    writer.add_trace(trace, widths={"count": 4, "value": 4})
    text = writer.dumps()
    assert "count" in text and "value" in text
    assert "#5" in text


def test_value_wider_than_declared_width_rejected():
    # Regression: width-1 values used to be truncated with `value & 1`,
    # silently rendering 2 as 0 in the waveform.
    writer = VcdWriter()
    with pytest.raises(SimulationError):
        writer.add_signal("flag", 1, [0, 2])
    with pytest.raises(SimulationError):
        writer.add_signal("bus", 4, [0, 16])
    with pytest.raises(SimulationError):
        writer.add_signal("neg", 4, [-1])


def test_initial_values_dumped_at_time_zero():
    # Regression: no $dumpvars block meant viewers rendered `x` until
    # the first change of each signal.
    writer = VcdWriter()
    writer.add_signal("count", 4, [5, 5, 6])
    writer.add_signal("flag", 1, [0, 1, 1])
    text = writer.dumps()
    head, _, tail = text.partition("$end\n#1\n")
    assert "$dumpvars" in head
    ident_count = writer._vars[0][2]
    ident_flag = writer._vars[1][2]
    assert "b101 {}\n".format(ident_count) in head
    assert "0{}\n".format(ident_flag) in head
    # later cycles stay change-only
    assert "b110 {}\n".format(ident_count) in tail


def test_identifier_uniqueness():
    writer = VcdWriter()
    for i in range(200):
        writer.add_signal("s{}".format(i), 1, [0])
    idents = [ident for _n, _w, ident in writer._vars]
    assert len(set(idents)) == len(idents)
