"""CLI tests."""

import io

import pytest

from repro.cli import _load as build_design, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_shows_designs():
    code, text = run_cli(["list"])
    assert code == 0
    assert "mc8051-t800" in text
    assert "MC8051-T800" in text
    assert "router-redirect" in text


def test_stats():
    code, text = run_cli(["stats", "--design", "router"])
    assert code == 0
    assert "cells" in text


def test_audit_finds_trojan_and_exits_nonzero():
    code, text = run_cli([
        "audit", "--design", "mc8051-t700", "--engine", "bmc",
        "--max-cycles", "8", "--register", "acc", "--witness",
    ])
    assert code == 1
    assert "TROJAN FOUND" in text
    assert "cycle" in text  # witness printed


def test_audit_clean_design_exits_zero():
    code, text = run_cli([
        "audit", "--design", "router", "--max-cycles", "6",
    ])
    assert code == 0
    assert "no data-corruption Trojan" in text


def test_audit_with_supervision_flags():
    # isolated worker + hard timeout + retries must not change the verdict
    code, text = run_cli([
        "audit", "--design", "mc8051-t700", "--engine", "bmc",
        "--max-cycles", "8", "--register", "acc",
        "--workers", "1", "--check-timeout", "60", "--retries", "1",
    ])
    assert code == 1
    assert "TROJAN FOUND" in text


def test_audit_resume_writes_and_reuses_checkpoint(tmp_path):
    ckpt = tmp_path / "audit.json"
    argv = [
        "audit", "--design", "router", "--max-cycles", "6",
        "--resume", str(ckpt),
    ]
    code, text = run_cli(argv)
    assert code == 0
    assert ckpt.exists()
    code, text = run_cli(argv)  # second run restores from the checkpoint
    assert code == 0
    assert "restored from checkpoint" in text


def test_audit_resume_mismatch_is_a_clear_error(tmp_path):
    ckpt = tmp_path / "audit.json"
    run_cli([
        "audit", "--design", "router", "--max-cycles", "6",
        "--resume", str(ckpt),
    ])
    with pytest.raises(SystemExit, match="cannot resume"):
        run_cli([
            "audit", "--design", "router", "--max-cycles", "8",
            "--resume", str(ckpt),
        ])


def test_audit_cache_dir_cold_then_warm(tmp_path):
    cache_dir = tmp_path / "cache"
    argv = [
        "audit", "--design", "mc8051-t700", "--engine", "bmc",
        "--max-cycles", "8", "--register", "acc",
        "--cache-dir", str(cache_dir),
    ]
    code, text = run_cli(argv)
    assert code == 1
    assert "TROJAN FOUND" in text
    assert "0 hit(s)" in text
    code, text = run_cli(argv)  # warm: the verdict is replayed
    assert code == 1
    assert "TROJAN FOUND" in text
    assert "0 miss(es)" in text
    assert "1 hit(s)" in text


def test_audit_no_cache_overrides_cache_dir(tmp_path):
    code, text = run_cli([
        "audit", "--design", "router", "--max-cycles", "6",
        "--cache-dir", str(tmp_path / "cache"), "--no-cache",
    ])
    assert code == 0
    assert "cache:" not in text
    assert not (tmp_path / "cache").exists()


def test_audit_share_cones_same_verdict():
    code, text = run_cli([
        "audit", "--design", "mc8051-t800", "--engine", "bmc",
        "--max-cycles", "8", "--register", "stack_pointer",
        "--check-pseudo-critical", "--share-cones",
    ])
    assert code == 1
    assert "TROJAN FOUND" in text


def test_cache_stats_gc_clear(tmp_path):
    cache_dir = tmp_path / "cache"
    run_cli([
        "audit", "--design", "router", "--max-cycles", "6",
        "--cache-dir", str(cache_dir),
    ])
    code, text = run_cli(["cache", "stats", "--cache-dir", str(cache_dir)])
    assert code == 0
    assert "deepest proved bound 6" in text

    import json

    code, text = run_cli([
        "cache", "stats", "--cache-dir", str(cache_dir), "--json",
    ])
    assert code == 0
    stats = json.loads(text)
    assert stats["entries"] >= 1
    assert stats["deepest_proved"] == 6

    code, text = run_cli(["cache", "gc", "--cache-dir", str(cache_dir)])
    assert code == 0
    assert "compacted" in text

    code, text = run_cli(["cache", "clear", "--cache-dir", str(cache_dir)])
    assert code == 0
    assert "removed" in text
    code, text = run_cli(["cache", "stats", "--cache-dir", str(cache_dir)])
    assert "0 entries" in text


def test_export(tmp_path):
    code, text = run_cli([
        "export", "--design", "router", "--out", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "router.v").exists()
    assert "p_no_corruption_dest_register" in (
        tmp_path / "router_props.sv"
    ).read_text()


def test_unknown_design_rejected():
    with pytest.raises(SystemExit):
        build_design("z80")


def test_lint_clean_design_exits_zero():
    code, text = run_cli(["lint", "--design", "router"])
    assert code == 0
    assert "0 findings" in text


def test_lint_trojaned_design_exits_nonzero():
    code, text = run_cli(["lint", "--design", "mc8051-t800"])
    assert code == 1
    assert "suspicious" in text
    assert "stack_pointer" in text


def test_lint_fail_on_threshold():
    # risc's only findings are warn/info hygiene noise
    code, _ = run_cli(["lint", "--design", "risc"])
    assert code == 0
    code, _ = run_cli(["lint", "--design", "risc", "--fail-on", "info"])
    assert code == 1


def test_lint_json_to_stdout_is_parseable():
    import json

    code, text = run_cli(["lint", "--design", "mc8051-t800", "--json", "-"])
    assert code == 1
    data = json.loads(text)
    assert data["design"] == "mc8051-t800"
    assert data["register_scores"]["stack_pointer"] > 0


def test_lint_sarif_file(tmp_path):
    import json

    path = tmp_path / "out.sarif"
    code, _ = run_cli([
        "lint", "--design", "aes-t1200", "--sarif", str(path),
    ])
    assert code == 1
    log = json.loads(path.read_text())
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"]


def test_lint_disable_and_suppress():
    code, _ = run_cli([
        "lint", "--design", "mc8051-t800",
        "--disable", "undocumented-write-port",
        "--disable", "pseudo-critical-candidate",
    ])
    assert code == 0
    code, _ = run_cli([
        "lint", "--design", "mc8051-t800",
        "--suppress", "*:stack_pointer", "--suppress", "*:t800_*",
    ])
    assert code == 0


def test_lint_bad_suppress_syntax():
    with pytest.raises(SystemExit, match="RULE_GLOB:SUBJECT_GLOB"):
        run_cli(["lint", "--design", "risc", "--suppress", "nocolon"])


def test_audit_lint_prioritize():
    code, text = run_cli([
        "audit", "--design", "mc8051-t700", "--engine", "bmc",
        "--max-cycles", "8", "--register", "acc", "--lint-prioritize",
    ])
    assert code == 1
    assert "lint pre-pass:" in text
    assert "TROJAN FOUND" in text
    assert "lint:" in text  # static evidence echoed in the summary


class TestTraceCli:
    def audit_with_trace(self, tmp_path, *extra):
        trace = str(tmp_path / "audit.jsonl")
        code, text = run_cli([
            "audit", "--design", "mc8051-t700", "--engine", "bmc",
            "--max-cycles", "8", "--register", "acc",
            "--trace", trace, *extra,
        ])
        return code, text, trace

    def test_audit_trace_writes_parseable_jsonl(self, tmp_path):
        import json

        code, text, trace = self.audit_with_trace(tmp_path)
        assert code == 1
        assert "trace written to" in text
        with open(trace) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["ev"] == "meta"
        assert any(e.get("name") == "audit" for e in lines)

    def test_trace_summarize_renders_phase_tree(self, tmp_path):
        _code, _text, trace = self.audit_with_trace(tmp_path)
        code, text = run_cli(["trace", "summarize", trace])
        assert code == 0
        assert "phase tree" in text
        assert "audit" in text
        assert "slowest checks" in text

    def test_phase_totals_cover_wall_clock(self, tmp_path):
        # acceptance: the per-phase totals account for >= 95% of the
        # trace's wall clock — the audit span brackets the whole run.
        from repro.obs.summary import summarize

        _code, _text, trace = self.audit_with_trace(tmp_path)
        summary = summarize(trace)
        total = sum(row["total"] for row in summary["phases"])
        assert summary["wall_seconds"] > 0
        assert total >= 0.95 * summary["wall_seconds"]

    def test_trace_summarize_json_output(self, tmp_path):
        import json

        _code, _text, trace = self.audit_with_trace(tmp_path)
        code, text = run_cli(["trace", "summarize", trace, "--json"])
        assert code == 0
        summary = json.loads(text)
        assert summary["bad_lines"] == 0
        assert summary["phases"][0]["name"] == "audit"
        assert summary["metrics"]["counters"]["sat.solve_calls"] >= 1

    def test_trace_summarize_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            run_cli(["trace", "summarize", str(tmp_path / "nope.jsonl")])

    def test_profile_requires_trace(self):
        with pytest.raises(SystemExit, match="--profile needs --trace"):
            run_cli([
                "audit", "--design", "mc8051-t700", "--engine", "bmc",
                "--max-cycles", "8", "--register", "acc", "--profile",
            ])

    def test_profile_dumps_next_to_trace(self, tmp_path):
        from pathlib import Path

        code, text, trace = self.audit_with_trace(tmp_path, "--profile")
        assert code == 1
        assert "profiles written to" in text
        dumps = list(Path(trace + ".profiles").glob("*.pstats"))
        assert dumps


class TestSharedFlags:
    """--jobs/--cache-dir/--trace spelled identically on audit/bench/lint."""

    def test_every_parallel_command_accepts_the_shared_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("audit", "bench", "lint"):
            args = parser.parse_args(
                [command, "--design", "router",
                 "--jobs", "2", "--cache-dir", "d", "--trace", "t.jsonl"]
            )
            assert args.jobs == 2
            assert args.cache_dir == "d"
            assert args.trace == "t.jsonl"

    def test_audit_rejects_bad_jobs(self):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            run_cli(["audit", "--design", "router", "--jobs", "0"])

    def test_lint_rejects_cache_dir_instead_of_ignoring_it(self):
        with pytest.raises(SystemExit, match="no outcome cache"):
            run_cli(["lint", "--design", "router", "--cache-dir", "x"])


class TestAuditJobs:
    def test_parallel_audit_matches_serial_output(self):
        serial_code, serial_text = run_cli([
            "audit", "--design", "mc8051-t700", "--engine", "bmc",
            "--max-cycles", "8", "--register", "acc",
        ])
        parallel_code, parallel_text = run_cli([
            "audit", "--design", "mc8051-t700", "--engine", "bmc",
            "--max-cycles", "8", "--register", "acc", "--jobs", "2",
        ])
        assert parallel_code == serial_code == 1
        assert parallel_text == serial_text


class TestBench:
    def test_bench_scores_against_ground_truth(self):
        code, text = run_cli([
            "bench", "--design", "mc8051-t700", "--design", "router",
            "--max-cycles", "8", "--jobs", "2",
        ])
        assert code == 0
        assert "mc8051-t700" in text and "router" in text
        assert "0 mismatch(es)" in text
        assert "jobs=2" in text

    def test_bench_exit_1_on_ground_truth_mismatch(self):
        # risc-t100's trigger needs a deeper bound than 4 cycles: the
        # verdict says clean, ground truth says Trojan -> mismatch
        code, text = run_cli([
            "bench", "--design", "risc-t100", "--max-cycles", "4",
            "--jobs", "2",
        ])
        assert code == 1
        assert "MISMATCH" in text

    def test_bench_json_output(self):
        import json

        code, text = run_cli([
            "bench", "--design", "router", "--max-cycles", "6", "--json",
        ])
        assert code == 0
        payload = json.loads(text)
        assert payload["rows"][0]["design"] == "router"
        assert payload["rows"][0]["match"] is True


class TestLintMultiDesign:
    def test_lint_multiple_designs_reports_each(self):
        code, text = run_cli([
            "lint", "--design", "router", "--design", "mc8051-t800",
        ])
        assert code == 1  # the Trojaned design trips the lint rules
        assert "router" in text
        assert "mc8051" in text

    def test_lint_jobs_fanout_matches_serial(self):
        import re

        def no_clock(text):
            return re.sub(r"in \d+\.\d+s", "in <t>", text)

        serial_code, serial_text = run_cli([
            "lint", "--design", "router", "--design", "mc8051-t800",
        ])
        parallel_code, parallel_text = run_cli([
            "lint", "--design", "router", "--design", "mc8051-t800",
            "--jobs", "2",
        ])
        assert parallel_code == serial_code
        assert no_clock(parallel_text) == no_clock(serial_text)

    def test_lint_multi_design_json_maps_by_design(self, tmp_path):
        import json

        target = tmp_path / "lint.json"
        code, _text = run_cli([
            "lint", "--design", "router", "--design", "mc8051-t800",
            "--json", str(target),
        ])
        assert code == 1
        payload = json.loads(target.read_text())
        assert set(payload) == {"router", "mc8051-t800"}

    def test_lint_sarif_needs_single_design(self):
        with pytest.raises(SystemExit, match="single --design"):
            run_cli([
                "lint", "--design", "router", "--design", "mc8051-t800",
                "--sarif", "out.sarif",
            ])


class TestDiffCli:
    def test_diff_flags_trojaned_design_and_exits_nonzero(self):
        code, text = run_cli(["diff", "--design", "risc-t100"])
        assert code == 1
        assert "diff-divergence" in text
        assert "program_counter" in text

    def test_diff_clean_design_exits_zero(self):
        code, text = run_cli(["diff", "--design", "router"])
        assert code == 0
        assert "clean" in text

    def test_diff_rejects_cache_dir_instead_of_ignoring_it(self):
        with pytest.raises(SystemExit, match="no outcome cache"):
            run_cli(["diff", "--design", "router", "--cache-dir", "x"])

    def test_diff_jobs_fanout_matches_serial(self):
        import re

        def no_clock(text):
            return re.sub(r"in \d+\.\d+s", "in <t>", text)

        serial_code, serial_text = run_cli([
            "diff", "--design", "router", "--design", "risc-t100",
        ])
        parallel_code, parallel_text = run_cli([
            "diff", "--design", "router", "--design", "risc-t100",
            "--jobs", "2",
        ])
        assert parallel_code == serial_code == 1
        assert no_clock(parallel_text) == no_clock(serial_text)

    def test_diff_sarif_merges_all_three_modalities(self, tmp_path):
        import json

        target = tmp_path / "portfolio.sarif"
        code, text = run_cli([
            "diff", "--design", "risc-t100", "--sarif", str(target),
        ])
        assert code == 1
        assert "wrote" in text
        log = json.loads(target.read_text())
        drivers = [run["tool"]["driver"]["name"] for run in log["runs"]]
        assert drivers == ["repro-lint", "repro-ift", "repro-diff"]

    def test_diff_sarif_no_companions(self, tmp_path):
        import json

        target = tmp_path / "diff-only.sarif"
        code, _text = run_cli([
            "diff", "--design", "risc-t100", "--sarif", str(target),
            "--no-lint", "--no-ift",
        ])
        assert code == 1
        log = json.loads(target.read_text())
        drivers = [run["tool"]["driver"]["name"] for run in log["runs"]]
        assert drivers == ["repro-diff"]

    def test_audit_diff_fuses_the_pre_pass(self):
        # bound 4 is below the RISC trigger count: the checks pass and
        # the simulated divergence surfaces as a differential suspect
        code, text = run_cli([
            "audit", "--design", "risc-t100", "--max-cycles", "4",
            "--register", "program_counter", "--diff",
        ])
        assert code == 0
        assert "diff pre-pass:" in text
        assert "divergent: program_counter" in text
        assert "DIFFERENTIAL SUSPECT" in text

    def test_bench_diff_adds_screen_figures_to_rows(self):
        code, text = run_cli([
            "bench", "--design", "router", "--max-cycles", "6", "--diff",
        ])
        assert code == 0
        assert "diff[0 finding(s)" in text


class TestCorpusCommands:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("corpus") / "c"
        code, text = run_cli([
            "corpus", "generate", "--seed", "11", "-n", "4",
            "--base", "router", "--out", str(path),
        ])
        assert code == 0
        assert "wrote 4 bundle(s)" in text
        return str(path)

    def test_generate_emits_bundles_and_manifest(self, corpus_dir):
        import os

        names = sorted(os.listdir(corpus_dir))
        assert "corpus.json" in names
        assert sum(n.endswith(".design.json") for n in names) == 4

    def test_stats_summarizes_the_manifest(self, corpus_dir):
        code, text = run_cli(["corpus", "stats", corpus_dir])
        assert code == 0
        assert "corpus of 4 mutant(s), seed 11" in text

    def test_run_gates_on_detection_and_prints_totals(self, corpus_dir):
        code, text = run_cli(["corpus", "run", corpus_dir])
        assert code == 0  # full portfolio: no misses, no false positives
        assert "4 mutant(s):" in text
        assert "MISSED" not in text
        assert "FALSE+" not in text

    def test_run_json_stdout_is_pure_json(self, corpus_dir, capsys):
        import json

        code, text = run_cli([
            "corpus", "run", corpus_dir, "--json", "-",
        ])
        assert code == 0
        report = json.loads(text)  # human summary must not pollute stdout
        assert report["format"] == "repro-corpus-report"
        assert report["totals"]["mutants"] == 4
        assert "mutant(s):" in capsys.readouterr().err

    def test_run_rejects_all_modalities_disabled(self, corpus_dir):
        with pytest.raises(SystemExit, match="disabled"):
            run_cli([
                "corpus", "run", corpus_dir,
                "--no-lint", "--no-ift", "--no-diff",
            ])
